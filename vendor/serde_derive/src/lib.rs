//! No-op `Serialize`/`Deserialize` derives for the offline serde stand-in.
//!
//! The workspace's `#[derive(Serialize, Deserialize)]` annotations document
//! intent and keep the door open for the real `serde`; in the offline
//! build the traits are pure markers (see `vendor/serde`), so the derives
//! expand to nothing. `#[serde(...)]` helper attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
