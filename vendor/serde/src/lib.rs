//! Offline stand-in for the `serde` facade.
//!
//! The workspace annotates its data types with `#[derive(Serialize,
//! Deserialize)]` so that downstream users with the real `serde` can opt
//! into interoperable encodings. Nothing inside the workspace serializes
//! through serde, however — the model registry uses its own checksummed
//! text format (`bagpred_ml::codec`, `bagpred_serve::snapshot`) — and the
//! build environment has no registry access, so this crate supplies the
//! two marker traits and no-op derive macros the annotations need.
//!
//! Swapping in the real `serde` is a one-line change in the workspace
//! `Cargo.toml`; no source edits are required.

#![forbid(unsafe_code)]

/// Marker for types annotated as serializable.
///
/// The real `serde::Serialize` carries a `serialize` method; this offline
/// stand-in is a pure marker, which is all the workspace's own code needs.
pub trait Serialize {}

/// Marker for types annotated as deserializable.
pub trait Deserialize<'de> {}

/// Marker for seed-driven deserialization (unused; kept for API parity).
pub trait DeserializeOwned {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
