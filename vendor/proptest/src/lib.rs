//! Offline stand-in for `proptest`.
//!
//! The workspace's property tests use a compact slice of the real
//! proptest API: the `proptest!` macro, `prop_assert*`/`prop_assume!`,
//! range and `any::<T>()` strategies, `collection::vec`,
//! `array::uniform9`, and `sample::select`. This crate implements exactly
//! that surface on top of a deterministic SplitMix64 generator so the
//! tests run with no network access and no external dependencies.
//!
//! Differences from the real proptest, by design:
//!
//! * case generation is seeded from the test name, so every run explores
//!   the same inputs (reproducible CI, no persistence files);
//! * there is no shrinking — a failing case reports its index and the
//!   failed assertion, which together with determinism is enough to
//!   reproduce under a debugger;
//! * the default case count is 48 (configurable per block via
//!   `ProptestConfig::with_cases`, like the real crate).

#![forbid(unsafe_code)]

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// Deterministic generator used to drive strategies.
pub mod test_runner {
    /// SplitMix64 — tiny, fast, and plenty for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a stable hash of `name`, so a given
        /// property always sees the same inputs.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "bound must be positive");
            // Multiply-shift rejection-free mapping; bias is negligible for
            // test-input generation.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.next_below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` strategy: each element from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniform9`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[T; 9]` with i.i.d. elements.
    #[derive(Debug, Clone)]
    pub struct Uniform9<S>(S);

    /// Nine i.i.d. draws from `element`.
    pub fn uniform9<S: Strategy>(element: S) -> Uniform9<S> {
        Uniform9(element)
    }

    impl<S: Strategy> Strategy for Uniform9<S> {
        type Value = [S::Value; 9];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            core::array::from_fn(|_| self.0.sample(rng))
        }
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of options.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// Uniform choice among `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_below(self.0.len() as u64) as usize].clone()
        }
    }
}

/// Module-path alias so `prop::sample::select(...)` works as in the real
/// crate's prelude.
pub mod prop {
    pub use crate::{array, collection, sample};
}

/// The glob-import surface mirrored from the real crate.
pub mod prelude {
    pub use crate::{any, prop, Arbitrary, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Asserts within a `proptest!` body; failures report the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion within a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        ::std::stringify!($left),
                        ::std::stringify!($right),
                        left,
                        right
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` becomes a `#[test]` that
/// draws `cases` inputs from the strategies and runs the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$attr:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(::std::stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!("case {case}/{}: {message}", config.cases);
                }
            }
        }
    )*};
}
