#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/verify.sh          # build + tests + fmt + serving integration
#
# Everything runs offline; no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The root manifest is a package, not a virtual workspace, so the
# tier-1 build above only covers the facade crate and its deps. Build
# the remaining members (the `repro` binary in particular) too.
echo "== workspace build: cargo build --release --workspace =="
cargo build --release --workspace

echo "== formatting: cargo fmt --check =="
cargo fmt --all --check

echo "== lint: cargo clippy --all-targets -D warnings =="
cargo clippy -q --all-targets -- -D warnings
cargo clippy -q -p bagpred-obs --all-targets -- -D warnings
cargo clippy -q -p bagpred-ml --all-targets -- -D warnings

echo "== serving integration (bounded at 300s) =="
timeout 300 cargo test -q --test serving

echo "== serving lifecycle: drain + hot reload + admin gating (bounded at 120s) =="
# The lifecycle and security regressions this repo has shipped fixes
# for: a shutdown that leaks half-open connection threads, a reload
# that drops or mis-answers queued requests, and admin commands that
# let any TCP client read/write arbitrary files. Run them by name so a
# filter change in the suite above can never silently skip them.
timeout 120 cargo test -q --test serving -- --exact \
  shutdown_under_load_drains_all_connections_with_clean_final_replies \
  hot_reload_swaps_the_model_under_concurrent_traffic_without_dropping_requests \
  admin_commands_over_the_wire_are_disabled_by_default_and_confined_when_enabled
timeout 120 cargo test -q -p bagpred-serve --lib -- --exact \
  server::tests::non_reading_pipelining_client_cannot_block_shutdown \
  server::tests::multibyte_utf8_split_across_a_read_timeout_survives_intact \
  engine::tests::admin_paths_and_model_names_cannot_escape_the_snapshot_dir

echo "== wire protocol: frame codec + sharding isolation (bounded at 300s) =="
# The binary-framing and per-model-sharding invariants, run by name so
# they can never be silently filtered out: the frame codec must
# round-trip every opcode and fail typed (never panic) on mutated
# bytes, a malformed body must get an error frame without killing the
# connection, the negotiated binary client must render replies
# byte-identical to the text dialect, predictions over the binary wire
# must be bit-identical to the offline predictor, and a slowed model
# must not drag a fast peer's p99 when sharding is on.
timeout 120 cargo test -q -p bagpred-serve --lib -- --exact \
  frame::prop_tests::round_trip_is_identity \
  frame::prop_tests::mutated_frames_fail_typed_never_panic \
  server::tests::malformed_binary_bodies_get_an_error_frame_and_the_connection_survives \
  server::tests::binary_replies_come_back_in_completion_order_not_submission_order \
  client::tests::client_negotiates_binary_and_renders_identical_reply_lines
timeout 300 cargo test -q --test serving -- --exact \
  binary_wire_predictions_are_bit_identical_to_the_offline_predictor \
  shard_isolation_keeps_fast_model_p99_near_baseline_while_unsharded_degrades

echo "== observability: histograms, traces, exposition (bounded at 180s) =="
# The observability invariants, run by name so they can never be
# silently filtered out: lock-free histograms must not lose samples
# under concurrent writers, queue wait and service time must decompose
# request latency per model, the exposition must parse line by line,
# and the slow-request trace dump must stay admin-gated.
timeout 120 cargo test -q -p bagpred-obs --lib -- --exact \
  hist::tests::concurrent_writers_match_serial_reference \
  hist::tests::quantiles_are_nearest_rank_clamped_to_observed_range \
  expo::tests::histogram_emits_cumulative_buckets_sum_and_count \
  expo::tests::validator_rejects_malformed_lines
timeout 120 cargo test -q -p bagpred-serve --lib -- --exact \
  engine::tests::traces_split_queue_wait_from_service_time \
  engine::tests::slow_requests_are_captured_with_their_span_breakdown \
  engine::tests::exposition_covers_global_and_per_model_series_and_parses \
  metrics::tests::first_traffic_racers_share_one_entry_and_lose_no_counts \
  server::tests::metrics_listener_answers_http_scrapes_with_the_exposition
timeout 180 cargo test -q --test serving -- --exact \
  metrics_over_tcp_is_valid_prometheus_text_line_by_line \
  per_model_latency_histograms_sum_to_the_global_one_under_concurrent_clients \
  trace_dump_is_admin_gated_and_reports_slow_requests

echo "== outcome feedback: residual tracking + drift detection (bounded at 300s) =="
# The closed-loop accuracy invariants, run by name so they can never be
# silently filtered out: the rolling residual window must match a
# serial reference under concurrent writers, the Page-Hinkley detector
# must fire at a deterministic sample (and only on upward shifts), the
# engine must join each outcome to its recorded prediction exactly once
# (orphaning duplicates and evicting by capacity/TTL), a drift alarm
# must latch advisory-only and re-arm on reload, the wire must parse
# `observe` on both dialects, and the ext9 drill must fire at the same
# sample on every run while the live loop flips the exposition gauge.
timeout 120 cargo test -q -p bagpred-obs --lib -- --exact \
  rolling::tests::concurrent_writers_match_serial_reference \
  rolling::tests::signed_bias_distinguishes_over_and_under_prediction \
  drift::tests::step_change_fires_at_a_deterministic_sample \
  drift::tests::identical_sequences_fire_identically \
  drift::tests::constant_stream_never_fires \
  drift::tests::reset_rearms_the_detector
timeout 300 cargo test -q -p bagpred-serve --lib -- --exact \
  engine::tests::observe_joins_tagged_predictions_once_and_orphans_the_rest \
  engine::tests::outcome_ring_evicts_by_capacity_and_ttl_as_expired \
  engine::tests::drift_alarm_latches_flags_health_and_reload_rearms_the_detector \
  engine::tests::slow_captures_carry_the_upstream_trace_context \
  protocol::tests::parses_observe_and_formats_its_reply \
  client::tests::report_outcome_closes_the_loop_on_binary_and_orphans_on_text
timeout 300 cargo test -q -p bagpred-experiments --lib -- --exact \
  extensions::tests::online_mape_matches_offline_loocv_within_quantization \
  extensions::tests::drift_drill_fires_deterministically_after_the_perturbation \
  extensions::tests::live_loop_flips_the_drifting_gauge_in_the_exposition

echo "== fault tolerance: panic isolation + torn writes + deadlines (bounded at 300s) =="
# The robustness drills, run by name so they can never be silently
# filtered out: an injected worker panic must answer every one of 8
# concurrent clients with a typed reply (and reload must lift the
# quarantine), a torn snapshot write must quarantine-and-retrain on
# boot rather than keep the service down, and expired deadline_ms
# budgets must shed with `err deadline` instead of serving stale.
timeout 300 cargo test -q --test serving -- --exact \
  injected_worker_panic_under_eight_clients_answers_everyone_and_reload_recovers \
  torn_snapshot_writes_quarantine_on_boot_and_fall_back_to_retraining \
  deadline_shedding_refuses_stale_requests_behind_a_stalled_worker \
  client_backoff_retries_shed_requests_until_every_client_succeeds
timeout 120 cargo test -q -p bagpred-serve --lib -- --exact \
  fault::tests::concurrent_firing_consumes_the_budget_exactly_once_each \
  engine::tests::injected_panic_quarantines_the_model_and_reload_restores_it \
  engine::tests::aborted_workers_are_respawned_and_keep_serving \
  snapshot::tests::truncated_and_bitflipped_snapshots_are_quarantined_then_resave_round_trips

echo "== tail robustness: hedging + cancellation + brownout (bounded at 300s) =="
# The tail-latency armor invariants, run by name so they can never be
# silently filtered out: a hedge must beat a stalled shard while the
# pair counts exactly once in per-model stats, the hedged retry must
# inherit the *remaining* deadline (not a fresh one), an exhausted
# request must carry every hedge attempt id, cancellation must drop
# queued jobs with a typed error and answer `late` after the reply
# (including over the binary Cancel opcode), the cancel/reply race
# property must conserve counters, and brownout must shed low before
# normal before high with per-class counters.
timeout 300 cargo test -q -p bagpred-serve --lib -- --exact \
  client::tests::hedge_beats_a_slow_shard_and_the_pair_counts_once \
  client::tests::hedged_line_inherits_the_remaining_deadline \
  client::tests::exhausted_carries_hedge_attempt_ids \
  engine::tests::hedge_pairs_count_the_served_attempt_exactly_once \
  engine::tests::hedge_wins_after_a_cancelled_primary_and_counts_once \
  engine::tests::cancelled_jobs_are_dropped_at_dequeue_with_a_typed_error \
  engine::tests::cancel_after_reply_is_late_and_counted \
  engine::tests::cancel_race_props::cancel_reply_races_always_answer_and_conserve \
  engine::tests::brownout_sheds_low_before_normal_before_high \
  server::tests::binary_cancel_opcode_answers_inline_and_late_after_the_reply \
  metrics::tests::brownout_and_cancel_counters_track_per_class

echo "== flat traversal: level-order bit-identity + edge cases (bounded at 300s) =="
# The lane-parallel traversal invariants, run by name so they can never
# be silently filtered out: the chunked level-order walk (and its
# bounds-check-free small-tree fast form) must be bit-identical to the
# pre-order and boxed walks on random datasets, chunking must not
# change results for any remainder size 0..16, the f32-quantized lane
# must stay within its documented epsilon, and the hot-path edge cases
# (zero-width rows, short or out-of-range remap maps) must fail with
# their messaged asserts instead of raw index panics.
timeout 300 cargo test -q -p bagpred-ml --lib -- --exact \
  flat::tests::level_order_walk_is_bit_identical_to_preorder_and_boxed \
  flat::tests::forest_level_order_walk_is_bit_identical_to_preorder_and_boxed \
  flat::tests::chunked_walk_equals_one_at_a_time_for_every_remainder \
  flat::tests::quantized_walk_matches_exact_within_documented_epsilon \
  flat::tests::forest_quantized_walk_matches_exact_within_documented_epsilon \
  flat::tests::flat_tree_is_bit_identical_on_random_data \
  flat::tests::flat_forest_is_bit_identical_on_random_data \
  flat::tests::zero_width_strided_rows_are_rejected \
  flat::tests::zero_width_preorder_strided_rows_are_rejected \
  flat::tests::zero_width_forest_strided_rows_are_rejected \
  flat::tests::remap_rejects_a_short_map \
  flat::tests::remap_rejects_targets_beyond_the_width \
  flat::tests::forest_remap_rejects_a_short_map \
  flat::tests::forest_remap_rejects_targets_beyond_the_width

echo "== bench smoke + regression gate (vs committed BENCH_pipeline.json) =="
# Few-iteration smoke run; `repro bench` exits non-zero when any
# *_ns_per_record rate regresses past 2x the committed baseline.
smoke_json="$(mktemp /tmp/bagpred_bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_json" "${fleet_json:-}" "${fleet_json2:-}" "${soak1:-}" "${soak2:-}"' EXIT
./target/release/repro bench --smoke --out "$smoke_json" \
  --baseline BENCH_pipeline.json --max-regression 2.0
for key in schema smoke threads corpus_bags batch_records \
  corpus_measure_serial_ms corpus_measure_parallel_ms \
  train_tree_ms train_forest_ms \
  loocv_serial_ms loocv_parallel_ms loocv_speedup \
  tree_single_ns_per_record tree_batch_ns_per_record tree_batch_speedup \
  forest_single_ns_per_record forest_batch_ns_per_record forest_batch_speedup \
  stage_measure_corpus_p95_us stage_train_tree_p95_us stage_train_forest_p95_us \
  stage_loocv_p95_us stage_loocv_fold_samples stage_loocv_fold_p50_us \
  stage_predict_single_p95_us stage_predict_batch_p95_us \
  serve_text_protocol_ns_per_request serve_binary_protocol_ns_per_request \
  serve_protocol_speedup serve_text_ns_per_request serve_binary_ns_per_request \
  serve_isolation_baseline_p99_us serve_isolation_sharded_p99_us \
  serve_isolation_unsharded_p99_us \
  serve_obs_outcome_roundtrip_us obs_outcome_record_ns \
  serve_hedge_unhedged_p99_us serve_hedge_hedged_p99_us \
  serve_hedge_p99_improvement serve_cancel_roundtrip_us \
  flat_simd_tree_preorder_ns_per_record flat_simd_tree_ns_per_record \
  flat_simd_tree_speedup flat_simd_forest_preorder_ns_per_record \
  flat_simd_forest_ns_per_record flat_simd_forest_speedup \
  flat_simd_forest_quantized_ns_per_record \
  obs_batch_overhead_percent; do
  grep -q "\"$key\"" "$smoke_json" || {
    echo "bench report is missing key: $key" >&2
    exit 1
  }
done
grep -q '"schema": "bagpred-bench-v1"' "$smoke_json" || {
  echo "bench report has the wrong schema tag" >&2
  exit 1
}

# Instrumenting the batch-predict path with a histogram sample must stay
# cheap: fail if the measured overhead reaches 5%.
overhead="$(sed -n 's/.*"obs_batch_overhead_percent": \([0-9.]*\).*/\1/p' "$smoke_json")"
awk -v o="$overhead" 'BEGIN { exit !(o < 5.0) }' || {
  echo "histogram overhead on predict_batch is ${overhead}% (gate: < 5%)" >&2
  exit 1
}
echo "histogram overhead on predict_batch: ${overhead}% (< 5%)"

# The binary framing must actually be cheaper than the text dialect on
# pure protocol work (parse/decode a predict + format/encode its
# reply): gate at 1.5x. This is the per-request overhead the framing
# change exists to remove.
speedup="$(sed -n 's/.*"serve_protocol_speedup": \([0-9.]*\).*/\1/p' "$smoke_json")"
awk -v s="$speedup" 'BEGIN { exit !(s >= 1.5) }' || {
  echo "binary protocol is only ${speedup}x faster than text (gate: >= 1.5x)" >&2
  exit 1
}
echo "binary protocol codec speedup over text: ${speedup}x (>= 1.5x)"

# The chunked level-order forest walk must be >=2x the scalar pre-order
# baseline on the committed full-corpus run (both sides measured in the
# same run on the same jittered batch), and clearly ahead even on the
# fast-to-train smoke corpus, whose shallower trees flatter the branchy
# baseline.
committed_flat="$(sed -n 's/.*"flat_simd_forest_speedup": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)"
awk -v s="$committed_flat" 'BEGIN { exit !(s >= 2.0) }' || {
  echo "committed flat_simd_forest_speedup is ${committed_flat}x (gate: >= 2.0x)" >&2
  exit 1
}
echo "committed chunked level-order forest speedup: ${committed_flat}x (>= 2.0x)"
smoke_flat="$(sed -n 's/.*"flat_simd_forest_speedup": \([0-9.]*\).*/\1/p' "$smoke_json")"
awk -v s="$smoke_flat" 'BEGIN { exit !(s >= 1.2) }' || {
  echo "smoke flat_simd_forest_speedup is ${smoke_flat}x (floor: >= 1.2x)" >&2
  exit 1
}
echo "smoke chunked level-order forest speedup: ${smoke_flat}x (>= 1.2x floor)"

# Hedged requests must cut the stalled-model p99 by >=2x on the
# committed run (a 50ms every-50th stall that the adaptive-p95 hedge
# routes around), and clearly help even on the few-sample smoke run,
# whose coarse p99 quantile flatters the unhedged baseline.
committed_hedge="$(sed -n 's/.*"serve_hedge_p99_improvement": \([0-9.]*\).*/\1/p' BENCH_pipeline.json)"
awk -v s="$committed_hedge" 'BEGIN { exit !(s >= 2.0) }' || {
  echo "committed serve_hedge_p99_improvement is ${committed_hedge}x (gate: >= 2.0x)" >&2
  exit 1
}
echo "committed hedged p99 improvement: ${committed_hedge}x (>= 2.0x)"
smoke_hedge="$(sed -n 's/.*"serve_hedge_p99_improvement": \([0-9.]*\).*/\1/p' "$smoke_json")"
awk -v s="$smoke_hedge" 'BEGIN { exit !(s >= 1.5) }' || {
  echo "smoke serve_hedge_p99_improvement is ${smoke_hedge}x (floor: >= 1.5x)" >&2
  exit 1
}
echo "smoke hedged p99 improvement: ${smoke_hedge}x (>= 1.5x floor)"

echo "== chaos soak: fault storm + invariants + digest determinism (bounded at 300s) =="
# Seeded storm (stalls, worker panics, cancel races, dropped and
# duplicated replies) against a live server with hedging clients. The
# run must hold its conservation invariants (exit 0), and two runs of
# the same seed must produce byte-identical digests.
soak1="$(mktemp /tmp/bagpred_soak_digest.XXXXXX.txt)"
soak2="$(mktemp /tmp/bagpred_soak_digest.XXXXXX.txt)"
timeout 120 ./target/release/repro soak --smoke --digest > "$soak1" 2> /dev/null
timeout 120 ./target/release/repro soak --smoke --digest > "$soak2" 2> /dev/null
grep -q 'invariants=pass' "$soak1" || {
  echo "chaos soak digest does not report passing invariants" >&2
  exit 1
}
cmp -s "$soak1" "$soak2" || {
  echo "chaos soak digest is not deterministic for a fixed seed" >&2
  exit 1
}
echo "chaos soak: invariants hold, digest deterministic ($(cat "$soak1"))"
timeout 300 cargo test -q -p bagpred-experiments --lib -- --exact \
  soak::tests::smoke_soak_holds_invariants_and_digest_is_deterministic

echo "== fleet smoke + determinism + FFD optimality-gap gate (bounded at 300s) =="
# Fixed-seed capacity-planning smoke: the report must carry the full
# contract (shed rates, tail latency, packing efficiency, gap table),
# two runs of the same seed must be byte-identical, and first-fit-
# decreasing must land within 15% of the exhaustive optimum on the
# gap instances — the measured cost of ignoring co-run interference.
fleet_json="$(mktemp /tmp/bagpred_fleet_smoke.XXXXXX.json)"
fleet_json2="$(mktemp /tmp/bagpred_fleet_smoke.XXXXXX.json)"
timeout 300 ./target/release/repro fleet --smoke --seed 42 --json \
  --out "$fleet_json" > /dev/null
for key in schema smoke seed duration_s base_rate_per_s patience_s \
  budget_s window gpu_sweep arrivals \
  ffd_k1_shed_rate ffd_k1_packing_efficiency ffd_k1_corun_sets \
  ffd_k1_online_mape_percent solo_k1_online_mape_percent \
  ffd_k2_p50_ms ffd_k2_p99_ms ffd_k2_utilization \
  solo_k1_shed_rate solo_k1_packing_efficiency solo_k2_p99_ms \
  gap_instances gap_jobs gap_gpus gap_budget_slack \
  ffd_gap_mean_percent ffd_gap_max_percent \
  solo_gap_max_percent optimal_gap_max_percent; do
  grep -q "\"$key\"" "$fleet_json" || {
    echo "fleet report is missing key: $key" >&2
    exit 1
  }
done
grep -q '"schema": "bagpred-fleet-v1"' "$fleet_json" || {
  echo "fleet report has the wrong schema tag" >&2
  exit 1
}
timeout 300 ./target/release/repro fleet --smoke --seed 42 --json \
  --out "$fleet_json2" > /dev/null
cmp -s "$fleet_json" "$fleet_json2" || {
  echo "fleet report is not deterministic for a fixed seed" >&2
  exit 1
}
ffd_gap="$(sed -n 's/.*"ffd_gap_max_percent": \([0-9.]*\).*/\1/p' "$fleet_json")"
awk -v g="$ffd_gap" 'BEGIN { exit !(g <= 15.0) }' || {
  echo "FFD worst-case optimality gap is ${ffd_gap}% (gate: <= 15%)" >&2
  exit 1
}
echo "FFD worst-case optimality gap: ${ffd_gap}% (<= 15%)"

# The simulator's own invariants, run by name so a filter change can
# never silently skip them: byte-identical reports for a fixed seed,
# and the admission property test (capacity, budget, conservation,
# determinism across both policies).
timeout 300 cargo test -q -p bagpred-fleet --test determinism -- --exact \
  same_seed_same_bytes \
  different_seed_different_bytes
timeout 300 cargo test -q -p bagpred-serve --lib -- --exact \
  admission::prop_tests::place_invariants_hold

echo "verify: OK"
