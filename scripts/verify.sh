#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/verify.sh          # build + tests + fmt + serving integration
#
# Everything runs offline; no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The root manifest is a package, not a virtual workspace, so the
# tier-1 build above only covers the facade crate and its deps. Build
# the remaining members (the `repro` binary in particular) too.
echo "== workspace build: cargo build --release --workspace =="
cargo build --release --workspace

echo "== formatting: cargo fmt --check =="
cargo fmt --all --check

echo "== serving integration (bounded at 300s) =="
timeout 300 cargo test -q --test serving

echo "verify: OK"
