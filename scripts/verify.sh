#!/usr/bin/env bash
# Tier-1 verification: what CI (and the roadmap) require to stay green.
#
#   scripts/verify.sh          # build + tests + fmt + serving integration
#
# Everything runs offline; no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

# The root manifest is a package, not a virtual workspace, so the
# tier-1 build above only covers the facade crate and its deps. Build
# the remaining members (the `repro` binary in particular) too.
echo "== workspace build: cargo build --release --workspace =="
cargo build --release --workspace

echo "== formatting: cargo fmt --check =="
cargo fmt --all --check

echo "== lint: cargo clippy --all-targets -D warnings =="
cargo clippy -q --all-targets -- -D warnings

echo "== serving integration (bounded at 300s) =="
timeout 300 cargo test -q --test serving

echo "== serving lifecycle: drain + hot reload + admin gating (bounded at 120s) =="
# The lifecycle and security regressions this repo has shipped fixes
# for: a shutdown that leaks half-open connection threads, a reload
# that drops or mis-answers queued requests, and admin commands that
# let any TCP client read/write arbitrary files. Run them by name so a
# filter change in the suite above can never silently skip them.
timeout 120 cargo test -q --test serving -- --exact \
  shutdown_under_load_drains_all_connections_with_clean_final_replies \
  hot_reload_swaps_the_model_under_concurrent_traffic_without_dropping_requests \
  admin_commands_over_the_wire_are_disabled_by_default_and_confined_when_enabled
timeout 120 cargo test -q -p bagpred-serve --lib -- --exact \
  server::tests::non_reading_pipelining_client_cannot_block_shutdown \
  server::tests::multibyte_utf8_split_across_a_read_timeout_survives_intact \
  engine::tests::admin_paths_and_model_names_cannot_escape_the_snapshot_dir

echo "== bench smoke + regression gate (vs committed BENCH_pipeline.json) =="
# Few-iteration smoke run; `repro bench` exits non-zero when any
# *_ns_per_record rate regresses past 2x the committed baseline.
smoke_json="$(mktemp /tmp/bagpred_bench_smoke.XXXXXX.json)"
trap 'rm -f "$smoke_json"' EXIT
./target/release/repro bench --smoke --out "$smoke_json" \
  --baseline BENCH_pipeline.json --max-regression 2.0
for key in schema smoke threads corpus_bags batch_records \
  corpus_measure_serial_ms corpus_measure_parallel_ms \
  train_tree_ms train_forest_ms \
  loocv_serial_ms loocv_parallel_ms loocv_speedup \
  tree_single_ns_per_record tree_batch_ns_per_record tree_batch_speedup \
  forest_single_ns_per_record forest_batch_ns_per_record forest_batch_speedup; do
  grep -q "\"$key\"" "$smoke_json" || {
    echo "bench report is missing key: $key" >&2
    exit 1
  }
done
grep -q '"schema": "bagpred-bench-v1"' "$smoke_json" || {
  echo "bench report has the wrong schema tag" >&2
  exit 1
}

echo "verify: OK"
