//! Error types.

use std::error::Error;
use std::fmt;

/// Error raised when constructing or extending a [`Dataset`](crate::Dataset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// No feature names were given.
    NoFeatures,
    /// Feature names are not unique.
    DuplicateFeature {
        /// The repeated name.
        name: String,
    },
    /// A sample's feature vector has the wrong length.
    DimensionMismatch {
        /// Expected dimension (number of feature names).
        expected: usize,
        /// Dimension of the offending sample.
        actual: usize,
    },
    /// A feature value or target is NaN or infinite.
    NonFiniteValue,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::NoFeatures => f.write_str("dataset needs at least one feature"),
            DatasetError::DuplicateFeature { name } => {
                write!(f, "duplicate feature name `{name}`")
            }
            DatasetError::DimensionMismatch { expected, actual } => {
                write!(f, "expected {expected} features, got {actual}")
            }
            DatasetError::NonFiniteValue => f.write_str("values must be finite"),
        }
    }
}

impl Error for DatasetError {}

/// Error raised when fitting a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// The training set has no samples.
    EmptyDataset,
    /// The model's hyper-parameters are invalid for this data.
    InvalidHyperparameters {
        /// Human-readable reason.
        reason: String,
    },
    /// The underlying linear system could not be solved.
    SingularSystem,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::EmptyDataset => f.write_str("training set has no samples"),
            FitError::InvalidHyperparameters { reason } => {
                write!(f, "invalid hyper-parameters: {reason}")
            }
            FitError::SingularSystem => f.write_str("linear system is singular"),
        }
    }
}

impl Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(DatasetError::NoFeatures.to_string().contains("feature"));
        assert!(DatasetError::DimensionMismatch {
            expected: 3,
            actual: 2
        }
        .to_string()
        .contains('3'));
        assert!(FitError::EmptyDataset.to_string().contains("no samples"));
        assert!(FitError::SingularSystem.to_string().contains("singular"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn takes_error<E: Error>(_: E) {}
        takes_error(DatasetError::NonFiniteValue);
        takes_error(FitError::EmptyDataset);
    }
}
