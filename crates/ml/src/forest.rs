//! Random-forest regression (bagged CART ensemble).
//!
//! The paper uses a single decision tree for explainability; a forest is
//! the natural robustness extension (averaging bootstrap-resampled trees
//! with feature subsampling). It trades the single tree's readable decision
//! paths for lower variance — the comparison the `model_comparison`
//! extension experiment quantifies.

use crate::codec::{self, CodecError};
use crate::dataset::Dataset;
use crate::error::FitError;
use crate::tree::DecisionTreeRegressor;
use crate::Regressor;
use bagpred_trace::SplitMix64;
use serde::{Deserialize, Serialize};

/// A bagged ensemble of CART regression trees.
///
/// Each tree trains on a bootstrap resample of the data over a random
/// subset of the features; predictions are the ensemble mean. Training is
/// deterministic for a given seed.
///
/// # Example
///
/// ```
/// use bagpred_ml::{Dataset, RandomForestRegressor, Regressor};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..40 {
///     data.push(vec![i as f64], (i * 3) as f64)?;
/// }
/// let mut forest = RandomForestRegressor::new().with_n_trees(20);
/// forest.fit(&data)?;
/// let y = forest.predict(&[20.0]);
/// assert!((y - 60.0).abs() < 12.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    n_trees: usize,
    max_depth: usize,
    feature_fraction: f64,
    seed: u64,
    trees: Vec<(DecisionTreeRegressor, Vec<usize>)>,
}

impl Default for RandomForestRegressor {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomForestRegressor {
    /// Creates a forest with default hyper-parameters (25 trees, depth 10,
    /// ~70% of features per tree).
    pub fn new() -> Self {
        Self {
            n_trees: 25,
            max_depth: 10,
            feature_fraction: 0.7,
            seed: 0x0f0e_0257,
            trees: Vec::new(),
        }
    }

    /// Sets the ensemble size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_n_trees(mut self, n: usize) -> Self {
        assert!(n > 0, "a forest needs at least one tree");
        self.n_trees = n;
        self
    }

    /// Sets the per-tree maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Sets the fraction of features each tree sees.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn with_feature_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "feature fraction must be in (0, 1]"
        );
        self.feature_fraction = fraction;
        self
    }

    /// Sets the resampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of fitted trees (0 before fitting).
    pub fn n_fitted_trees(&self) -> usize {
        self.trees.len()
    }

    /// The fitted trees with their feature-subset indices (empty before
    /// fitting). This is what [`crate::FlatForest`] compiles from.
    pub fn fitted_trees(&self) -> &[(DecisionTreeRegressor, Vec<usize>)] {
        &self.trees
    }

    /// Serializes the forest as the line-based text of [`crate::codec`]:
    /// a `forest` header, then per fitted tree a `features` line (the
    /// feature-subset indices that tree was trained on) followed by the
    /// tree's own block ([`DecisionTreeRegressor::to_text`] format).
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "forest n_trees={} max_depth={} feature_fraction={} seed={} fitted={}\n",
            self.n_trees,
            self.max_depth,
            codec::fmt_f64(self.feature_fraction),
            self.seed,
            self.trees.len(),
        );
        for (tree, feats) in &self.trees {
            out.push_str("features");
            for f in feats {
                out.push(' ');
                out.push_str(&f.to_string());
            }
            out.push('\n');
            tree.encode_into(&mut out);
        }
        out
    }

    /// Reconstructs a forest from [`to_text`](Self::to_text) output;
    /// predictions are bit-identical to the serialized model's.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on a malformed header, feature line, or
    /// embedded tree block, and on trailing garbage.
    pub fn from_text(text: &str) -> Result<Self, CodecError> {
        let lines: Vec<&str> = text.lines().collect();
        let header = lines
            .first()
            .ok_or_else(|| CodecError::new(0, "missing forest header"))?;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.first() != Some(&"forest") || tokens.len() != 6 {
            return Err(CodecError::new(1, "expected `forest` header"));
        }
        let n_trees = codec::kv_usize(tokens[1], "n_trees", 1)?;
        let max_depth = codec::kv_usize(tokens[2], "max_depth", 1)?;
        let feature_fraction = codec::kv_f64(tokens[3], "feature_fraction", 1)?;
        let seed = codec::kv_u64(tokens[4], "seed", 1)?;
        let fitted = codec::kv_usize(tokens[5], "fitted", 1)?;
        if n_trees == 0 || max_depth == 0 {
            return Err(CodecError::new(1, "n_trees and max_depth must be positive"));
        }
        if !(feature_fraction > 0.0 && feature_fraction <= 1.0) {
            return Err(CodecError::new(1, "feature_fraction must be in (0, 1]"));
        }

        let mut trees = Vec::with_capacity(fitted);
        let mut cursor = 1;
        for _ in 0..fitted {
            let line_no = cursor + 1;
            let feature_line = lines.get(cursor).ok_or_else(|| {
                CodecError::new(0, format!("truncated forest: expected {fitted} trees"))
            })?;
            let mut parts = feature_line.split_whitespace();
            if parts.next() != Some("features") {
                return Err(CodecError::new(line_no, "expected `features` line"));
            }
            let feats: Vec<usize> = parts
                .map(|t| {
                    t.parse()
                        .map_err(|_| CodecError::new(line_no, format!("bad feature index `{t}`")))
                })
                .collect::<Result<_, _>>()?;
            if feats.is_empty() {
                return Err(CodecError::new(
                    line_no,
                    "a tree needs at least one feature",
                ));
            }
            cursor += 1;
            let (tree, next) = DecisionTreeRegressor::decode_lines(&lines, cursor)?;
            if tree.n_features() != feats.len() {
                return Err(CodecError::new(
                    cursor + 1,
                    format!(
                        "tree expects {} features but its subset line lists {}",
                        tree.n_features(),
                        feats.len()
                    ),
                ));
            }
            cursor = next;
            trees.push((tree, feats));
        }
        if lines[cursor..].iter().any(|l| !l.trim().is_empty()) {
            return Err(CodecError::new(
                cursor + 1,
                "trailing content after forest block",
            ));
        }
        Ok(Self {
            n_trees,
            max_depth,
            feature_fraction,
            seed,
            trees,
        })
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError> {
        if dataset.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let n = dataset.len();
        let d = dataset.n_features();
        let n_feats = ((d as f64 * self.feature_fraction).ceil() as usize).clamp(1, d);
        let mut rng = SplitMix64::new(self.seed);
        self.trees.clear();

        for _ in 0..self.n_trees {
            // Bootstrap resample of rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.next_below(n as u64) as usize).collect();
            // Random feature subset (Fisher-Yates prefix).
            let mut feats: Vec<usize> = (0..d).collect();
            for i in 0..n_feats {
                let j = i + rng.next_below((d - i) as u64) as usize;
                feats.swap(i, j);
            }
            feats.truncate(n_feats);
            feats.sort_unstable();

            // Project the bootstrap sample onto the feature subset.
            let names: Vec<&str> = feats
                .iter()
                .map(|&f| dataset.feature_names()[f].as_str())
                .collect();
            let projected = dataset
                .subset(&rows)
                .project(&names)
                .expect("projection of known features succeeds");

            let mut tree = DecisionTreeRegressor::new().with_max_depth(self.max_depth);
            tree.fit(&projected)?;
            self.trees.push((tree, feats));
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "forest must be fitted");
        let sum: f64 = self
            .trees
            .iter()
            .map(|(tree, feats)| {
                let projected: Vec<f64> = feats.iter().map(|&f| features[f]).collect();
                tree.predict(&projected)
            })
            .sum();
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn noisy_line() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()]).unwrap();
        let mut rng = SplitMix64::new(99);
        for i in 0..60 {
            let noise = rng.next_range(-2.0, 2.0);
            d.push(vec![i as f64, rng.next_f64()], 2.0 * i as f64 + noise)
                .unwrap();
        }
        d
    }

    #[test]
    fn forest_fits_noisy_line() {
        let mut f = RandomForestRegressor::new();
        f.fit(&noisy_line()).unwrap();
        assert_eq!(f.n_fitted_trees(), 25);
        let y = f.predict(&[30.0, 0.5]);
        assert!((y - 60.0).abs() < 8.0, "predicted {y}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = noisy_line();
        let mut a = RandomForestRegressor::new().with_seed(5);
        let mut b = RandomForestRegressor::new().with_seed(5);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[10.0, 0.0]), b.predict(&[10.0, 0.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let data = noisy_line();
        let mut a = RandomForestRegressor::new().with_seed(1);
        let mut b = RandomForestRegressor::new().with_seed(2);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_ne!(a.predict(&[10.5, 0.0]), b.predict(&[10.5, 0.0]));
    }

    #[test]
    fn single_tree_forest_behaves_like_a_tree() {
        let data = noisy_line();
        let mut f = RandomForestRegressor::new()
            .with_n_trees(1)
            .with_feature_fraction(1.0);
        f.fit(&data).unwrap();
        assert_eq!(f.n_fitted_trees(), 1);
        assert!(f.predict(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert_eq!(
            RandomForestRegressor::new().fit(&d).unwrap_err(),
            FitError::EmptyDataset
        );
    }

    #[test]
    #[should_panic(expected = "forest must be fitted")]
    fn predict_before_fit_panics() {
        RandomForestRegressor::new().predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "feature fraction")]
    fn bad_feature_fraction_panics() {
        RandomForestRegressor::new().with_feature_fraction(0.0);
    }

    proptest! {
        #[test]
        fn forest_predictions_stay_in_target_hull(
            targets in proptest::collection::vec(-50.0f64..50.0, 4..30),
            query in -100.0f64..100.0,
        ) {
            let mut d = Dataset::new(vec!["x".into()]).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                d.push(vec![i as f64], t).unwrap();
            }
            let mut f = RandomForestRegressor::new().with_n_trees(8);
            f.fit(&d).unwrap();
            let y = f.predict(&[query]);
            let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }

        #[test]
        fn text_round_trip_is_exact(query in -20.0f64..80.0) {
            let data = noisy_line();
            let mut forest = RandomForestRegressor::new().with_n_trees(6);
            forest.fit(&data).unwrap();
            let restored = RandomForestRegressor::from_text(&forest.to_text()).unwrap();
            prop_assert_eq!(&restored, &forest);
            prop_assert!(
                restored.predict(&[query, 0.3]).to_bits()
                    == forest.predict(&[query, 0.3]).to_bits(),
                "prediction drifted after round trip"
            );
        }
    }

    #[test]
    fn unfitted_forest_round_trips() {
        let forest = RandomForestRegressor::new().with_seed(11);
        let restored = RandomForestRegressor::from_text(&forest.to_text()).unwrap();
        assert_eq!(restored, forest);
        assert_eq!(restored.n_fitted_trees(), 0);
    }

    #[test]
    fn malformed_forest_text_is_rejected() {
        assert!(RandomForestRegressor::from_text("tree x=1").is_err());
        // Feature-subset arity disagreeing with the embedded tree.
        let mut forest = RandomForestRegressor::new().with_n_trees(1);
        forest.fit(&noisy_line()).unwrap();
        let mangled = forest.to_text().replacen("features 0 1", "features 0", 1);
        if mangled != forest.to_text() {
            assert!(RandomForestRegressor::from_text(&mangled).is_err());
        }
        // Truncation: drop the final line.
        let text = forest.to_text();
        let cut = &text[..text.trim_end().rfind('\n').unwrap()];
        assert!(RandomForestRegressor::from_text(cut).is_err());
    }
}
