//! Random-forest regression (bagged CART ensemble).
//!
//! The paper uses a single decision tree for explainability; a forest is
//! the natural robustness extension (averaging bootstrap-resampled trees
//! with feature subsampling). It trades the single tree's readable decision
//! paths for lower variance — the comparison the `model_comparison`
//! extension experiment quantifies.

use crate::dataset::Dataset;
use crate::error::FitError;
use crate::tree::DecisionTreeRegressor;
use crate::Regressor;
use bagpred_trace::SplitMix64;
use serde::{Deserialize, Serialize};

/// A bagged ensemble of CART regression trees.
///
/// Each tree trains on a bootstrap resample of the data over a random
/// subset of the features; predictions are the ensemble mean. Training is
/// deterministic for a given seed.
///
/// # Example
///
/// ```
/// use bagpred_ml::{Dataset, RandomForestRegressor, Regressor};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..40 {
///     data.push(vec![i as f64], (i * 3) as f64)?;
/// }
/// let mut forest = RandomForestRegressor::new().with_n_trees(20);
/// forest.fit(&data)?;
/// let y = forest.predict(&[20.0]);
/// assert!((y - 60.0).abs() < 12.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    n_trees: usize,
    max_depth: usize,
    feature_fraction: f64,
    seed: u64,
    trees: Vec<(DecisionTreeRegressor, Vec<usize>)>,
}

impl Default for RandomForestRegressor {
    fn default() -> Self {
        Self::new()
    }
}

impl RandomForestRegressor {
    /// Creates a forest with default hyper-parameters (25 trees, depth 10,
    /// ~70% of features per tree).
    pub fn new() -> Self {
        Self {
            n_trees: 25,
            max_depth: 10,
            feature_fraction: 0.7,
            seed: 0x0f0e_0257,
            trees: Vec::new(),
        }
    }

    /// Sets the ensemble size.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn with_n_trees(mut self, n: usize) -> Self {
        assert!(n > 0, "a forest needs at least one tree");
        self.n_trees = n;
        self
    }

    /// Sets the per-tree maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Sets the fraction of features each tree sees.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `(0, 1]`.
    pub fn with_feature_fraction(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "feature fraction must be in (0, 1]"
        );
        self.feature_fraction = fraction;
        self
    }

    /// Sets the resampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Number of fitted trees (0 before fitting).
    pub fn n_fitted_trees(&self) -> usize {
        self.trees.len()
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError> {
        if dataset.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let n = dataset.len();
        let d = dataset.n_features();
        let n_feats = ((d as f64 * self.feature_fraction).ceil() as usize).clamp(1, d);
        let mut rng = SplitMix64::new(self.seed);
        self.trees.clear();

        for _ in 0..self.n_trees {
            // Bootstrap resample of rows.
            let rows: Vec<usize> = (0..n).map(|_| rng.next_below(n as u64) as usize).collect();
            // Random feature subset (Fisher-Yates prefix).
            let mut feats: Vec<usize> = (0..d).collect();
            for i in 0..n_feats {
                let j = i + rng.next_below((d - i) as u64) as usize;
                feats.swap(i, j);
            }
            feats.truncate(n_feats);
            feats.sort_unstable();

            // Project the bootstrap sample onto the feature subset.
            let names: Vec<&str> = feats
                .iter()
                .map(|&f| dataset.feature_names()[f].as_str())
                .collect();
            let projected = dataset
                .subset(&rows)
                .project(&names)
                .expect("projection of known features succeeds");

            let mut tree = DecisionTreeRegressor::new().with_max_depth(self.max_depth);
            tree.fit(&projected)?;
            self.trees.push((tree, feats));
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(!self.trees.is_empty(), "forest must be fitted");
        let sum: f64 = self
            .trees
            .iter()
            .map(|(tree, feats)| {
                let projected: Vec<f64> = feats.iter().map(|&f| features[f]).collect();
                tree.predict(&projected)
            })
            .sum();
        sum / self.trees.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn noisy_line() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()]).unwrap();
        let mut rng = SplitMix64::new(99);
        for i in 0..60 {
            let noise = rng.next_range(-2.0, 2.0);
            d.push(vec![i as f64, rng.next_f64()], 2.0 * i as f64 + noise)
                .unwrap();
        }
        d
    }

    #[test]
    fn forest_fits_noisy_line() {
        let mut f = RandomForestRegressor::new();
        f.fit(&noisy_line()).unwrap();
        assert_eq!(f.n_fitted_trees(), 25);
        let y = f.predict(&[30.0, 0.5]);
        assert!((y - 60.0).abs() < 8.0, "predicted {y}");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = noisy_line();
        let mut a = RandomForestRegressor::new().with_seed(5);
        let mut b = RandomForestRegressor::new().with_seed(5);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_eq!(a.predict(&[10.0, 0.0]), b.predict(&[10.0, 0.0]));
    }

    #[test]
    fn different_seeds_differ() {
        let data = noisy_line();
        let mut a = RandomForestRegressor::new().with_seed(1);
        let mut b = RandomForestRegressor::new().with_seed(2);
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        assert_ne!(a.predict(&[10.5, 0.0]), b.predict(&[10.5, 0.0]));
    }

    #[test]
    fn single_tree_forest_behaves_like_a_tree() {
        let data = noisy_line();
        let mut f = RandomForestRegressor::new()
            .with_n_trees(1)
            .with_feature_fraction(1.0);
        f.fit(&data).unwrap();
        assert_eq!(f.n_fitted_trees(), 1);
        assert!(f.predict(&[0.0, 0.0]).is_finite());
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert_eq!(
            RandomForestRegressor::new().fit(&d).unwrap_err(),
            FitError::EmptyDataset
        );
    }

    #[test]
    #[should_panic(expected = "forest must be fitted")]
    fn predict_before_fit_panics() {
        RandomForestRegressor::new().predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "feature fraction")]
    fn bad_feature_fraction_panics() {
        RandomForestRegressor::new().with_feature_fraction(0.0);
    }

    proptest! {
        #[test]
        fn forest_predictions_stay_in_target_hull(
            targets in proptest::collection::vec(-50.0f64..50.0, 4..30),
            query in -100.0f64..100.0,
        ) {
            let mut d = Dataset::new(vec!["x".into()]).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                d.push(vec![i as f64], t).unwrap();
            }
            let mut f = RandomForestRegressor::new().with_n_trees(8);
            f.fit(&d).unwrap();
            let y = f.predict(&[query]);
            let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }
    }
}
