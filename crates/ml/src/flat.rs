//! Flattened, array-based tree inference — the serving hot path.
//!
//! A fitted [`DecisionTreeRegressor`] stores `Box<TreeNode>` nodes scattered
//! across the heap; every prediction pointer-chases one record at a time.
//! [`FlatTree`] compiles the fitted structure into a struct-of-arrays
//! layout: nodes live in contiguous `Vec`s in **pre-order**, so a node's
//! left child is always the next index and only the right-child index is
//! stored. Traversal touches four dense arrays instead of boxed enums, and
//! [`FlatTree::predict_batch`] walks many records per tree with zero
//! per-record allocation.
//!
//! Compilation preserves split features, thresholds and leaf values
//! bit-for-bit, so flat predictions are **bit-identical** to the boxed
//! tree's — the property tests at the bottom of this module prove it on
//! random datasets.
//!
//! # Example
//!
//! ```
//! use bagpred_ml::{Dataset, DecisionTreeRegressor, FlatTree, Regressor};
//!
//! let mut data = Dataset::new(vec!["x".into()])?;
//! for i in 0..10 {
//!     data.push(vec![i as f64], if i <= 5 { 1.0 } else { 9.0 })?;
//! }
//! let mut tree = DecisionTreeRegressor::new();
//! tree.fit(&data)?;
//! let flat = FlatTree::from_tree(&tree).expect("fitted");
//! assert_eq!(flat.predict(&[3.0]).to_bits(), tree.predict(&[3.0]).to_bits());
//! let batch = flat.predict_batch(&[&[3.0][..], &[8.0][..]]);
//! assert_eq!(batch, vec![1.0, 9.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::forest::RandomForestRegressor;
use crate::tree::{DecisionTreeRegressor, TreeNode};

/// Sentinel in the `feature` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// A fitted regression tree compiled to a contiguous, index-linked,
/// struct-of-arrays representation.
///
/// Nodes are laid out in pre-order: node `i`'s left child is `i + 1`, and
/// `right[i]` holds the right child's index. A leaf stores [`LEAF`] in its
/// feature slot and its prediction in `value[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree {
    n_features: usize,
    /// Split feature per node; `u32::MAX` marks a leaf.
    feature: Vec<u32>,
    /// Split threshold per node (0.0 and unused for leaves).
    threshold: Vec<f64>,
    /// Leaf prediction per node (0.0 and unused for splits).
    value: Vec<f64>,
    /// Right-child index per node (the left child is the next node).
    right: Vec<u32>,
}

impl FlatTree {
    /// Compiles a fitted boxed tree, or `None` when the tree is unfitted.
    pub fn from_tree(tree: &DecisionTreeRegressor) -> Option<Self> {
        let root = tree.root()?;
        let mut flat = Self {
            n_features: tree.n_features(),
            feature: Vec::new(),
            threshold: Vec::new(),
            value: Vec::new(),
            right: Vec::new(),
        };
        flat.flatten(root);
        Some(flat)
    }

    fn flatten(&mut self, node: &TreeNode) -> u32 {
        let idx = self.feature.len() as u32;
        match node {
            TreeNode::Leaf { prediction, .. } => {
                self.feature.push(LEAF);
                self.threshold.push(0.0);
                self.value.push(*prediction);
                self.right.push(0);
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                assert!(
                    *feature < LEAF as usize,
                    "feature index exceeds the flat encoding"
                );
                self.feature.push(*feature as u32);
                self.threshold.push(*threshold);
                self.value.push(0.0);
                self.right.push(0); // patched once the left subtree is laid out
                self.flatten(left);
                let r = self.flatten(right);
                self.right[idx as usize] = r;
            }
        }
        idx
    }

    /// Number of nodes in the compiled tree.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Dimensionality of the feature vectors the source tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicts one record. Bit-identical to the source tree's
    /// [`predict`](crate::Regressor::predict).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimension.
    #[inline]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector has wrong dimension"
        );
        self.walk(features)
    }

    /// The traversal itself, without the dimension assert — shared with
    /// [`FlatForest`], whose remapped trees read full-width rows.
    #[inline]
    fn walk(&self, features: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.value[i];
            }
            i = if features[f as usize] <= self.threshold[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Predicts every record of a batch, appending into `out` (which is
    /// not cleared). No allocation happens per record.
    pub fn predict_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        out.reserve(rows.len());
        for row in rows {
            out.push(self.predict(row));
        }
    }

    /// Predicts every `width`-wide row of one contiguous feature buffer,
    /// appending into `out`. Skipping the per-row `&[f64]` fat pointers
    /// makes this the cheapest batch entry point.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not the tree's feature dimension or `buf` is
    /// not a whole number of rows.
    pub fn predict_strided(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert_eq!(width, self.n_features, "row width has wrong dimension");
        assert_eq!(buf.len() % width.max(1), 0, "buffer is not whole rows");
        out.reserve(buf.len() / width.max(1));
        for row in buf.chunks_exact(width) {
            out.push(self.walk(row));
        }
    }

    /// Predicts every record of a batch.
    pub fn predict_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(rows, &mut out);
        out
    }

    /// The distinct feature indices the compiled tree splits on, sorted
    /// ascending. A caller can materialize only these row columns and
    /// renumber via [`remap_features`](Self::remap_features).
    pub fn used_features(&self) -> Vec<u32> {
        let mut used: Vec<u32> = self
            .feature
            .iter()
            .copied()
            .filter(|&f| f != LEAF)
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Renumbers every split feature through `map` (indexed by the old
    /// feature id) and declares `new_width` as the expected row width.
    ///
    /// The walk compares the same values against the same thresholds, so
    /// predictions stay bit-identical as long as the caller's rows really
    /// do carry the old column `f` at new column `map[f]`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is missing an entry for a used feature or maps one
    /// at or beyond `new_width`.
    pub fn remap_features(&mut self, map: &[u32], new_width: usize) {
        for f in &mut self.feature {
            if *f != LEAF {
                let to = map[*f as usize];
                assert!(
                    (to as usize) < new_width,
                    "remapped feature exceeds row width"
                );
                *f = to;
            }
        }
        self.n_features = new_width;
    }
}

/// A fitted random forest compiled to flat trees whose split-feature
/// indices are **remapped into full-row space** at compile time.
///
/// Each boxed forest tree is fitted on a projected feature subset, so the
/// boxed walk must first copy the subset out of the row — one `Vec`
/// allocation per tree per record. Remapping node `feature` indices
/// through the subset (`subset[f]`) lets the flat walk read the full row
/// directly: no projection, no scratch, no allocation anywhere on the
/// batch path. The same values meet the same thresholds in the same
/// order, so predictions are bit-identical to the boxed forest's (same
/// tree order, same summation order).
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    /// Minimum row width a prediction needs: the highest remapped feature
    /// index + 1 (the boxed forest indexes rows identically).
    min_width: usize,
}

impl FlatForest {
    /// Compiles a fitted boxed forest, or `None` when unfitted.
    pub fn from_forest(forest: &RandomForestRegressor) -> Option<Self> {
        let fitted = forest.fitted_trees();
        if fitted.is_empty() {
            return None;
        }
        let mut min_width = 0usize;
        let trees: Vec<FlatTree> = fitted
            .iter()
            .map(|(tree, subset)| {
                let mut flat = FlatTree::from_tree(tree).expect("fitted forests hold fitted trees");
                for f in &mut flat.feature {
                    if *f != LEAF {
                        let remapped = subset[*f as usize];
                        assert!(remapped < LEAF as usize, "feature index exceeds encoding");
                        *f = remapped as u32;
                        min_width = min_width.max(remapped + 1);
                    }
                }
                flat.n_features = 0; // subset-space width is meaningless now
                flat
            })
            .collect();
        Some(Self { trees, min_width })
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts one record. Bit-identical to the boxed forest's
    /// [`predict`](crate::Regressor::predict).
    ///
    /// # Panics
    ///
    /// Panics if `features` is narrower than any split feature needs.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert!(
            features.len() >= self.min_width,
            "feature vector has wrong dimension"
        );
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.walk(features);
        }
        sum / self.trees.len() as f64
    }

    /// Predicts every record of a batch, appending into `out`. No
    /// allocation happens per record (or per tree).
    ///
    /// Traversal is **tree-major**: each tree walks the whole batch while
    /// its node arrays sit hot in cache, instead of re-faulting all trees
    /// in for every record. Each record still accumulates tree predictions
    /// in tree order, so the sums carry the exact bits of the record-major
    /// (and boxed) walk.
    pub fn predict_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        let base = out.len();
        out.resize(base + rows.len(), 0.0);
        for tree in &self.trees {
            for (slot, row) in out[base..].iter_mut().zip(rows) {
                debug_assert!(row.len() >= self.min_width);
                *slot += tree.walk(row);
            }
        }
        let n = self.trees.len() as f64;
        for slot in &mut out[base..] {
            *slot /= n;
        }
    }

    /// Predicts every `width`-wide row of one contiguous feature buffer,
    /// appending into `out`. Tree-major like
    /// [`predict_into`](Self::predict_into), minus the per-row fat
    /// pointers.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than a split feature needs or `buf`
    /// is not a whole number of rows.
    pub fn predict_strided(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width >= self.min_width, "row width has wrong dimension");
        assert!(width > 0, "rows must hold at least one feature");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let base = out.len();
        out.resize(base + buf.len() / width, 0.0);
        let slots = &mut out[base..];
        for tree in &self.trees {
            for (slot, row) in slots.iter_mut().zip(buf.chunks_exact(width)) {
                *slot += tree.walk(row);
            }
        }
        let n = self.trees.len() as f64;
        for slot in &mut out[base..] {
            *slot /= n;
        }
    }

    /// Predicts every record of a batch.
    pub fn predict_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(rows, &mut out);
        out
    }

    /// The distinct full-row feature indices any compiled tree splits on,
    /// sorted ascending — the forest-wide analogue of
    /// [`FlatTree::used_features`].
    pub fn used_features(&self) -> Vec<u32> {
        let mut used: Vec<u32> = self
            .trees
            .iter()
            .flat_map(|t| t.feature.iter().copied())
            .filter(|&f| f != LEAF)
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Renumbers every split feature of every tree through `map` (indexed
    /// by the old feature id) and recomputes the minimum row width.
    ///
    /// Same bit-identity contract as [`FlatTree::remap_features`]: rows
    /// must carry the old column `f` at new column `map[f]`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is missing an entry for a used feature or maps one
    /// at or beyond `new_width`.
    pub fn remap_features(&mut self, map: &[u32], new_width: usize) {
        let mut min_width = 0usize;
        for tree in &mut self.trees {
            for f in &mut tree.feature {
                if *f != LEAF {
                    let to = map[*f as usize];
                    assert!(
                        (to as usize) < new_width,
                        "remapped feature exceeds row width"
                    );
                    *f = to;
                    min_width = min_width.max(to as usize + 1);
                }
            }
        }
        self.min_width = min_width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::Regressor;
    use proptest::prelude::*;

    fn step_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]).unwrap();
        for i in 0..20 {
            let y = if i < 10 { 5.0 } else { 50.0 };
            d.push(vec![i as f64, (i % 3) as f64], y).unwrap();
        }
        d
    }

    #[test]
    fn unfitted_models_do_not_compile() {
        assert!(FlatTree::from_tree(&DecisionTreeRegressor::new()).is_none());
        assert!(FlatForest::from_forest(&RandomForestRegressor::new()).is_none());
    }

    #[test]
    fn flat_tree_matches_boxed_on_step_function() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert_eq!(flat.n_features(), 2);
        assert_eq!(flat.n_nodes(), 2 * tree.n_leaves() - 1);
        for i in 0..20 {
            let row = [i as f64, (i % 3) as f64];
            assert_eq!(flat.predict(&row).to_bits(), tree.predict(&row).to_bits());
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(vec![1.0], 42.0).unwrap();
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert_eq!(flat.n_nodes(), 1);
        assert_eq!(flat.predict(&[0.0]), 42.0);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn flat_predict_checks_dimension() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        FlatTree::from_tree(&tree).unwrap().predict(&[1.0]);
    }

    #[test]
    fn batch_prediction_matches_per_record() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let batch = flat.predict_batch(&refs);
        assert_eq!(batch.len(), rows.len());
        for (row, y) in refs.iter().zip(&batch) {
            assert_eq!(y.to_bits(), flat.predict(row).to_bits());
        }
    }

    fn random_dataset(targets: &[f64], n_features: usize) -> Dataset {
        let names: Vec<String> = (0..n_features).map(|f| format!("f{f}")).collect();
        let mut d = Dataset::new(names).unwrap();
        let mut rng = bagpred_trace::SplitMix64::new(targets.len() as u64 ^ 0xf1a7);
        for &t in targets {
            let row: Vec<f64> = (0..n_features)
                .map(|_| rng.next_range(-10.0, 10.0))
                .collect();
            d.push(row, t).unwrap();
        }
        d
    }

    proptest! {
        #[test]
        fn flat_tree_is_bit_identical_on_random_data(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..48),
            queries in proptest::collection::vec(-15.0f64..15.0, 3..30),
        ) {
            let data = random_dataset(&targets, 3);
            let mut tree = DecisionTreeRegressor::new().with_max_depth(16);
            tree.fit(&data).unwrap();
            let flat = FlatTree::from_tree(&tree).unwrap();

            // Every training row and every random query routes to the same
            // leaf bit-for-bit.
            for s in data.samples() {
                prop_assert_eq!(
                    flat.predict(s.features()).to_bits(),
                    tree.predict(s.features()).to_bits()
                );
            }
            let rows: Vec<Vec<f64>> = queries
                .chunks_exact(3)
                .map(|c| c.to_vec())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let batch = flat.predict_batch(&refs);
            for (row, y) in refs.iter().zip(&batch) {
                prop_assert_eq!(y.to_bits(), tree.predict(row).to_bits());
            }
        }

        #[test]
        fn flat_forest_is_bit_identical_on_random_data(
            targets in proptest::collection::vec(-50.0f64..50.0, 6..40),
            seed in 0u64..1_000,
        ) {
            let data = random_dataset(&targets, 4);
            let mut forest = RandomForestRegressor::new()
                .with_n_trees(7)
                .with_seed(seed);
            forest.fit(&data).unwrap();
            let flat = FlatForest::from_forest(&forest).unwrap();
            prop_assert_eq!(flat.n_trees(), forest.n_fitted_trees());

            let rows: Vec<&[f64]> =
                data.samples().iter().map(|s| s.features()).collect();
            let batch = flat.predict_batch(&rows);
            for (row, y) in rows.iter().zip(&batch) {
                prop_assert_eq!(y.to_bits(), forest.predict(row).to_bits());
                prop_assert_eq!(y.to_bits(), flat.predict(row).to_bits());
            }
        }
    }
}
