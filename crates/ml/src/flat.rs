//! Flattened, array-based tree inference — the serving hot path.
//!
//! A fitted [`DecisionTreeRegressor`] stores `Box<TreeNode>` nodes scattered
//! across the heap; every prediction pointer-chases one record at a time.
//! [`FlatTree`] compiles the fitted structure into **two** contiguous
//! struct-of-arrays layouts:
//!
//! * **Pre-order** (the reference layout): a node's left child is always
//!   the next index and only the right-child index is stored. The scalar
//!   [`FlatTree::predict`] walk and the
//!   [`predict_strided_preorder`](FlatTree::predict_strided_preorder)
//!   baseline read this layout.
//! * **Level-order** (the lane-friendly layout): nodes laid out
//!   breadth-first with explicit `left`/`right` child arrays whose
//!   `idx = if x <= t { left[idx] } else { right[idx] }` step compiles to a
//!   conditional move, leaves made *self-looping* (`left == right == self`,
//!   threshold `+inf`) so a fixed `depth`-iteration loop needs no
//!   per-record termination branch, and — when the tree is *perfect*
//!   (every leaf at the same depth, every level full) — implicit heap
//!   indexing `idx = 2*idx + 1 + (x > t)` that skips the child arrays
//!   entirely. The batch entry points
//!   ([`predict_batch`](FlatTree::predict_batch) /
//!   [`predict_strided`](FlatTree::predict_strided)) drive this layout
//!   with [`LANES`] records in flight per loop iteration, so the walks of
//!   a chunk are independent dependency chains the compiler can overlap
//!   (and autovectorize where the target allows) instead of one serial
//!   pointer chase per record.
//!
//! Trees that fit 256 level-order slots with split features below 256 —
//! every model this crate trains, by an order of magnitude — additionally
//! compile to a bounds-check-free struct-of-arrays fast form (`u8` slot
//! cursors indexing fixed `[_; 256]` arrays, so the optimizer can prove
//! every index in bounds): the descent step is four scaled loads, one
//! compare and one conditional move, with the chunk's rows staged in a
//! lane-major scratch filled by straight `memcpy`.
//!
//! Both layouts preserve split features, thresholds and leaf values
//! bit-for-bit, so flat predictions are **bit-identical** to the boxed
//! tree's — the property tests at the bottom of this module prove it on
//! random datasets, for the pre-order walk, the level-order chunked walk,
//! and every batch-remainder size. An optional f32-quantized threshold
//! lane ([`predict_strided_quantized`](FlatTree::predict_strided_quantized))
//! trades a documented epsilon of routing exactness for halved threshold
//! bandwidth; see that method for the precise contract.
//!
//! # Example
//!
//! ```
//! use bagpred_ml::{Dataset, DecisionTreeRegressor, FlatTree, Regressor};
//!
//! let mut data = Dataset::new(vec!["x".into()])?;
//! for i in 0..10 {
//!     data.push(vec![i as f64], if i <= 5 { 1.0 } else { 9.0 })?;
//! }
//! let mut tree = DecisionTreeRegressor::new();
//! tree.fit(&data)?;
//! let flat = FlatTree::from_tree(&tree).expect("fitted");
//! assert_eq!(flat.predict(&[3.0]).to_bits(), tree.predict(&[3.0]).to_bits());
//! let batch = flat.predict_batch(&[&[3.0][..], &[8.0][..]]);
//! assert_eq!(batch, vec![1.0, 9.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::forest::RandomForestRegressor;
use crate::tree::{DecisionTreeRegressor, TreeNode};
use std::collections::VecDeque;

/// Sentinel in the pre-order `feature` array marking a leaf node.
const LEAF: u32 = u32::MAX;

/// Records kept in flight per loop iteration of the level-order batch
/// walk. Sixteen independent root-to-leaf chains hide the latency of the
/// data-dependent loads on current cores; the small-tree fast path walks
/// them as two groups of eight so each group's slot cursors stay in
/// registers.
pub const LANES: usize = 16;

/// One level-order node: the walk state a single descent step touches,
/// packed into 24 bytes so a step loads one cache line (at most two) and
/// pays one bounds check. The explicit child array makes the next-index
/// pick pure address arithmetic — `children[(x > t) as usize]` — with no
/// branch and no conditional move needed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
struct LevelNode {
    /// Split threshold; `+inf` for leaves (any finite value compares
    /// `<=`, keeping the self-loop on the left child; a NaN feature
    /// routes right — also the self-loop).
    threshold: f64,
    /// `[left, right]` child slots; both a leaf's own slot.
    children: [u32; 2],
    /// Split feature (leaves store `0` — never read meaningfully, because
    /// a leaf's `+inf` threshold routes every value back to the leaf).
    feature: u32,
}

/// Capacity of the small-tree fast path: every slot index fits `u8`, so
/// indexing the fixed `[_; 256]` arrays below can never go out of bounds
/// and the optimizer drops every bounds check from the descent loop.
const SMALL_SLOTS: usize = 256;

/// The chunk's rows copied lane-major for the small-tree walk:
/// `scratch[lane * SMALL_SLOTS + f]` holds feature `f` of the chunk's
/// `lane`-th record, so filling is a straight `memcpy` per row and the
/// walk's feature load is a single scaled index into a fixed array. Only
/// the first `width` features of each row segment are ever written or
/// read, so the touched footprint stays a few KB.
type LaneScratch = [f64; SMALL_SLOTS * LANES];

/// [`LaneScratch`] with features pre-rounded to f32 for the quantized
/// walk, so the descent compares natively in f32 instead of converting
/// every fetched feature on every tree step.
type LaneScratchQ = [f32; SMALL_SLOTS * LANES];

/// The bounds-check-free compiled form of a tree with at most
/// [`SMALL_SLOTS`] level-order slots and split features below 256 — every
/// real model here by a wide margin. Struct-of-arrays: each per-slot lane
/// is a fixed `[_; 256]` array indexed by `u8`-ranged slot values, so the
/// optimizer proves every index in bounds and the descent loop compiles
/// to four scaled loads, a compare and a conditional move per step — no
/// branches, no bounds checks, no panics. Unused trailing slots are
/// self-looping dummy leaves.
#[derive(Debug, Clone, PartialEq)]
struct SmallLevel {
    /// Split threshold per slot (`+inf` for leaves: self-loop forever).
    threshold: [f64; SMALL_SLOTS],
    /// The quantized walk's packed node: f32 threshold bits in the low
    /// word, then left child, right child and feature bytes — the whole
    /// per-step node state in one 8-byte load.
    qnode: [u64; SMALL_SLOTS],
    /// Split feature per slot (`0` for leaves — never read meaningfully).
    feature: [u8; SMALL_SLOTS],
    /// Child slot pair packed `left | right << 8` (a leaf packs its own
    /// slot twice), so the walk loads both candidates in one `u16` load
    /// and picks with an in-register conditional move.
    child_pair: [u16; SMALL_SLOTS],
    /// Leaf prediction per slot (0.0 and unused for splits).
    value: [f64; SMALL_SLOTS],
}

impl SmallLevel {
    /// Walks lanes `BASE..BASE + 8` of the scratch to their leaf slots.
    /// Eight slot cursors fit the register file, so the walk state never
    /// touches the stack; `BASE` is const so every scratch index is a
    /// compile-time lane offset plus a `u8`-ranged feature.
    #[inline]
    fn descend8<const BASE: usize>(&self, depth: u32, scratch: &LaneScratch) -> [usize; 8] {
        let mut slots = [0usize; 8];
        for _ in 0..depth {
            for (lane, slot) in slots.iter_mut().enumerate() {
                let s = *slot;
                let x = scratch[(BASE + lane) * SMALL_SLOTS + self.feature[s] as usize];
                let pair = self.child_pair[s] as usize;
                // `x <= t` (not `x > t`) keeps the boxed walk's NaN
                // routing: NaN fails the comparison and goes right.
                *slot = if x <= self.threshold[s] {
                    pair & 0xff
                } else {
                    pair >> 8
                };
            }
        }
        slots
    }

    /// [`descend8`](Self::descend8) against the f32-quantized lane.
    #[inline]
    fn descend8_quantized<const BASE: usize>(
        &self,
        depth: u32,
        scratch: &LaneScratchQ,
    ) -> [usize; 8] {
        let mut slots = [0usize; 8];
        for _ in 0..depth {
            for (lane, slot) in slots.iter_mut().enumerate() {
                let q = self.qnode[*slot];
                let x = scratch[(BASE + lane) * SMALL_SLOTS + ((q >> 48) & 0xff) as usize];
                let go = if x <= f32::from_bits(q as u32) {
                    q >> 32
                } else {
                    q >> 40
                };
                *slot = (go & 0xff) as usize;
            }
        }
        slots
    }

    /// Walks [`LANES`] records (copied into `scratch`) to their leaf slots.
    #[inline]
    fn descend(&self, depth: u32, scratch: &LaneScratch) -> [u8; LANES] {
        let lo = self.descend8::<0>(depth, scratch);
        let hi = self.descend8::<8>(depth, scratch);
        core::array::from_fn(|i| if i < 8 { lo[i] } else { hi[i - 8] } as u8)
    }

    /// [`descend`](Self::descend) against the f32-quantized thresholds.
    #[inline]
    fn descend_quantized(&self, depth: u32, scratch: &LaneScratchQ) -> [u8; LANES] {
        let lo = self.descend8_quantized::<0>(depth, scratch);
        let hi = self.descend8_quantized::<8>(depth, scratch);
        core::array::from_fn(|i| if i < 8 { lo[i] } else { hi[i - 8] } as u8)
    }
}

/// Copies one [`LANES`]-record chunk of a strided buffer into the
/// small-path scratch, one `memcpy` per row. Only the first
/// `min(width, 256)` features land in each lane segment; split features
/// always index below that, so the rest is never read either.
#[inline]
fn fill_scratch(scratch: &mut LaneScratch, buf: &[f64], base: usize, width: usize) {
    let w = width.min(SMALL_SLOTS);
    for lane in 0..LANES {
        let row = &buf[base + lane * width..base + lane * width + w];
        scratch[lane * SMALL_SLOTS..lane * SMALL_SLOTS + w].copy_from_slice(row);
    }
}

/// [`fill_scratch`] rounding into the quantized walk's f32 scratch.
#[inline]
fn fill_scratch_q(scratch: &mut LaneScratchQ, buf: &[f64], base: usize, width: usize) {
    let w = width.min(SMALL_SLOTS);
    for lane in 0..LANES {
        let row = &buf[base + lane * width..base + lane * width + w];
        for (slot, &x) in scratch[lane * SMALL_SLOTS..lane * SMALL_SLOTS + w]
            .iter_mut()
            .zip(row)
        {
            *slot = x as f32;
        }
    }
}

/// [`fill_scratch`] for a chunk of fat-pointer rows.
#[inline]
fn fill_scratch_rows(scratch: &mut LaneScratch, rows: &[&[f64]]) {
    for (lane, row) in rows.iter().enumerate() {
        let w = row.len().min(SMALL_SLOTS);
        scratch[lane * SMALL_SLOTS..lane * SMALL_SLOTS + w].copy_from_slice(&row[..w]);
    }
}

/// The level-order (breadth-first) compiled form of one tree: the
/// lane-friendly layout behind the chunked batch walk.
///
/// Packed [`LevelNode`] records hold the per-step walk state; the leaf
/// `value` lane and the f32-quantized `threshold_q` lane live in separate
/// contiguous arrays so the descent loop never streams bytes it does not
/// read (values are read once per record, the quantized lane only by the
/// quantized walk). Leaves are self-looping (`children == [self, self]`,
/// threshold `+inf`), so a fixed `depth`-iteration descent lands every
/// record on its leaf without a per-record termination branch; `perfect`
/// marks trees whose layout satisfies implicit heap indexing
/// (`children[i] == [2i+1, 2i+2]`, all leaves at depth `depth`), where
/// the descent replaces even the child load with index arithmetic.
#[derive(Debug, Clone, PartialEq, Default)]
struct LevelLayout {
    /// Level-order node records (see [`LevelNode`]).
    nodes: Vec<LevelNode>,
    /// The bounds-check-free fast form, present when the tree fits
    /// [`SMALL_SLOTS`] slots with all split features below 256.
    small: Option<Box<SmallLevel>>,
    /// The quantized threshold lane: `nodes[i].threshold as f32`, `+inf`
    /// for leaves. Separate so the exact walk never pays for it.
    threshold_q: Vec<f32>,
    /// Leaf prediction per slot (0.0 and unused for splits).
    value: Vec<f64>,
    /// Maximum root-to-leaf edge count: the fixed descent iteration count.
    depth: u32,
    /// Whether implicit heap indexing applies (see type docs).
    perfect: bool,
}

impl LevelLayout {
    /// Compiles the level-order form from the pre-order arrays.
    fn from_preorder(feature: &[u32], threshold: &[f64], value: &[f64], right: &[u32]) -> Self {
        let n = feature.len();
        debug_assert!(n < LEAF as usize, "node count asserted at flatten time");
        // BFS over the implicit pre-order links assigns level-order slots.
        let mut order = Vec::with_capacity(n); // pre-order index per slot
        let mut slot_depth = Vec::with_capacity(n); // level per slot
        let mut slot_of = vec![0u32; n]; // slot per pre-order index
        let mut queue = VecDeque::with_capacity(n);
        queue.push_back((0usize, 0u32));
        while let Some((pre, d)) = queue.pop_front() {
            slot_of[pre] = order.len() as u32;
            order.push(pre);
            slot_depth.push(d);
            if feature[pre] != LEAF {
                queue.push_back((pre + 1, d + 1));
                queue.push_back((right[pre] as usize, d + 1));
            }
        }
        // BFS visits levels in order, so the last slot carries the
        // maximum depth — and the deepest nodes are always leaves.
        let depth = slot_depth.last().copied().unwrap_or(0);
        let mut lvl = Self {
            nodes: Vec::with_capacity(n),
            small: None,
            threshold_q: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            depth,
            perfect: false,
        };
        for (slot, &pre) in order.iter().enumerate() {
            if feature[pre] == LEAF {
                lvl.nodes.push(LevelNode {
                    threshold: f64::INFINITY,
                    children: [slot as u32; 2],
                    feature: 0,
                });
                lvl.threshold_q.push(f32::INFINITY);
                lvl.value.push(value[pre]);
            } else {
                lvl.nodes.push(LevelNode {
                    threshold: threshold[pre],
                    children: [slot_of[pre + 1], slot_of[right[pre] as usize]],
                    feature: feature[pre],
                });
                lvl.threshold_q.push(threshold[pre] as f32);
                lvl.value.push(0.0);
            }
        }
        lvl.perfect = order.iter().enumerate().all(|(slot, &pre)| {
            if feature[pre] == LEAF {
                slot_depth[slot] == depth
            } else {
                lvl.nodes[slot].children == [2 * slot as u32 + 1, 2 * slot as u32 + 2]
            }
        });
        if n <= SMALL_SLOTS && lvl.nodes.iter().all(|nd| nd.feature < SMALL_SLOTS as u32) {
            let mut small = Box::new(SmallLevel {
                threshold: [f64::INFINITY; SMALL_SLOTS],
                qnode: core::array::from_fn(|slot| {
                    f32::INFINITY.to_bits() as u64 | (slot as u64 * 0x101) << 32
                }),
                feature: [0; SMALL_SLOTS],
                child_pair: core::array::from_fn(|slot| (slot | slot << 8) as u16),
                value: [0.0; SMALL_SLOTS],
            });
            for (slot, nd) in lvl.nodes.iter().enumerate() {
                small.threshold[slot] = nd.threshold;
                small.qnode[slot] = lvl.threshold_q[slot].to_bits() as u64
                    | (nd.children[0] as u64) << 32
                    | (nd.children[1] as u64) << 40
                    | (nd.feature as u64) << 48;
                small.feature[slot] = nd.feature as u8;
                small.child_pair[slot] = (nd.children[0] | nd.children[1] << 8) as u16;
                small.value[slot] = lvl.value[slot];
            }
            lvl.small = Some(small);
        }
        lvl
    }

    /// Walks `K` records to their leaf slots. `fetch(lane, f)` reads
    /// feature `f` of the lane's record. The `K` chains are independent,
    /// so the compiler overlaps their data-dependent loads; each step is
    /// a branchless select (or implicit heap arithmetic for perfect
    /// trees), and leaves self-loop, so the loop runs exactly `depth`
    /// iterations for every record.
    #[inline]
    fn descend<const K: usize>(&self, fetch: impl Fn(usize, usize) -> f64) -> [u32; K] {
        let mut idx = [0u32; K];
        let nodes = self.nodes.as_slice();
        if self.perfect {
            for _ in 0..self.depth {
                for (lane, slot) in idx.iter_mut().enumerate() {
                    let node = &nodes[*slot as usize];
                    let x = fetch(lane, node.feature as usize);
                    // `x <= t` (not `x > t`) keeps the boxed walk's NaN
                    // routing: NaN fails the comparison and goes right.
                    *slot = 2 * *slot + 2 - u32::from(x <= node.threshold);
                }
            }
        } else {
            for _ in 0..self.depth {
                for (lane, slot) in idx.iter_mut().enumerate() {
                    let node = &nodes[*slot as usize];
                    let x = fetch(lane, node.feature as usize);
                    let go_left = usize::from(x <= node.threshold);
                    *slot = node.children[1 - go_left];
                }
            }
        }
        idx
    }

    /// [`descend`](Self::descend) against the f32-quantized threshold
    /// lane: features are rounded to f32 and compared against
    /// `threshold_q`. See
    /// [`FlatTree::predict_strided_quantized`] for the exactness contract.
    #[inline]
    fn descend_quantized<const K: usize>(&self, fetch: impl Fn(usize, usize) -> f64) -> [u32; K] {
        let mut idx = [0u32; K];
        let nodes = self.nodes.as_slice();
        let thresholds = self.threshold_q.as_slice();
        for _ in 0..self.depth {
            for (lane, slot) in idx.iter_mut().enumerate() {
                let i = *slot as usize;
                let node = &nodes[i];
                let x = fetch(lane, node.feature as usize) as f32;
                let go_left = usize::from(x <= thresholds[i]);
                *slot = node.children[1 - go_left];
            }
        }
        idx
    }
}

/// A fitted regression tree compiled to contiguous, index-linked,
/// struct-of-arrays representations (see the module docs for the two
/// layouts and which entry point reads which).
///
/// Pre-order nodes: node `i`'s left child is `i + 1`, and `right[i]` holds
/// the right child's index. A leaf stores [`LEAF`] in its feature slot and
/// its prediction in `value[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatTree {
    n_features: usize,
    /// Split feature per node; `u32::MAX` marks a leaf.
    feature: Vec<u32>,
    /// Split threshold per node (0.0 and unused for leaves).
    threshold: Vec<f64>,
    /// Leaf prediction per node (0.0 and unused for splits).
    value: Vec<f64>,
    /// Right-child index per node (the left child is the next node).
    right: Vec<u32>,
    /// The level-order lane-friendly layout, rebuilt whenever the
    /// pre-order arrays change (compile, remap).
    level: LevelLayout,
}

impl FlatTree {
    /// Compiles a fitted boxed tree, or `None` when the tree is unfitted.
    pub fn from_tree(tree: &DecisionTreeRegressor) -> Option<Self> {
        let root = tree.root()?;
        let mut flat = Self {
            n_features: tree.n_features(),
            feature: Vec::new(),
            threshold: Vec::new(),
            value: Vec::new(),
            right: Vec::new(),
            level: LevelLayout::default(),
        };
        flat.flatten(root);
        flat.rebuild_level();
        Some(flat)
    }

    fn flatten(&mut self, node: &TreeNode) -> u32 {
        // Every node index — pre-order `right[i]`, level-order
        // `left`/`right` slots — is stored as `u32`, with `u32::MAX`
        // reserved as the leaf sentinel. Assert instead of silently
        // truncating on a pathological tree.
        assert!(
            self.feature.len() < LEAF as usize,
            "tree node count exceeds the u32 flat index space"
        );
        let idx = self.feature.len() as u32;
        match node {
            TreeNode::Leaf { prediction, .. } => {
                self.feature.push(LEAF);
                self.threshold.push(0.0);
                self.value.push(*prediction);
                self.right.push(0);
            }
            TreeNode::Split {
                feature,
                threshold,
                left,
                right,
                ..
            } => {
                assert!(
                    *feature < LEAF as usize,
                    "feature index exceeds the flat encoding"
                );
                self.feature.push(*feature as u32);
                self.threshold.push(*threshold);
                self.value.push(0.0);
                self.right.push(0); // patched once the left subtree is laid out
                self.flatten(left);
                let r = self.flatten(right);
                self.right[idx as usize] = r;
            }
        }
        idx
    }

    /// Recompiles the level-order layout from the pre-order arrays. Must
    /// run after any mutation of the pre-order `feature` array (feature
    /// remapping), so the two layouts can never disagree.
    fn rebuild_level(&mut self) {
        self.level =
            LevelLayout::from_preorder(&self.feature, &self.threshold, &self.value, &self.right);
    }

    /// Number of nodes in the compiled tree.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Dimensionality of the feature vectors the source tree was fitted on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Predicts one record. Bit-identical to the source tree's
    /// [`predict`](crate::Regressor::predict).
    ///
    /// # Panics
    ///
    /// Panics if `features` has the wrong dimension.
    #[inline]
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector has wrong dimension"
        );
        self.walk(features)
    }

    /// The scalar pre-order traversal, without the dimension assert —
    /// shared with [`FlatForest`], whose remapped trees read full-width
    /// rows. This early-exiting walk stays the single-record latency path
    /// and the reference the level-order walk is proven against.
    #[inline]
    fn walk(&self, features: &[f64]) -> f64 {
        let mut i = 0usize;
        loop {
            let f = self.feature[i];
            if f == LEAF {
                return self.value[i];
            }
            i = if features[f as usize] <= self.threshold[i] {
                i + 1
            } else {
                self.right[i] as usize
            };
        }
    }

    /// Predicts every record of a batch, appending into `out` (which is
    /// not cleared). No allocation happens per record. Walks the
    /// level-order layout [`LANES`] records at a time; bit-identical to
    /// the per-record [`predict`](Self::predict).
    ///
    /// # Panics
    ///
    /// Panics if any row has the wrong dimension.
    pub fn predict_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        for row in rows {
            assert_eq!(
                row.len(),
                self.n_features,
                "feature vector has wrong dimension"
            );
        }
        out.reserve(rows.len());
        let mut chunks = rows.chunks_exact(LANES);
        if let Some(small) = self.level.small.as_deref() {
            let mut scratch = Box::new([0.0f64; SMALL_SLOTS * LANES]);
            for chunk in &mut chunks {
                fill_scratch_rows(&mut scratch, chunk);
                for leaf in small.descend(self.level.depth, &scratch) {
                    out.push(small.value[leaf as usize]);
                }
            }
        } else {
            for chunk in &mut chunks {
                let leaves = self.level.descend::<LANES>(|lane, f| chunk[lane][f]);
                for leaf in leaves {
                    out.push(self.level.value[leaf as usize]);
                }
            }
        }
        for row in chunks.remainder() {
            let [leaf] = self.level.descend::<1>(|_, f| row[f]);
            out.push(self.level.value[leaf as usize]);
        }
    }

    /// Predicts every `width`-wide row of one contiguous feature buffer,
    /// appending into `out`. Skipping the per-row `&[f64]` fat pointers
    /// makes this the cheapest batch entry point: the chunked level-order
    /// walk keeps [`LANES`] records in flight per loop iteration.
    /// Bit-identical to the per-record [`predict`](Self::predict).
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, is not the tree's feature dimension, or
    /// `buf` is not a whole number of rows.
    pub fn predict_strided(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert_eq!(width, self.n_features, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let rows = buf.len() / width;
        out.reserve(rows);
        let mut r = 0usize;
        if let Some(small) = self.level.small.as_deref() {
            let mut scratch = Box::new([0.0f64; SMALL_SLOTS * LANES]);
            while r + LANES <= rows {
                fill_scratch(&mut scratch, buf, r * width, width);
                for leaf in small.descend(self.level.depth, &scratch) {
                    out.push(small.value[leaf as usize]);
                }
                r += LANES;
            }
        }
        while r + LANES <= rows {
            let base = r * width;
            let leaves = self
                .level
                .descend::<LANES>(|lane, f| buf[base + lane * width + f]);
            for leaf in leaves {
                out.push(self.level.value[leaf as usize]);
            }
            r += LANES;
        }
        while r < rows {
            let base = r * width;
            let [leaf] = self.level.descend::<1>(|_, f| buf[base + f]);
            out.push(self.level.value[leaf as usize]);
            r += 1;
        }
    }

    /// The pre-order scalar batch walk over a strided buffer: one branchy
    /// early-exiting traversal per record. Kept public as the committed
    /// baseline the `flat_simd_*` bench keys (and `scripts/verify.sh`'s
    /// ≥2× gate) measure [`predict_strided`](Self::predict_strided)
    /// against, and as a bit-identity anchor for the property tests.
    ///
    /// # Panics
    ///
    /// Same contract as [`predict_strided`](Self::predict_strided).
    pub fn predict_strided_preorder(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert_eq!(width, self.n_features, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        out.reserve(buf.len() / width);
        for row in buf.chunks_exact(width) {
            out.push(self.walk(row));
        }
    }

    /// [`predict_strided`](Self::predict_strided) against the f32-quantized
    /// threshold lane: every comparison is `(x as f32) <= (t as f32)`
    /// instead of `x <= t`, halving threshold memory traffic.
    ///
    /// # Exactness contract (the documented epsilon)
    ///
    /// f64→f32 rounding is monotone, so quantized routing can disagree
    /// with the exact walk **only** when a feature value `x` and a split
    /// threshold `t` round to the *same* f32 — which requires
    /// `|x − t| <= max(|x|, |t|) * f32::EPSILON + f32::MIN_POSITIVE`.
    /// Records whose feature values all keep more than that margin from
    /// every threshold predict **bit-identically** to the exact walk; a
    /// record inside the margin may route to an adjacent leaf, so its
    /// prediction is still one of the tree's leaf values. The property
    /// tests prove both halves of this contract on random trees.
    ///
    /// # Panics
    ///
    /// Same contract as [`predict_strided`](Self::predict_strided).
    pub fn predict_strided_quantized(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert_eq!(width, self.n_features, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let rows = buf.len() / width;
        out.reserve(rows);
        let mut r = 0usize;
        if let Some(small) = self.level.small.as_deref() {
            let mut scratch = Box::new([0.0f32; SMALL_SLOTS * LANES]);
            while r + LANES <= rows {
                fill_scratch_q(&mut scratch, buf, r * width, width);
                for leaf in small.descend_quantized(self.level.depth, &scratch) {
                    out.push(small.value[leaf as usize]);
                }
                r += LANES;
            }
        }
        while r + LANES <= rows {
            let base = r * width;
            let leaves = self
                .level
                .descend_quantized::<LANES>(|lane, f| buf[base + lane * width + f]);
            for leaf in leaves {
                out.push(self.level.value[leaf as usize]);
            }
            r += LANES;
        }
        while r < rows {
            let base = r * width;
            let [leaf] = self.level.descend_quantized::<1>(|_, f| buf[base + f]);
            out.push(self.level.value[leaf as usize]);
            r += 1;
        }
    }

    /// Predicts every record of a batch.
    pub fn predict_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(rows, &mut out);
        out
    }

    /// The distinct feature indices the compiled tree splits on, sorted
    /// ascending. A caller can materialize only these row columns and
    /// renumber via [`remap_features`](Self::remap_features).
    pub fn used_features(&self) -> Vec<u32> {
        let mut used: Vec<u32> = self
            .feature
            .iter()
            .copied()
            .filter(|&f| f != LEAF)
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Renumbers every split feature through `map` (indexed by the old
    /// feature id) and declares `new_width` as the expected row width.
    /// The level-order layout is recompiled, so both walks see the
    /// renumbered features.
    ///
    /// The walk compares the same values against the same thresholds, so
    /// predictions stay bit-identical as long as the caller's rows really
    /// do carry the old column `f` at new column `map[f]`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is missing an entry for a used feature or maps one
    /// at or beyond `new_width`.
    pub fn remap_features(&mut self, map: &[u32], new_width: usize) {
        for f in &mut self.feature {
            if *f != LEAF {
                assert!(
                    (*f as usize) < map.len(),
                    "feature map is missing an entry for split feature {f}"
                );
                let to = map[*f as usize];
                assert!(
                    (to as usize) < new_width,
                    "remapped feature exceeds row width"
                );
                *f = to;
            }
        }
        self.n_features = new_width;
        self.rebuild_level();
    }
}

/// A fitted random forest compiled to flat trees whose split-feature
/// indices are **remapped into full-row space** at compile time.
///
/// Each boxed forest tree is fitted on a projected feature subset, so the
/// boxed walk must first copy the subset out of the row — one `Vec`
/// allocation per tree per record. Remapping node `feature` indices
/// through the subset (`subset[f]`) lets the flat walk read the full row
/// directly: no projection, no scratch, no allocation anywhere on the
/// batch path. The same values meet the same thresholds in the same
/// order, so predictions are bit-identical to the boxed forest's (same
/// tree order, same summation order). Batch entry points walk each
/// tree's level-order layout [`LANES`] records at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatForest {
    trees: Vec<FlatTree>,
    /// Minimum row width a prediction needs: the highest remapped feature
    /// index + 1 (the boxed forest indexes rows identically).
    min_width: usize,
}

impl FlatForest {
    /// Compiles a fitted boxed forest, or `None` when unfitted.
    pub fn from_forest(forest: &RandomForestRegressor) -> Option<Self> {
        let fitted = forest.fitted_trees();
        if fitted.is_empty() {
            return None;
        }
        let mut min_width = 0usize;
        let trees: Vec<FlatTree> = fitted
            .iter()
            .map(|(tree, subset)| {
                let mut flat = FlatTree::from_tree(tree).expect("fitted forests hold fitted trees");
                for f in &mut flat.feature {
                    if *f != LEAF {
                        let remapped = subset[*f as usize];
                        assert!(remapped < LEAF as usize, "feature index exceeds encoding");
                        *f = remapped as u32;
                        min_width = min_width.max(remapped + 1);
                    }
                }
                flat.n_features = 0; // subset-space width is meaningless now
                flat.rebuild_level(); // the level layout must see full-row features
                flat
            })
            .collect();
        Some(Self { trees, min_width })
    }

    /// Number of compiled trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predicts one record. Bit-identical to the boxed forest's
    /// [`predict`](crate::Regressor::predict).
    ///
    /// # Panics
    ///
    /// Panics if `features` is narrower than any split feature needs.
    pub fn predict(&self, features: &[f64]) -> f64 {
        assert!(
            features.len() >= self.min_width,
            "feature vector has wrong dimension"
        );
        let mut sum = 0.0;
        for tree in &self.trees {
            sum += tree.walk(features);
        }
        sum / self.trees.len() as f64
    }

    /// Predicts every record of a batch, appending into `out`. No
    /// allocation happens per record (or per tree).
    ///
    /// Traversal is **chunk-major**: [`LANES`] records descend every tree
    /// while their rows sit hot in cache, each chunk accumulating its
    /// per-record sums in register-resident accumulators. Each record
    /// still adds tree predictions in tree order, so the sums carry the
    /// exact bits of the record-major (and boxed) walk.
    pub fn predict_into(&self, rows: &[&[f64]], out: &mut Vec<f64>) {
        out.reserve(rows.len());
        let n = self.trees.len() as f64;
        let mut chunks = rows.chunks_exact(LANES);
        let mut scratch = Box::new([0.0f64; SMALL_SLOTS * LANES]);
        for chunk in &mut chunks {
            debug_assert!(chunk.iter().all(|row| row.len() >= self.min_width));
            fill_scratch_rows(&mut scratch, chunk);
            let mut acc = [0.0f64; LANES];
            for tree in &self.trees {
                if let Some(small) = tree.level.small.as_deref() {
                    for (slot, leaf) in acc
                        .iter_mut()
                        .zip(small.descend(tree.level.depth, &scratch))
                    {
                        *slot += small.value[leaf as usize];
                    }
                } else {
                    let leaves = tree.level.descend::<LANES>(|lane, f| chunk[lane][f]);
                    for (slot, leaf) in acc.iter_mut().zip(leaves) {
                        *slot += tree.level.value[leaf as usize];
                    }
                }
            }
            for slot in acc {
                out.push(slot / n);
            }
        }
        for row in chunks.remainder() {
            debug_assert!(row.len() >= self.min_width);
            let mut sum = 0.0;
            for tree in &self.trees {
                let [leaf] = tree.level.descend::<1>(|_, f| row[f]);
                sum += tree.level.value[leaf as usize];
            }
            out.push(sum / n);
        }
    }

    /// Predicts every `width`-wide row of one contiguous feature buffer,
    /// appending into `out`. Chunk-major like
    /// [`predict_into`](Self::predict_into), minus the per-row fat
    /// pointers — the forest's cheapest batch entry point.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero, is narrower than a split feature needs,
    /// or `buf` is not a whole number of rows.
    pub fn predict_strided(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert!(width >= self.min_width, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let rows = buf.len() / width;
        out.reserve(rows);
        let n = self.trees.len() as f64;
        // One transposed scratch per call, filled once per chunk and read
        // by every tree — the small-path walk then runs entirely on
        // fixed-size arrays with no bounds checks.
        let mut scratch = Box::new([0.0f64; SMALL_SLOTS * LANES]);
        let mut r = 0usize;
        while r + LANES <= rows {
            let base = r * width;
            fill_scratch(&mut scratch, buf, base, width);
            let mut acc = [0.0f64; LANES];
            for tree in &self.trees {
                if let Some(small) = tree.level.small.as_deref() {
                    for (slot, leaf) in acc
                        .iter_mut()
                        .zip(small.descend(tree.level.depth, &scratch))
                    {
                        *slot += small.value[leaf as usize];
                    }
                } else {
                    let leaves = tree
                        .level
                        .descend::<LANES>(|lane, f| buf[base + lane * width + f]);
                    for (slot, leaf) in acc.iter_mut().zip(leaves) {
                        *slot += tree.level.value[leaf as usize];
                    }
                }
            }
            for slot in acc {
                out.push(slot / n);
            }
            r += LANES;
        }
        while r < rows {
            let base = r * width;
            let mut sum = 0.0;
            for tree in &self.trees {
                let [leaf] = tree.level.descend::<1>(|_, f| buf[base + f]);
                sum += tree.level.value[leaf as usize];
            }
            out.push(sum / n);
            r += 1;
        }
    }

    /// The pre-order scalar batch walk: tree-major, one branchy
    /// early-exiting traversal per record per tree. Kept public as the
    /// committed baseline the `flat_simd_*` bench keys (and
    /// `scripts/verify.sh`'s ≥2× gate) measure
    /// [`predict_strided`](Self::predict_strided) against, and as a
    /// bit-identity anchor for the property tests.
    ///
    /// # Panics
    ///
    /// Same contract as [`predict_strided`](Self::predict_strided).
    pub fn predict_strided_preorder(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert!(width >= self.min_width, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let base = out.len();
        out.resize(base + buf.len() / width, 0.0);
        let slots = &mut out[base..];
        for tree in &self.trees {
            for (slot, row) in slots.iter_mut().zip(buf.chunks_exact(width)) {
                *slot += tree.walk(row);
            }
        }
        let n = self.trees.len() as f64;
        for slot in &mut out[base..] {
            *slot /= n;
        }
    }

    /// [`predict_strided`](Self::predict_strided) against every tree's
    /// f32-quantized threshold lane. Same exactness contract as
    /// [`FlatTree::predict_strided_quantized`], applied per tree: records
    /// whose feature values keep the documented margin from every
    /// threshold of every tree predict bit-identically; others may route
    /// to adjacent leaves in some trees, so the result is still a mean of
    /// per-tree leaf values.
    ///
    /// # Panics
    ///
    /// Same contract as [`predict_strided`](Self::predict_strided).
    pub fn predict_strided_quantized(&self, buf: &[f64], width: usize, out: &mut Vec<f64>) {
        assert!(width > 0, "rows must hold at least one feature");
        assert!(width >= self.min_width, "row width has wrong dimension");
        assert_eq!(buf.len() % width, 0, "buffer is not whole rows");
        let rows = buf.len() / width;
        out.reserve(rows);
        let n = self.trees.len() as f64;
        let mut scratch = Box::new([0.0f32; SMALL_SLOTS * LANES]);
        let mut r = 0usize;
        while r + LANES <= rows {
            let base = r * width;
            fill_scratch_q(&mut scratch, buf, base, width);
            let mut acc = [0.0f64; LANES];
            for tree in &self.trees {
                if let Some(small) = tree.level.small.as_deref() {
                    for (slot, leaf) in acc
                        .iter_mut()
                        .zip(small.descend_quantized(tree.level.depth, &scratch))
                    {
                        *slot += small.value[leaf as usize];
                    }
                } else {
                    let leaves = tree
                        .level
                        .descend_quantized::<LANES>(|lane, f| buf[base + lane * width + f]);
                    for (slot, leaf) in acc.iter_mut().zip(leaves) {
                        *slot += tree.level.value[leaf as usize];
                    }
                }
            }
            for slot in acc {
                out.push(slot / n);
            }
            r += LANES;
        }
        while r < rows {
            let base = r * width;
            let mut sum = 0.0;
            for tree in &self.trees {
                let [leaf] = tree.level.descend_quantized::<1>(|_, f| buf[base + f]);
                sum += tree.level.value[leaf as usize];
            }
            out.push(sum / n);
            r += 1;
        }
    }

    /// Predicts every record of a batch.
    pub fn predict_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        let mut out = Vec::new();
        self.predict_into(rows, &mut out);
        out
    }

    /// The distinct full-row feature indices any compiled tree splits on,
    /// sorted ascending — the forest-wide analogue of
    /// [`FlatTree::used_features`].
    pub fn used_features(&self) -> Vec<u32> {
        let mut used: Vec<u32> = self
            .trees
            .iter()
            .flat_map(|t| t.feature.iter().copied())
            .filter(|&f| f != LEAF)
            .collect();
        used.sort_unstable();
        used.dedup();
        used
    }

    /// Renumbers every split feature of every tree through `map` (indexed
    /// by the old feature id) and recomputes the minimum row width. Every
    /// tree's level-order layout is recompiled.
    ///
    /// Same bit-identity contract as [`FlatTree::remap_features`]: rows
    /// must carry the old column `f` at new column `map[f]`.
    ///
    /// # Panics
    ///
    /// Panics if `map` is missing an entry for a used feature or maps one
    /// at or beyond `new_width`.
    pub fn remap_features(&mut self, map: &[u32], new_width: usize) {
        let mut min_width = 0usize;
        for tree in &mut self.trees {
            for f in &mut tree.feature {
                if *f != LEAF {
                    assert!(
                        (*f as usize) < map.len(),
                        "feature map is missing an entry for split feature {f}"
                    );
                    let to = map[*f as usize];
                    assert!(
                        (to as usize) < new_width,
                        "remapped feature exceeds row width"
                    );
                    *f = to;
                    min_width = min_width.max(to as usize + 1);
                }
            }
            tree.rebuild_level();
        }
        self.min_width = min_width;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::Regressor;
    use proptest::prelude::*;

    fn step_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]).unwrap();
        for i in 0..20 {
            let y = if i < 10 { 5.0 } else { 50.0 };
            d.push(vec![i as f64, (i % 3) as f64], y).unwrap();
        }
        d
    }

    fn step_tree() -> FlatTree {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        FlatTree::from_tree(&tree).unwrap()
    }

    #[test]
    fn unfitted_models_do_not_compile() {
        assert!(FlatTree::from_tree(&DecisionTreeRegressor::new()).is_none());
        assert!(FlatForest::from_forest(&RandomForestRegressor::new()).is_none());
    }

    #[test]
    fn flat_tree_matches_boxed_on_step_function() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert_eq!(flat.n_features(), 2);
        assert_eq!(flat.n_nodes(), 2 * tree.n_leaves() - 1);
        for i in 0..20 {
            let row = [i as f64, (i % 3) as f64];
            assert_eq!(flat.predict(&row).to_bits(), tree.predict(&row).to_bits());
        }
    }

    #[test]
    fn single_leaf_tree_compiles() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(vec![1.0], 42.0).unwrap();
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert_eq!(flat.n_nodes(), 1);
        assert_eq!(flat.level.depth, 0);
        assert!(flat.level.perfect);
        assert_eq!(flat.predict(&[0.0]), 42.0);
        let mut out = Vec::new();
        flat.predict_strided(&[0.0, 7.0], 1, &mut out);
        assert_eq!(out, vec![42.0, 42.0]);
    }

    #[test]
    fn perfect_trees_take_the_implicit_heap_path() {
        // Four distinct targets over two binary features force the greedy
        // CART into a depth-2 perfect tree: root on f0 (best MSE drop),
        // both children on f1.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push(vec![0.0, 0.0], 1.0).unwrap();
        d.push(vec![0.0, 1.0], 2.0).unwrap();
        d.push(vec![1.0, 0.0], 30.0).unwrap();
        d.push(vec![1.0, 1.0], 40.0).unwrap();
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert_eq!(flat.n_nodes(), 7);
        assert_eq!(flat.level.depth, 2);
        assert!(flat.level.perfect, "complete tree must use heap indexing");
        // The chunked level walk (implicit indexing) agrees with the
        // boxed and pre-order walks bit-for-bit on and off the grid.
        let mut buf = Vec::new();
        for a in [-1.0f64, 0.0, 0.4, 0.6, 1.0, 2.0] {
            for b in [-1.0f64, 0.0, 0.5, 1.0, 2.0] {
                buf.extend_from_slice(&[a, b]);
            }
        }
        let mut level = Vec::new();
        let mut preorder = Vec::new();
        flat.predict_strided(&buf, 2, &mut level);
        flat.predict_strided_preorder(&buf, 2, &mut preorder);
        for ((row, l), p) in buf.chunks_exact(2).zip(&level).zip(&preorder) {
            assert_eq!(l.to_bits(), p.to_bits());
            assert_eq!(l.to_bits(), tree.predict(row).to_bits());
        }
    }

    #[test]
    fn lopsided_trees_fall_back_to_child_arrays() {
        // Twenty distinct targets force twenty leaves — never a perfect
        // tree — so the walk must route through the select path.
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]).unwrap();
        for i in 0..20 {
            d.push(vec![i as f64, (i % 3) as f64], (i * i) as f64)
                .unwrap();
        }
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        let flat = FlatTree::from_tree(&tree).unwrap();
        assert!(!flat.level.perfect);
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        for (row, y) in refs.iter().zip(flat.predict_batch(&refs)) {
            assert_eq!(y.to_bits(), flat.predict(row).to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn flat_predict_checks_dimension() {
        step_tree().predict(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "rows must hold at least one feature")]
    fn zero_width_strided_rows_are_rejected() {
        // `width == 0` used to slip past a `width.max(1)` modulo guard and
        // panic inside `chunks_exact(0)`; now it is refused explicitly.
        let mut out = Vec::new();
        step_tree().predict_strided(&[], 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "rows must hold at least one feature")]
    fn zero_width_preorder_strided_rows_are_rejected() {
        let mut out = Vec::new();
        step_tree().predict_strided_preorder(&[], 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "rows must hold at least one feature")]
    fn zero_width_forest_strided_rows_are_rejected() {
        // A forest over a constant target compiles to all-leaf trees with
        // `min_width == 0` — the one shape where `width >= min_width`
        // cannot catch a zero width on its own.
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..8 {
            d.push(vec![i as f64], 3.0).unwrap();
        }
        let mut forest = RandomForestRegressor::new().with_n_trees(3);
        forest.fit(&d).unwrap();
        let flat = FlatForest::from_forest(&forest).unwrap();
        let mut out = Vec::new();
        flat.predict_strided(&[], 0, &mut out);
    }

    #[test]
    #[should_panic(expected = "missing an entry for split feature")]
    fn remap_rejects_a_short_map() {
        // The documented panic used to surface as a raw slice-index
        // message; now it names the unmapped split feature.
        step_tree().remap_features(&[], 4);
    }

    #[test]
    #[should_panic(expected = "remapped feature exceeds row width")]
    fn remap_rejects_targets_beyond_the_width() {
        step_tree().remap_features(&[9, 9], 4);
    }

    #[test]
    #[should_panic(expected = "missing an entry for split feature")]
    fn forest_remap_rejects_a_short_map() {
        let mut forest = RandomForestRegressor::new().with_n_trees(3);
        forest.fit(&step_dataset()).unwrap();
        FlatForest::from_forest(&forest)
            .unwrap()
            .remap_features(&[], 4);
    }

    #[test]
    #[should_panic(expected = "remapped feature exceeds row width")]
    fn forest_remap_rejects_targets_beyond_the_width() {
        let mut forest = RandomForestRegressor::new().with_n_trees(3);
        forest.fit(&step_dataset()).unwrap();
        FlatForest::from_forest(&forest)
            .unwrap()
            .remap_features(&[9, 9], 4);
    }

    #[test]
    fn remap_keeps_both_layouts_in_agreement() {
        let mut flat = step_tree();
        // Swap the two columns and widen the rows; the level layout must
        // be recompiled along with the pre-order arrays.
        flat.remap_features(&[2, 0], 3);
        let reference = step_tree();
        for i in 0..20 {
            let old = [i as f64, (i % 3) as f64];
            let new = [old[1], 0.0, old[0]];
            assert_eq!(
                flat.predict(&new).to_bits(),
                reference.predict(&old).to_bits()
            );
            let mut out = Vec::new();
            flat.predict_strided(&new, 3, &mut out);
            assert_eq!(out[0].to_bits(), reference.predict(&old).to_bits());
        }
    }

    #[test]
    fn batch_prediction_matches_per_record() {
        let flat = step_tree();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let batch = flat.predict_batch(&refs);
        assert_eq!(batch.len(), rows.len());
        for (row, y) in refs.iter().zip(&batch) {
            assert_eq!(y.to_bits(), flat.predict(row).to_bits());
        }
    }

    fn random_dataset(targets: &[f64], n_features: usize) -> Dataset {
        let names: Vec<String> = (0..n_features).map(|f| format!("f{f}")).collect();
        let mut d = Dataset::new(names).unwrap();
        let mut rng = bagpred_trace::SplitMix64::new(targets.len() as u64 ^ 0xf1a7);
        for &t in targets {
            let row: Vec<f64> = (0..n_features)
                .map(|_| rng.next_range(-10.0, 10.0))
                .collect();
            d.push(row, t).unwrap();
        }
        d
    }

    /// The documented quantization margin: feature values farther than
    /// this from every threshold route identically on the f32 lane.
    fn quantization_margin(x: f64, t: f64) -> f64 {
        x.abs().max(t.abs()) * f32::EPSILON as f64 + f32::MIN_POSITIVE as f64
    }

    proptest! {
        #[test]
        fn flat_tree_is_bit_identical_on_random_data(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..48),
            queries in proptest::collection::vec(-15.0f64..15.0, 3..30),
        ) {
            let data = random_dataset(&targets, 3);
            let mut tree = DecisionTreeRegressor::new().with_max_depth(16);
            tree.fit(&data).unwrap();
            let flat = FlatTree::from_tree(&tree).unwrap();

            // Every training row and every random query routes to the same
            // leaf bit-for-bit.
            for s in data.samples() {
                prop_assert_eq!(
                    flat.predict(s.features()).to_bits(),
                    tree.predict(s.features()).to_bits()
                );
            }
            let rows: Vec<Vec<f64>> = queries
                .chunks_exact(3)
                .map(|c| c.to_vec())
                .collect();
            let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
            let batch = flat.predict_batch(&refs);
            for (row, y) in refs.iter().zip(&batch) {
                prop_assert_eq!(y.to_bits(), tree.predict(row).to_bits());
            }
        }

        #[test]
        fn flat_forest_is_bit_identical_on_random_data(
            targets in proptest::collection::vec(-50.0f64..50.0, 6..40),
            seed in 0u64..1_000,
        ) {
            let data = random_dataset(&targets, 4);
            let mut forest = RandomForestRegressor::new()
                .with_n_trees(7)
                .with_seed(seed);
            forest.fit(&data).unwrap();
            let flat = FlatForest::from_forest(&forest).unwrap();
            prop_assert_eq!(flat.n_trees(), forest.n_fitted_trees());

            let rows: Vec<&[f64]> =
                data.samples().iter().map(|s| s.features()).collect();
            let batch = flat.predict_batch(&rows);
            for (row, y) in rows.iter().zip(&batch) {
                prop_assert_eq!(y.to_bits(), forest.predict(row).to_bits());
                prop_assert_eq!(y.to_bits(), flat.predict(row).to_bits());
            }
        }

        /// The tentpole equivalence: the chunked level-order walk, the
        /// scalar pre-order walk, and the boxed tree agree bit-for-bit on
        /// random trees and random strided batches.
        #[test]
        fn level_order_walk_is_bit_identical_to_preorder_and_boxed(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..48),
            queries in proptest::collection::vec(-15.0f64..15.0, 0..120),
        ) {
            let data = random_dataset(&targets, 3);
            let mut tree = DecisionTreeRegressor::new().with_max_depth(12);
            tree.fit(&data).unwrap();
            let flat = FlatTree::from_tree(&tree).unwrap();

            let buf: Vec<f64> = queries
                .chunks_exact(3)
                .flat_map(|c| c.to_vec())
                .collect();
            let mut level = Vec::new();
            let mut preorder = Vec::new();
            flat.predict_strided(&buf, 3, &mut level);
            flat.predict_strided_preorder(&buf, 3, &mut preorder);
            prop_assert_eq!(level.len(), preorder.len());
            for ((row, l), p) in buf.chunks_exact(3).zip(&level).zip(&preorder) {
                prop_assert_eq!(l.to_bits(), p.to_bits());
                prop_assert_eq!(l.to_bits(), tree.predict(row).to_bits());
            }
        }

        /// Forest version of the tentpole equivalence, plus the strided
        /// and fat-pointer batch entry points agreeing with each other.
        #[test]
        fn forest_level_order_walk_is_bit_identical_to_preorder_and_boxed(
            targets in proptest::collection::vec(-50.0f64..50.0, 6..40),
            seed in 0u64..500,
        ) {
            let data = random_dataset(&targets, 4);
            let mut forest = RandomForestRegressor::new()
                .with_n_trees(5)
                .with_seed(seed);
            forest.fit(&data).unwrap();
            let flat = FlatForest::from_forest(&forest).unwrap();

            let buf: Vec<f64> = data
                .samples()
                .iter()
                .flat_map(|s| s.features().to_vec())
                .collect();
            let mut level = Vec::new();
            let mut preorder = Vec::new();
            flat.predict_strided(&buf, 4, &mut level);
            flat.predict_strided_preorder(&buf, 4, &mut preorder);
            let rows: Vec<&[f64]> =
                data.samples().iter().map(|s| s.features()).collect();
            let via_rows = flat.predict_batch(&rows);
            for (((row, l), p), v) in rows.iter().zip(&level).zip(&preorder).zip(&via_rows) {
                prop_assert_eq!(l.to_bits(), p.to_bits());
                prop_assert_eq!(l.to_bits(), v.to_bits());
                prop_assert_eq!(l.to_bits(), forest.predict(row).to_bits());
            }
        }

        /// The chunked walk equals the one-record-at-a-time walk for every
        /// remainder size: batches of 0..=2*LANES rows cover the full
        /// chunk, every partial chunk, and the empty batch.
        #[test]
        fn chunked_walk_equals_one_at_a_time_for_every_remainder(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..32),
            query in proptest::collection::vec(-15.0f64..15.0, 4 * LANES..4 * LANES + 1),
        ) {
            let data = random_dataset(&targets, 2);
            let mut tree = DecisionTreeRegressor::new().with_max_depth(10);
            tree.fit(&data).unwrap();
            let flat = FlatTree::from_tree(&tree).unwrap();
            let rows: Vec<&[f64]> = query.chunks_exact(2).collect();
            let buf_full: Vec<f64> = query.clone();
            for len in 0..=rows.len() {
                let mut strided = Vec::new();
                flat.predict_strided(&buf_full[..len * 2], 2, &mut strided);
                let batch = flat.predict_batch(&rows[..len]);
                prop_assert_eq!(strided.len(), len);
                for ((row, s), b) in rows[..len].iter().zip(&strided).zip(&batch) {
                    prop_assert_eq!(s.to_bits(), flat.predict(row).to_bits());
                    prop_assert_eq!(b.to_bits(), flat.predict(row).to_bits());
                }
            }
        }

        /// The quantized lane's documented epsilon, both halves: records
        /// keeping the margin from every threshold predict bit-identically,
        /// and *every* quantized prediction is one of the tree's leaf
        /// values (a margin violation can only route to another leaf).
        #[test]
        fn quantized_walk_matches_exact_within_documented_epsilon(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..48),
            queries in proptest::collection::vec(-15.0f64..15.0, 0..90),
        ) {
            let data = random_dataset(&targets, 3);
            let mut tree = DecisionTreeRegressor::new().with_max_depth(12);
            tree.fit(&data).unwrap();
            let flat = FlatTree::from_tree(&tree).unwrap();
            let thresholds: Vec<f64> = flat
                .feature
                .iter()
                .zip(&flat.threshold)
                .filter(|(f, _)| **f != LEAF)
                .map(|(_, t)| *t)
                .collect();

            // Nudge every query value out of the quantization margin of
            // every threshold, so the contract's exact half applies.
            let buf: Vec<f64> = queries
                .iter()
                .map(|&x| {
                    let mut x = x;
                    for &t in &thresholds {
                        let m = quantization_margin(x, t);
                        if (x - t).abs() <= m {
                            x = t + 4.0 * m;
                        }
                    }
                    x
                })
                .collect();
            let buf = &buf[..buf.len() - buf.len() % 3];
            let mut exact = Vec::new();
            let mut quantized = Vec::new();
            flat.predict_strided(buf, 3, &mut exact);
            flat.predict_strided_quantized(buf, 3, &mut quantized);
            for (e, q) in exact.iter().zip(&quantized) {
                prop_assert_eq!(e.to_bits(), q.to_bits());
            }

            // Second half: raw (un-nudged) queries may cross, but every
            // quantized prediction is still some leaf's value.
            let leaves: Vec<u64> = flat
                .feature
                .iter()
                .zip(&flat.value)
                .filter(|(f, _)| **f == LEAF)
                .map(|(_, v)| v.to_bits())
                .collect();
            let raw = &queries[..queries.len() - queries.len() % 3];
            let mut out = Vec::new();
            flat.predict_strided_quantized(raw, 3, &mut out);
            for y in &out {
                prop_assert!(leaves.contains(&y.to_bits()));
            }
        }

        /// Forest quantized lane: margin-respecting records are
        /// bit-identical to the exact chunked walk.
        #[test]
        fn forest_quantized_walk_matches_exact_within_documented_epsilon(
            targets in proptest::collection::vec(-50.0f64..50.0, 6..32),
            seed in 0u64..200,
        ) {
            let data = random_dataset(&targets, 4);
            let mut forest = RandomForestRegressor::new()
                .with_n_trees(5)
                .with_seed(seed);
            forest.fit(&data).unwrap();
            let flat = FlatForest::from_forest(&forest).unwrap();
            let thresholds: Vec<f64> = flat
                .trees
                .iter()
                .flat_map(|t| {
                    t.feature
                        .iter()
                        .zip(&t.threshold)
                        .filter(|(f, _)| **f != LEAF)
                        .map(|(_, t)| *t)
                        .collect::<Vec<f64>>()
                })
                .collect();
            let buf: Vec<f64> = data
                .samples()
                .iter()
                .flat_map(|s| s.features().to_vec())
                .map(|x| {
                    let mut x = x;
                    for &t in &thresholds {
                        let m = quantization_margin(x, t);
                        if (x - t).abs() <= m {
                            x = t + 4.0 * m;
                        }
                    }
                    x
                })
                .collect();
            let mut exact = Vec::new();
            let mut quantized = Vec::new();
            flat.predict_strided(&buf, 4, &mut exact);
            flat.predict_strided_quantized(&buf, 4, &mut quantized);
            for (e, q) in exact.iter().zip(&quantized) {
                prop_assert_eq!(e.to_bits(), q.to_bits());
            }
        }
    }
}
