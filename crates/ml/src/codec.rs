//! Compact line-based text serialization for fitted models.
//!
//! The serving layer snapshots trained models so that a long-lived service
//! never re-runs the measurement corpus. The format is deliberately plain:
//! one record per line, `key=value` tokens, every float printed with
//! Rust's shortest round-trip representation — self-describing enough to
//! diff, grep, and version-control, with no external dependencies.
//!
//! The module owns the shared plumbing (token parsing, float round-trip,
//! the FNV-1a checksum used by snapshot envelopes); the per-model formats
//! live next to their types ([`DecisionTreeRegressor::to_text`],
//! [`RandomForestRegressor::to_text`]).
//!
//! [`DecisionTreeRegressor::to_text`]: crate::DecisionTreeRegressor::to_text
//! [`RandomForestRegressor::to_text`]: crate::RandomForestRegressor::to_text

use std::error::Error;
use std::fmt;

/// Error produced when decoding a serialized model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line number within the decoded text, 0 when the problem is
    /// not tied to one line (e.g. truncated input).
    line: usize,
    reason: String,
}

impl CodecError {
    /// Creates an error anchored to a 1-based line number (0 = whole input).
    pub fn new(line: usize, reason: impl Into<String>) -> Self {
        Self {
            line,
            reason: reason.into(),
        }
    }

    /// The 1-based line the error refers to (0 = whole input).
    pub fn line(&self) -> usize {
        self.line
    }

    /// Human-readable description of the problem.
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "malformed model text: {}", self.reason)
        } else {
            write!(
                f,
                "malformed model text (line {}): {}",
                self.line, self.reason
            )
        }
    }
}

impl Error for CodecError {}

/// Formats a float with Rust's shortest round-trip representation.
///
/// `{:?}` on `f64` prints the shortest decimal string that parses back to
/// the identical bit pattern (Ryū), which is what makes the snapshot
/// round-trip byte-exact for finite values.
pub fn fmt_f64(value: f64) -> String {
    format!("{value:?}")
}

/// Extracts the value of a `key=value` token, or errors.
pub(crate) fn kv<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, CodecError> {
    match token.split_once('=') {
        Some((k, v)) if k == key => Ok(v),
        _ => Err(CodecError::new(
            line,
            format!("expected `{key}=<value>`, got `{token}`"),
        )),
    }
}

/// Parses a `key=value` token as `f64`.
pub(crate) fn kv_f64(token: &str, key: &str, line: usize) -> Result<f64, CodecError> {
    let raw = kv(token, key, line)?;
    let value: f64 = raw
        .parse()
        .map_err(|_| CodecError::new(line, format!("`{key}` is not a float: `{raw}`")))?;
    if !value.is_finite() {
        return Err(CodecError::new(
            line,
            format!("`{key}` must be finite, got `{raw}`"),
        ));
    }
    Ok(value)
}

/// Parses a `key=value` token as `usize`.
pub(crate) fn kv_usize(token: &str, key: &str, line: usize) -> Result<usize, CodecError> {
    let raw = kv(token, key, line)?;
    raw.parse()
        .map_err(|_| CodecError::new(line, format!("`{key}` is not an integer: `{raw}`")))
}

/// Parses a `key=value` token as `u64`.
pub(crate) fn kv_u64(token: &str, key: &str, line: usize) -> Result<u64, CodecError> {
    let raw = kv(token, key, line)?;
    raw.parse()
        .map_err(|_| CodecError::new(line, format!("`{key}` is not an integer: `{raw}`")))
}

/// FNV-1a 64-bit hash — the checksum snapshot envelopes carry so a
/// truncated or hand-edited model file fails loudly instead of serving
/// silently wrong predictions.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips_exactly() {
        for v in [0.1, 1e-300, -3.5, 123456.789012345, f64::MIN_POSITIVE] {
            let text = fmt_f64(v);
            let back: f64 = text.parse().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn kv_rejects_wrong_key() {
        assert!(kv("a=1", "b", 3).is_err());
        assert_eq!(kv("a=1", "a", 3).unwrap(), "1");
    }

    #[test]
    fn kv_f64_rejects_non_finite() {
        assert!(kv_f64("x=NaN", "x", 1).is_err());
        assert!(kv_f64("x=inf", "x", 1).is_err());
        assert_eq!(kv_f64("x=2.5", "x", 1).unwrap(), 2.5);
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv1a64(b"tree"), fnv1a64(b"tree "));
    }
}
