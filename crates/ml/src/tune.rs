//! Hyper-parameter tuning by cross-validated grid search.

use crate::dataset::Dataset;
use crate::metrics;
use crate::tree::DecisionTreeRegressor;
use crate::validation;
use crate::Regressor;

/// Result of a grid search over tree depths.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthSearch {
    /// `(depth, mean k-fold relative error %)` per candidate.
    pub candidates: Vec<(usize, f64)>,
    /// The depth with the lowest cross-validated error.
    pub best_depth: usize,
}

/// Selects a decision-tree depth by `k`-fold cross-validation over the
/// candidate depths, scoring with mean relative error.
///
/// Ties resolve to the *shallowest* depth (prefer the simpler model).
///
/// # Panics
///
/// Panics if `depths` is empty, `k < 2`, or `k` exceeds the dataset size.
///
/// # Example
///
/// ```
/// use bagpred_ml::{tune, Dataset};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..40 {
///     data.push(vec![i as f64], if i < 20 { 1.0 } else { 5.0 })?;
/// }
/// let search = tune::select_tree_depth(&data, &[1, 2, 6], 4, 7);
/// // A single split suffices for a step function.
/// assert!(search.best_depth <= 2);
/// # Ok::<(), bagpred_ml::DatasetError>(())
/// ```
pub fn select_tree_depth(dataset: &Dataset, depths: &[usize], k: usize, seed: u64) -> DepthSearch {
    assert!(
        !depths.is_empty(),
        "at least one candidate depth is required"
    );
    let folds = validation::k_fold(dataset, k, seed);

    let mut candidates = Vec::with_capacity(depths.len());
    for &depth in depths {
        let mut total = 0.0;
        for (train, val) in &folds {
            let mut tree = DecisionTreeRegressor::new().with_max_depth(depth);
            tree.fit(train).expect("folds are non-empty");
            let truth = val.targets();
            let predicted = tree.predict_all(val);
            total += metrics::mean_relative_error(&truth, &predicted);
        }
        candidates.push((depth, total / folds.len() as f64));
    }

    let best_depth = candidates
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)))
        .expect("candidates is non-empty")
        .0;
    DepthSearch {
        candidates,
        best_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..48 {
            d.push(vec![i as f64], if i < 24 { 10.0 } else { 90.0 })
                .unwrap();
        }
        d
    }

    #[test]
    fn search_prefers_sufficient_shallow_depth() {
        let search = select_tree_depth(&step_data(), &[1, 4, 12], 4, 3);
        assert_eq!(search.best_depth, 1, "{:?}", search.candidates);
    }

    #[test]
    fn all_candidates_are_scored() {
        let search = select_tree_depth(&step_data(), &[1, 2, 3], 3, 0);
        assert_eq!(search.candidates.len(), 3);
        for (_, err) in &search.candidates {
            assert!(err.is_finite() && *err >= 0.0);
        }
    }

    #[test]
    fn deeper_helps_curvier_data() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..64 {
            d.push(vec![i as f64], ((i * i) % 97) as f64 + 1.0).unwrap();
        }
        let search = select_tree_depth(&d, &[1, 8], 4, 1);
        assert_eq!(search.best_depth, 8, "{:?}", search.candidates);
    }

    #[test]
    #[should_panic(expected = "at least one candidate")]
    fn empty_depths_panic() {
        select_tree_depth(&step_data(), &[], 3, 0);
    }
}
