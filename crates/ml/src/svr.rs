//! ε-insensitive support-vector regression.

use crate::dataset::Dataset;
use crate::error::FitError;
use crate::Regressor;
use bagpred_trace::SplitMix64;
use serde::{Deserialize, Serialize};

/// Kernel function for [`SvrRegressor`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SvrKernel {
    /// Plain dot product.
    Linear,
    /// Radial basis function `exp(-gamma * |x - y|^2)`.
    Rbf {
        /// Kernel width.
        gamma: f64,
    },
}

impl SvrKernel {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            SvrKernel::Linear => a.iter().zip(b).map(|(x, y)| x * y).sum(),
            SvrKernel::Rbf { gamma } => {
                let d2: f64 = a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum();
                (-gamma * d2).exp()
            }
        }
    }
}

/// Kernelized ε-SVR trained by stochastic subgradient descent on the
/// ε-insensitive loss in the representer form `f(x) = Σ αᵢ K(xᵢ, x) + b`.
///
/// This is the "sophisticated non-linear regression" alternative the paper
/// evaluated and rejected: on its sparse 91-point dataset SVR could not find
/// a distinctive hyperplane and its error was an order of magnitude worse
/// than the decision tree's.
///
/// # Example
///
/// ```
/// use bagpred_ml::{Dataset, Regressor, SvrKernel, SvrRegressor};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..20 {
///     data.push(vec![i as f64 / 10.0], i as f64 / 5.0)?;
/// }
/// let mut svr = SvrRegressor::new(SvrKernel::Linear);
/// svr.fit(&data)?;
/// let y = svr.predict(&[1.0]);
/// assert!((y - 2.0).abs() < 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvrRegressor {
    kernel: SvrKernel,
    epsilon: f64,
    learning_rate: f64,
    regularization: f64,
    epochs: usize,
    support: Vec<Vec<f64>>,
    alphas: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl SvrRegressor {
    /// Creates an SVR with the given kernel and default hyper-parameters
    /// (ε = 0.01, η = 0.05, λ = 1e-4, 200 epochs).
    pub fn new(kernel: SvrKernel) -> Self {
        Self {
            kernel,
            epsilon: 0.01,
            learning_rate: 0.05,
            regularization: 1e-4,
            epochs: 200,
            support: Vec::new(),
            alphas: Vec::new(),
            bias: 0.0,
            fitted: false,
        }
    }

    /// Sets the insensitivity tube half-width ε.
    ///
    /// # Panics
    ///
    /// Panics unless `epsilon` is non-negative and finite.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        assert!(
            epsilon >= 0.0 && epsilon.is_finite(),
            "epsilon must be non-negative"
        );
        self.epsilon = epsilon;
        self
    }

    /// Sets the number of training epochs.
    ///
    /// # Panics
    ///
    /// Panics if `epochs` is zero.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        assert!(epochs > 0, "at least one epoch is required");
        self.epochs = epochs;
        self
    }

    /// Number of support vectors with non-negligible weight (post-fit).
    pub fn n_support(&self) -> usize {
        self.alphas.iter().filter(|a| a.abs() > 1e-9).count()
    }

    fn raw_predict(&self, features: &[f64]) -> f64 {
        self.support
            .iter()
            .zip(&self.alphas)
            .map(|(sv, a)| a * self.kernel.eval(sv, features))
            .sum::<f64>()
            + self.bias
    }
}

impl Regressor for SvrRegressor {
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError> {
        if dataset.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let n = dataset.len();
        self.support = dataset
            .samples()
            .iter()
            .map(|s| s.features().to_vec())
            .collect();
        self.alphas = vec![0.0; n];
        self.bias = 0.0;
        self.fitted = true; // raw_predict is usable during training

        let targets = dataset.targets();
        let mut rng = SplitMix64::new(0x5bf1_2da7);
        for epoch in 0..self.epochs {
            let eta = self.learning_rate / (1.0 + epoch as f64 * 0.05);
            for _ in 0..n {
                let i = rng.next_below(n as u64) as usize;
                let err = self.raw_predict(&self.support[i]) - targets[i];
                // Subgradient of the epsilon-insensitive loss.
                let g = if err > self.epsilon {
                    1.0
                } else if err < -self.epsilon {
                    -1.0
                } else {
                    0.0
                };
                if g != 0.0 {
                    self.alphas[i] -= eta * g;
                    self.bias -= eta * g * 0.1;
                }
                // L2 shrinkage keeps alphas bounded.
                self.alphas[i] *= 1.0 - eta * self.regularization;
            }
        }
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(self.fitted, "model must be fitted");
        assert_eq!(
            features.len(),
            self.support.first().map_or(0, Vec::len),
            "feature vector has wrong dimension"
        );
        self.raw_predict(features)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..30 {
            let x = i as f64 / 15.0;
            d.push(vec![x], 2.0 * x - 0.5).unwrap();
        }
        d
    }

    #[test]
    fn linear_kernel_fits_a_line() {
        let mut svr = SvrRegressor::new(SvrKernel::Linear);
        svr.fit(&line_dataset()).unwrap();
        for (x, want) in [(0.0, -0.5), (1.0, 1.5), (2.0, 3.5)] {
            let got = svr.predict(&[x]);
            assert!((got - want).abs() < 0.4, "x={x}: got {got}, want {want}");
        }
    }

    #[test]
    fn rbf_kernel_fits_a_bump() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..40 {
            let x = i as f64 / 10.0 - 2.0;
            d.push(vec![x], (-x * x).exp()).unwrap();
        }
        let mut svr = SvrRegressor::new(SvrKernel::Rbf { gamma: 2.0 }).with_epochs(400);
        svr.fit(&d).unwrap();
        let peak = svr.predict(&[0.0]);
        let tail = svr.predict(&[-2.0]);
        assert!(peak > 0.6, "peak {peak}");
        assert!(tail < 0.4, "tail {tail}");
    }

    #[test]
    fn epsilon_tube_tolerates_small_errors() {
        // With a huge tube, nothing is a violation and alphas stay zero.
        let mut svr = SvrRegressor::new(SvrKernel::Linear).with_epsilon(1e9);
        svr.fit(&line_dataset()).unwrap();
        assert_eq!(svr.n_support(), 0);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert_eq!(
            SvrRegressor::new(SvrKernel::Linear).fit(&d).unwrap_err(),
            FitError::EmptyDataset
        );
    }

    #[test]
    #[should_panic(expected = "must be fitted")]
    fn predict_before_fit_panics() {
        SvrRegressor::new(SvrKernel::Linear).predict(&[1.0]);
    }

    #[test]
    fn deterministic_training() {
        let mut a = SvrRegressor::new(SvrKernel::Linear);
        let mut b = SvrRegressor::new(SvrKernel::Linear);
        a.fit(&line_dataset()).unwrap();
        b.fit(&line_dataset()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn kernel_eval_matches_definitions() {
        let lin = SvrKernel::Linear;
        assert_eq!(lin.eval(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let rbf = SvrKernel::Rbf { gamma: 1.0 };
        assert!((rbf.eval(&[0.0], &[0.0]) - 1.0).abs() < 1e-12);
        assert!(rbf.eval(&[0.0], &[10.0]) < 1e-12);
    }
}
