//! Regression quality metrics.

/// Mean squared error — the loss function of the paper's Eq. 1.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// let mse = bagpred_ml::metrics::mse(&[1.0, 2.0], &[1.0, 4.0]);
/// assert_eq!(mse, 2.0);
/// ```
pub fn mse(truth: &[f64], predicted: &[f64]) -> f64 {
    check(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p) * (t - p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Mean absolute error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mae(truth: &[f64], predicted: &[f64]) -> f64 {
    check(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / truth.len() as f64
}

/// Relative error of one prediction, in percent — the paper's §VI measure:
/// `|(true - predicted) / true| × 100`.
///
/// Returns infinity for a zero true value with a non-zero prediction.
pub fn relative_error(truth: f64, predicted: f64) -> f64 {
    if truth == 0.0 {
        if predicted == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ((truth - predicted) / truth).abs() * 100.0
    }
}

/// Mean relative error over a prediction set, in percent.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
///
/// # Example
///
/// ```
/// let err = bagpred_ml::metrics::mean_relative_error(&[10.0, 20.0], &[11.0, 18.0]);
/// assert!((err - 10.0).abs() < 1e-9); // (10% + 10%) / 2
/// ```
pub fn mean_relative_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check(truth, predicted);
    truth
        .iter()
        .zip(predicted)
        .map(|(&t, &p)| relative_error(t, p))
        .sum::<f64>()
        / truth.len() as f64
}

/// Median relative error over a prediction set, in percent.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn median_relative_error(truth: &[f64], predicted: &[f64]) -> f64 {
    check(truth, predicted);
    let mut errors: Vec<f64> = truth
        .iter()
        .zip(predicted)
        .map(|(&t, &p)| relative_error(t, p))
        .collect();
    errors.sort_by(f64::total_cmp);
    let mid = errors.len() / 2;
    if errors.len() % 2 == 1 {
        errors[mid]
    } else {
        (errors[mid - 1] + errors[mid]) / 2.0
    }
}

/// Pearson correlation coefficient between two series.
///
/// Returns 0 when either series is constant.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    check(a, b);
    let n = a.len() as f64;
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - mean_a) * (y - mean_b);
        var_a += (x - mean_a) * (x - mean_a);
        var_b += (y - mean_b) * (y - mean_b);
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        0.0
    } else {
        cov / (var_a.sqrt() * var_b.sqrt())
    }
}

fn check(a: &[f64], b: &[f64]) {
    assert_eq!(a.len(), b.len(), "series must have equal length");
    assert!(!a.is_empty(), "series must be non-empty");
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mse_of_perfect_prediction_is_zero() {
        assert_eq!(mse(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn mae_is_mean_of_absolute_errors() {
        assert_eq!(mae(&[0.0, 0.0], &[1.0, -3.0]), 2.0);
    }

    #[test]
    fn relative_error_handles_zero_truth() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert!(relative_error(0.0, 1.0).is_infinite());
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let truth = [10.0, 10.0, 10.0];
        let pred = [11.0, 9.0, 1000.0];
        assert!(mean_relative_error(&truth, &pred) > 100.0);
        assert!((median_relative_error(&truth, &pred) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn median_of_even_count_averages() {
        let truth = [10.0, 10.0];
        let pred = [11.0, 13.0];
        assert!((median_relative_error(&truth, &pred) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn pearson_of_linear_series_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
        let neg = [-10.0, -20.0, -30.0, -40.0];
        assert!((pearson(&a, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_series_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn length_mismatch_panics() {
        mse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_series_panics() {
        mse(&[], &[]);
    }

    proptest! {
        #[test]
        fn mse_is_nonnegative(
            truth in proptest::collection::vec(-100.0f64..100.0, 1..20),
            noise in proptest::collection::vec(-100.0f64..100.0, 1..20),
        ) {
            let n = truth.len().min(noise.len());
            prop_assert!(mse(&truth[..n], &noise[..n]) >= 0.0);
        }

        #[test]
        fn pearson_is_bounded(
            a in proptest::collection::vec(-100.0f64..100.0, 2..20),
            b in proptest::collection::vec(-100.0f64..100.0, 2..20),
        ) {
            let n = a.len().min(b.len());
            let r = pearson(&a[..n], &b[..n]);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
        }
    }
}
