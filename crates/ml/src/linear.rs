//! Ordinary least-squares linear regression.

use crate::dataset::Dataset;
use crate::error::FitError;
use crate::Regressor;
use serde::{Deserialize, Serialize};

/// Linear regression `y = w · x + b`, solved via the normal equations with
/// Gaussian elimination (partial pivoting) and a small ridge term retried on
/// singular systems.
///
/// The paper notes linear regression presumes independent features — which
/// its feature set violates — and uses it only as a conceptual baseline; we
/// provide it for the same comparative role.
///
/// # Example
///
/// ```
/// use bagpred_ml::{Dataset, LinearRegression, Regressor};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..10 {
///     data.push(vec![i as f64], 3.0 * i as f64 + 1.0)?;
/// }
/// let mut model = LinearRegression::new();
/// model.fit(&data)?;
/// assert!((model.predict(&[20.0]) - 61.0).abs() < 1e-6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LinearRegression {
    weights: Vec<f64>,
    bias: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted weights (empty before fitting).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Fitted intercept.
    pub fn bias(&self) -> f64 {
        self.bias
    }

    fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Result<Vec<f64>, FitError> {
        let n = b.len();
        for col in 0..n {
            // Partial pivoting.
            let pivot = (col..n)
                .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
                .expect("non-empty range");
            if a[pivot][col].abs() < 1e-12 {
                return Err(FitError::SingularSystem);
            }
            a.swap(col, pivot);
            b.swap(col, pivot);
            for row in col + 1..n {
                let factor = a[row][col] / a[col][col];
                let (pivot_rows, rest) = a.split_at_mut(row);
                let pivot_row = &pivot_rows[col];
                for (dst, src) in rest[0][col..].iter_mut().zip(&pivot_row[col..]) {
                    *dst -= factor * src;
                }
                b[row] -= factor * b[col];
            }
        }
        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = b[row];
            for k in row + 1..n {
                acc -= a[row][k] * x[k];
            }
            x[row] = acc / a[row][row];
        }
        Ok(x)
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError> {
        if dataset.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let d = dataset.n_features() + 1; // + intercept
                                          // Normal equations: (X^T X) w = X^T y over [x, 1] vectors.
        let mut xtx = vec![vec![0.0; d]; d];
        let mut xty = vec![0.0; d];
        for s in dataset.samples() {
            let mut row: Vec<f64> = s.features().to_vec();
            row.push(1.0);
            for i in 0..d {
                xty[i] += row[i] * s.target();
                for j in 0..d {
                    xtx[i][j] += row[i] * row[j];
                }
            }
        }
        let solution = match Self::solve(&mut xtx.clone(), &mut xty.clone()) {
            Ok(x) => x,
            Err(FitError::SingularSystem) => {
                // Ridge fallback: well-posed for any data.
                let mut ridge = xtx;
                for (i, row) in ridge.iter_mut().enumerate() {
                    row[i] += 1e-6;
                    let _ = i;
                }
                Self::solve(&mut ridge, &mut xty)?
            }
            Err(e) => return Err(e),
        };
        self.bias = solution[d - 1];
        self.weights = solution[..d - 1].to_vec();
        self.fitted = true;
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert!(self.fitted, "model must be fitted");
        assert_eq!(
            features.len(),
            self.weights.len(),
            "feature vector has wrong dimension"
        );
        self.weights
            .iter()
            .zip(features)
            .map(|(w, x)| w * x)
            .sum::<f64>()
            + self.bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for i in 0..20 {
            let (a, b) = (i as f64, (i * i % 7) as f64);
            d.push(vec![a, b], 2.0 * a - 3.0 * b + 5.0).unwrap();
        }
        let mut m = LinearRegression::new();
        m.fit(&d).unwrap();
        assert!((m.weights()[0] - 2.0).abs() < 1e-8);
        assert!((m.weights()[1] + 3.0).abs() < 1e-8);
        assert!((m.bias() - 5.0).abs() < 1e-8);
    }

    #[test]
    fn collinear_features_fall_back_to_ridge() {
        // b = 2a exactly: X^T X is singular; the ridge fallback must fit.
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        for i in 0..10 {
            let a = i as f64;
            d.push(vec![a, 2.0 * a], 3.0 * a).unwrap();
        }
        let mut m = LinearRegression::new();
        m.fit(&d).unwrap();
        // Prediction is what matters, not the (non-unique) weights.
        assert!((m.predict(&[4.0, 8.0]) - 12.0).abs() < 1e-3);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert_eq!(
            LinearRegression::new().fit(&d).unwrap_err(),
            FitError::EmptyDataset
        );
    }

    #[test]
    #[should_panic(expected = "must be fitted")]
    fn predict_before_fit_panics() {
        LinearRegression::new().predict(&[1.0]);
    }

    #[test]
    fn constant_target_learns_intercept() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..5 {
            d.push(vec![i as f64], 9.0).unwrap();
        }
        let mut m = LinearRegression::new();
        m.fit(&d).unwrap();
        assert!((m.predict(&[100.0]) - 9.0).abs() < 1e-6);
    }

    proptest! {
        #[test]
        fn fits_arbitrary_planes(
            w0 in -10.0f64..10.0,
            w1 in -10.0f64..10.0,
            b in -10.0f64..10.0,
        ) {
            let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
            // Deterministic non-collinear design.
            for i in 0..25 {
                let a = (i % 5) as f64;
                let c = (i / 5) as f64;
                d.push(vec![a, c], w0 * a + w1 * c + b).unwrap();
            }
            let mut m = LinearRegression::new();
            m.fit(&d).unwrap();
            let err = (m.predict(&[2.5, 1.5]) - (w0 * 2.5 + w1 * 1.5 + b)).abs();
            prop_assert!(err < 1e-6, "err {err}");
        }
    }
}
