//! Regression machine learning for the `bagpred` workspace.
//!
//! The ISPASS 2020 paper trains its predictor with scikit-learn. This crate
//! provides the needed capabilities natively, from scratch:
//!
//! * [`DecisionTreeRegressor`] — CART with MSE splitting, the paper's model
//!   of choice (for its accuracy *and* its explainability).
//! * [`LinearRegression`] — ordinary least squares via the normal equations
//!   (with a ridge fallback for singular systems), the baseline the paper
//!   dismisses because its features are not independent.
//! * [`SvrRegressor`] — ε-insensitive support-vector regression with linear
//!   and RBF kernels, the alternative the paper reports to be ~10× worse on
//!   its sparse dataset.
//! * [`RandomForestRegressor`] — a bagged-CART extension model for the
//!   robustness comparison.
//! * [`tune`] — cross-validated hyper-parameter search.
//! * [`validation`] — seeded train/test splits, k-fold, and the grouped
//!   leave-one-out scheme of the paper's Fig. 4 (leave *all data points of
//!   one benchmark* out).
//! * [`metrics`] — MSE and the relative-error measure of §VI.
//! * [`introspect`] — decision-path extraction over a fitted tree: which
//!   features gate each test point and how often (Figs. 10-12).
//!
//! Owning the tree implementation is what makes the decision-path analysis
//! possible; a black-box library would not expose its internals in a stable
//! way.
//!
//! # Example
//!
//! ```
//! use bagpred_ml::{Dataset, DecisionTreeRegressor, Regressor};
//!
//! // y = x0 * 2, a relationship a depth-limited tree can approximate.
//! let mut data = Dataset::new(vec!["x0".into()])?;
//! for i in 0..32 {
//!     data.push(vec![i as f64], i as f64 * 2.0)?;
//! }
//! let mut tree = DecisionTreeRegressor::new().with_max_depth(6);
//! tree.fit(&data)?;
//! let y = tree.predict(&[10.0]);
//! assert!((y - 20.0).abs() < 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod dataset;
mod error;
mod flat;
mod forest;
pub mod introspect;
mod linear;
pub mod metrics;
mod svr;
mod tree;
pub mod tune;
pub mod validation;

pub use codec::CodecError;
pub use dataset::{Dataset, Sample};
pub use error::{DatasetError, FitError};
pub use flat::{FlatForest, FlatTree, LANES};
pub use forest::RandomForestRegressor;
pub use linear::LinearRegression;
pub use svr::{SvrKernel, SvrRegressor};
pub use tree::{DecisionTreeRegressor, TreeNode};

/// A trainable regression model.
///
/// All models in this crate implement `Regressor`, so the predictor layer
/// and the benchmark harness can treat them uniformly (and as trait
/// objects).
pub trait Regressor {
    /// Fits the model to a dataset.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when the dataset is empty or otherwise
    /// unusable for this model.
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError>;

    /// Predicts the target for one feature vector.
    ///
    /// # Panics
    ///
    /// Implementations may panic if the model has not been fitted or if the
    /// feature vector has the wrong dimension; see each model's docs.
    fn predict(&self, features: &[f64]) -> f64;

    /// Predicts targets for a batch of feature vectors.
    ///
    /// The default walks records one at a time; tree-backed callers should
    /// compile a [`FlatTree`]/[`FlatForest`] once after fitting and use its
    /// allocation-free batch walk instead.
    fn predict_batch(&self, rows: &[&[f64]]) -> Vec<f64> {
        rows.iter().map(|row| self.predict(row)).collect()
    }

    /// Predicts targets for every sample of a dataset.
    fn predict_all(&self, dataset: &Dataset) -> Vec<f64> {
        dataset
            .samples()
            .iter()
            .map(|s| self.predict(s.features()))
            .collect()
    }
}
