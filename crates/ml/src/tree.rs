//! CART decision-tree regression.

use crate::codec::{self, CodecError};
use crate::dataset::Dataset;
use crate::error::FitError;
use crate::Regressor;
use serde::{Deserialize, Serialize};

/// A node of a fitted regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// A terminal node: predicts the mean target of its training samples.
    Leaf {
        /// Predicted value.
        prediction: f64,
        /// Training samples that reached this leaf.
        n_samples: usize,
    },
    /// An internal decision node: `feature <= threshold` goes left.
    Split {
        /// Index of the feature tested.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Mean target at this node (used for pruned/partial evaluation).
        prediction: f64,
        /// Training samples that reached this node.
        n_samples: usize,
        /// MSE decrease achieved by this split, weighted by sample count.
        impurity_decrease: f64,
        /// Subtree for `feature <= threshold`.
        left: Box<TreeNode>,
        /// Subtree for `feature > threshold`.
        right: Box<TreeNode>,
    },
}

/// One step along a decision path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathStep {
    /// Feature tested at this node.
    pub feature: usize,
    /// Threshold compared against.
    pub threshold: f64,
    /// Whether the sample went to the left child (`value <= threshold`).
    pub went_left: bool,
}

/// CART regression tree with MSE splitting — the paper's model (§II-B3).
///
/// Growth stops at `max_depth`, below `min_samples_split`, or when no split
/// decreases the summed MSE by at least `min_impurity_decrease` — "till the
/// sum of the MSEs stops decreasing", as the paper puts it.
///
/// # Example
///
/// ```
/// use bagpred_ml::{Dataset, DecisionTreeRegressor, Regressor};
///
/// // A step function: x <= 5 -> 1, x > 5 -> 9.
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..10 {
///     data.push(vec![i as f64], if i <= 5 { 1.0 } else { 9.0 })?;
/// }
/// let mut tree = DecisionTreeRegressor::new();
/// tree.fit(&data)?;
/// assert_eq!(tree.predict(&[3.0]), 1.0);
/// assert_eq!(tree.predict(&[8.0]), 9.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    max_depth: usize,
    min_samples_split: usize,
    min_impurity_decrease: f64,
    root: Option<TreeNode>,
    n_features: usize,
}

impl Default for DecisionTreeRegressor {
    fn default() -> Self {
        Self::new()
    }
}

impl DecisionTreeRegressor {
    /// Creates a tree with default hyper-parameters (depth 12, split ≥ 2).
    pub fn new() -> Self {
        Self {
            max_depth: 12,
            min_samples_split: 2,
            min_impurity_decrease: 1e-12,
            root: None,
            n_features: 0,
        }
    }

    /// Sets the maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.max_depth = depth;
        self
    }

    /// Sets the minimum number of samples required to split a node.
    ///
    /// # Panics
    ///
    /// Panics if `n` is less than 2.
    pub fn with_min_samples_split(mut self, n: usize) -> Self {
        assert!(n >= 2, "a split needs at least two samples");
        self.min_samples_split = n;
        self
    }

    /// Sets the minimum impurity decrease a split must achieve.
    ///
    /// # Panics
    ///
    /// Panics unless `decrease` is non-negative and finite.
    pub fn with_min_impurity_decrease(mut self, decrease: f64) -> Self {
        assert!(
            decrease >= 0.0 && decrease.is_finite(),
            "decrease must be non-negative"
        );
        self.min_impurity_decrease = decrease;
        self
    }

    /// The fitted root node, if [`fit`](Regressor::fit) has been called.
    pub fn root(&self) -> Option<&TreeNode> {
        self.root.as_ref()
    }

    /// Maximum depth hyper-parameter.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Dimensionality of the feature vectors the tree was fitted on
    /// (0 when unfitted).
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The sequence of decisions a feature vector takes through the tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or `features` has the wrong length.
    pub fn decision_path(&self, features: &[f64]) -> Vec<PathStep> {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector has wrong dimension"
        );
        let mut node = self.root.as_ref().expect("tree must be fitted");
        let mut path = Vec::new();
        while let TreeNode::Split {
            feature,
            threshold,
            left,
            right,
            ..
        } = node
        {
            let went_left = features[*feature] <= *threshold;
            path.push(PathStep {
                feature: *feature,
                threshold: *threshold,
                went_left,
            });
            node = if went_left { left } else { right };
        }
        path
    }

    /// Number of leaves in the fitted tree (0 when unfitted).
    pub fn n_leaves(&self) -> usize {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => count(left) + count(right),
            }
        }
        self.root.as_ref().map_or(0, count)
    }

    /// Depth of the fitted tree (0 when unfitted; 1 for a lone leaf).
    pub fn depth(&self) -> usize {
        fn depth(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + depth(left).max(depth(right)),
            }
        }
        self.root.as_ref().map_or(0, depth)
    }

    /// Impurity-based feature importances, normalized to sum to 1 (all
    /// zeros when the tree is a single leaf). Indexed by feature.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn feature_importances(&self) -> Vec<f64> {
        let root = self.root.as_ref().expect("tree must be fitted");
        let mut importances = vec![0.0; self.n_features];
        fn walk(node: &TreeNode, importances: &mut [f64]) {
            if let TreeNode::Split {
                feature,
                impurity_decrease,
                left,
                right,
                ..
            } = node
            {
                importances[*feature] += impurity_decrease;
                walk(left, importances);
                walk(right, importances);
            }
        }
        walk(root, &mut importances);
        let total: f64 = importances.iter().sum();
        if total > 0.0 {
            for v in &mut importances {
                *v /= total;
            }
        }
        importances
    }

    /// Renders the tree as indented text, with feature names.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn dump(&self, feature_names: &[String]) -> String {
        fn walk(node: &TreeNode, names: &[String], depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            match node {
                TreeNode::Leaf {
                    prediction,
                    n_samples,
                } => {
                    out.push_str(&format!(
                        "{indent}leaf: predict {prediction:.6} ({n_samples} samples)\n"
                    ));
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    n_samples,
                    ..
                } => {
                    let name = names
                        .get(*feature)
                        .map(String::as_str)
                        .unwrap_or("<unknown>");
                    out.push_str(&format!(
                        "{indent}if {name} <= {threshold:.6} ({n_samples} samples)\n"
                    ));
                    walk(left, names, depth + 1, out);
                    out.push_str(&format!("{indent}else\n"));
                    walk(right, names, depth + 1, out);
                }
            }
        }
        let mut out = String::new();
        walk(
            self.root.as_ref().expect("tree must be fitted"),
            feature_names,
            0,
            &mut out,
        );
        out
    }

    /// Renders the tree in Graphviz DOT format for visualization.
    ///
    /// Decision nodes are labelled `name <= threshold`; leaves carry the
    /// predicted value and sample count. Feed the output to `dot -Tsvg`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted.
    pub fn dump_dot(&self, feature_names: &[String]) -> String {
        fn walk(node: &TreeNode, names: &[String], next_id: &mut usize, out: &mut String) -> usize {
            let id = *next_id;
            *next_id += 1;
            match node {
                TreeNode::Leaf {
                    prediction,
                    n_samples,
                } => {
                    out.push_str(&format!(
                        "  n{id} [shape=box, label=\"{prediction:.4}\\n({n_samples} samples)\"];\n"
                    ));
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let name = names
                        .get(*feature)
                        .map(String::as_str)
                        .unwrap_or("<unknown>");
                    out.push_str(&format!("  n{id} [label=\"{name} <= {threshold:.4}\"];\n"));
                    let l = walk(left, names, next_id, out);
                    let r = walk(right, names, next_id, out);
                    out.push_str(&format!("  n{id} -> n{l} [label=\"yes\"];\n"));
                    out.push_str(&format!("  n{id} -> n{r} [label=\"no\"];\n"));
                }
            }
            id
        }
        let mut out = String::from("digraph tree {\n  node [fontname=\"monospace\"];\n");
        let mut next_id = 0;
        walk(
            self.root.as_ref().expect("tree must be fitted"),
            feature_names,
            &mut next_id,
            &mut out,
        );
        out.push_str("}\n");
        out
    }

    fn build(
        &self,
        features: &[&[f64]],
        targets: &[f64],
        indices: &mut [usize],
        depth: usize,
    ) -> TreeNode {
        let n = indices.len();
        let mean = indices.iter().map(|&i| targets[i]).sum::<f64>() / n as f64;
        let sse: f64 = indices.iter().map(|&i| (targets[i] - mean).powi(2)).sum();

        let make_leaf = || TreeNode::Leaf {
            prediction: mean,
            n_samples: n,
        };
        if depth >= self.max_depth || n < self.min_samples_split || sse <= f64::EPSILON {
            return make_leaf();
        }

        // Best split: minimize left SSE + right SSE over all features and
        // midpoint thresholds. O(features x n log n) with running sums.
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, total_sse)
        let n_features = features[0].len();
        let mut order: Vec<usize> = indices.to_vec();
        #[allow(clippy::needless_range_loop)] // `f` indexes inner per-sample rows
        for f in 0..n_features {
            order.sort_by(|&a, &b| features[a][f].total_cmp(&features[b][f]));
            // Prefix sums of targets and squared targets along the order.
            let mut sum_left = 0.0;
            let mut sq_left = 0.0;
            let total_sum: f64 = order.iter().map(|&i| targets[i]).sum();
            let total_sq: f64 = order.iter().map(|&i| targets[i] * targets[i]).sum();
            for k in 0..n - 1 {
                let i = order[k];
                sum_left += targets[i];
                sq_left += targets[i] * targets[i];
                let v = features[i][f];
                let v_next = features[order[k + 1]][f];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let n_left = (k + 1) as f64;
                let n_right = (n - k - 1) as f64;
                let sse_left = sq_left - sum_left * sum_left / n_left;
                let sum_right = total_sum - sum_left;
                let sse_right = (total_sq - sq_left) - sum_right * sum_right / n_right;
                let total = sse_left + sse_right;
                if best.is_none_or(|(_, _, b)| total < b - 1e-15) {
                    best = Some((f, (v + v_next) / 2.0, total));
                }
            }
        }

        let Some((feature, threshold, split_sse)) = best else {
            return make_leaf();
        };
        if sse - split_sse < self.min_impurity_decrease {
            return make_leaf();
        }

        let mid = itertools_partition(indices, |&i| features[i][feature] <= threshold);
        let (left_idx, right_idx) = indices.split_at_mut(mid);
        if left_idx.is_empty() || right_idx.is_empty() {
            return make_leaf();
        }
        let left = self.build(features, targets, left_idx, depth + 1);
        let right = self.build(features, targets, right_idx, depth + 1);
        TreeNode::Split {
            feature,
            threshold,
            prediction: mean,
            n_samples: n,
            impurity_decrease: sse - split_sse,
            left: Box::new(left),
            right: Box::new(right),
        }
    }
}

impl DecisionTreeRegressor {
    /// Serializes the tree (hyper-parameters + fitted structure) as the
    /// compact line-based text of [`crate::codec`]: a `tree` header line
    /// followed by one pre-order line per node.
    ///
    /// Every float uses the shortest round-trip representation, so
    /// [`from_text`](Self::from_text) reconstructs a tree whose
    /// predictions are bit-identical to the original's.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    pub(crate) fn encode_into(&self, out: &mut String) {
        fn count(node: &TreeNode) -> usize {
            match node {
                TreeNode::Leaf { .. } => 1,
                TreeNode::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        fn encode_node(node: &TreeNode, out: &mut String) {
            match node {
                TreeNode::Leaf {
                    prediction,
                    n_samples,
                } => {
                    out.push_str(&format!(
                        "leaf prediction={} n_samples={n_samples}\n",
                        codec::fmt_f64(*prediction)
                    ));
                }
                TreeNode::Split {
                    feature,
                    threshold,
                    prediction,
                    n_samples,
                    impurity_decrease,
                    left,
                    right,
                } => {
                    out.push_str(&format!(
                        "split feature={feature} threshold={} prediction={} \
                         n_samples={n_samples} impurity_decrease={}\n",
                        codec::fmt_f64(*threshold),
                        codec::fmt_f64(*prediction),
                        codec::fmt_f64(*impurity_decrease),
                    ));
                    encode_node(left, out);
                    encode_node(right, out);
                }
            }
        }
        let nodes = self.root.as_ref().map_or(0, count);
        out.push_str(&format!(
            "tree max_depth={} min_samples_split={} min_impurity_decrease={} \
             n_features={} nodes={nodes}\n",
            self.max_depth,
            self.min_samples_split,
            codec::fmt_f64(self.min_impurity_decrease),
            self.n_features,
        ));
        if let Some(root) = &self.root {
            encode_node(root, out);
        }
    }

    /// Reconstructs a tree from [`to_text`](Self::to_text) output.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on any structural problem: wrong header,
    /// truncated node list, unparsable numbers, or trailing garbage.
    pub fn from_text(text: &str) -> Result<Self, CodecError> {
        let lines: Vec<&str> = text.lines().collect();
        let (tree, used) = Self::decode_lines(&lines, 0)?;
        if lines[used..].iter().any(|l| !l.trim().is_empty()) {
            return Err(CodecError::new(
                used + 1,
                "trailing content after tree block",
            ));
        }
        Ok(tree)
    }

    /// Decodes one tree block starting at `lines[start]`, returning the
    /// tree and the index one past its last line. Line numbers in errors
    /// are 1-based and absolute within `lines`.
    pub(crate) fn decode_lines(lines: &[&str], start: usize) -> Result<(Self, usize), CodecError> {
        let header = lines
            .get(start)
            .ok_or_else(|| CodecError::new(0, "missing tree header"))?;
        let header_no = start + 1;
        let tokens: Vec<&str> = header.split_whitespace().collect();
        if tokens.first() != Some(&"tree") || tokens.len() != 6 {
            return Err(CodecError::new(header_no, "expected `tree` header"));
        }
        let max_depth = codec::kv_usize(tokens[1], "max_depth", header_no)?;
        let min_samples_split = codec::kv_usize(tokens[2], "min_samples_split", header_no)?;
        let min_impurity_decrease = codec::kv_f64(tokens[3], "min_impurity_decrease", header_no)?;
        let n_features = codec::kv_usize(tokens[4], "n_features", header_no)?;
        let nodes = codec::kv_usize(tokens[5], "nodes", header_no)?;
        if max_depth == 0 {
            return Err(CodecError::new(header_no, "max_depth must be positive"));
        }
        if min_samples_split < 2 {
            return Err(CodecError::new(header_no, "min_samples_split must be >= 2"));
        }

        fn decode_node(
            lines: &[&str],
            cursor: &mut usize,
            end: usize,
        ) -> Result<TreeNode, CodecError> {
            let line_no = *cursor + 1;
            if *cursor >= end {
                return Err(CodecError::new(0, "truncated tree: node list ended early"));
            }
            let line = lines[*cursor];
            *cursor += 1;
            let tokens: Vec<&str> = line.split_whitespace().collect();
            match tokens.first().copied() {
                Some("leaf") if tokens.len() == 3 => Ok(TreeNode::Leaf {
                    prediction: codec::kv_f64(tokens[1], "prediction", line_no)?,
                    n_samples: codec::kv_usize(tokens[2], "n_samples", line_no)?,
                }),
                Some("split") if tokens.len() == 6 => {
                    let feature = codec::kv_usize(tokens[1], "feature", line_no)?;
                    let threshold = codec::kv_f64(tokens[2], "threshold", line_no)?;
                    let prediction = codec::kv_f64(tokens[3], "prediction", line_no)?;
                    let n_samples = codec::kv_usize(tokens[4], "n_samples", line_no)?;
                    let impurity_decrease = codec::kv_f64(tokens[5], "impurity_decrease", line_no)?;
                    let left = decode_node(lines, cursor, end)?;
                    let right = decode_node(lines, cursor, end)?;
                    Ok(TreeNode::Split {
                        feature,
                        threshold,
                        prediction,
                        n_samples,
                        impurity_decrease,
                        left: Box::new(left),
                        right: Box::new(right),
                    })
                }
                _ => Err(CodecError::new(
                    line_no,
                    format!("expected `leaf` or `split` node, got `{line}`"),
                )),
            }
        }

        let mut cursor = start + 1;
        let end = start + 1 + nodes;
        if end > lines.len() {
            return Err(CodecError::new(
                header_no,
                format!(
                    "header claims {nodes} nodes but only {} lines remain",
                    lines.len() - start - 1
                ),
            ));
        }
        let root = if nodes == 0 {
            None
        } else {
            Some(decode_node(lines, &mut cursor, end)?)
        };
        if cursor != end {
            return Err(CodecError::new(
                header_no,
                format!(
                    "header claims {nodes} nodes but the pre-order walk consumed {}",
                    cursor - start - 1
                ),
            ));
        }
        let tree = Self {
            max_depth,
            min_samples_split,
            min_impurity_decrease,
            root,
            n_features,
        };
        tree.validate_decoded(header_no)?;
        Ok((tree, cursor))
    }

    /// Structural sanity checks on a freshly decoded tree: every split's
    /// feature index must be in range so later `predict` calls cannot
    /// panic on out-of-bounds indexing.
    fn validate_decoded(&self, header_no: usize) -> Result<(), CodecError> {
        fn walk(node: &TreeNode, n_features: usize, header_no: usize) -> Result<(), CodecError> {
            if let TreeNode::Split {
                feature,
                left,
                right,
                ..
            } = node
            {
                if *feature >= n_features {
                    return Err(CodecError::new(
                        header_no,
                        format!("split references feature {feature} but the tree has {n_features}"),
                    ));
                }
                walk(left, n_features, header_no)?;
                walk(right, n_features, header_no)?;
            }
            Ok(())
        }
        match &self.root {
            Some(root) => walk(root, self.n_features, header_no),
            None => Ok(()),
        }
    }
}

/// Stable partition: moves elements satisfying `pred` to the front,
/// returning the boundary index.
fn itertools_partition<T: Copy>(slice: &mut [T], pred: impl Fn(&T) -> bool) -> usize {
    let mut buffer: Vec<T> = Vec::with_capacity(slice.len());
    let mut mid = 0;
    for &v in slice.iter() {
        if pred(&v) {
            buffer.insert(mid, v);
            mid += 1;
        } else {
            buffer.push(v);
        }
    }
    slice.copy_from_slice(&buffer);
    mid
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, dataset: &Dataset) -> Result<(), FitError> {
        if dataset.is_empty() {
            return Err(FitError::EmptyDataset);
        }
        let features: Vec<&[f64]> = dataset.samples().iter().map(|s| s.features()).collect();
        let targets = dataset.targets();
        let mut indices: Vec<usize> = (0..dataset.len()).collect();
        self.n_features = dataset.n_features();
        self.root = Some(self.build(&features, &targets, &mut indices, 0));
        Ok(())
    }

    fn predict(&self, features: &[f64]) -> f64 {
        assert_eq!(
            features.len(),
            self.n_features,
            "feature vector has wrong dimension"
        );
        let mut node = self.root.as_ref().expect("tree must be fitted");
        loop {
            match node {
                TreeNode::Leaf { prediction, .. } => return *prediction,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if features[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn step_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "noise".into()]).unwrap();
        for i in 0..20 {
            let y = if i < 10 { 5.0 } else { 50.0 };
            d.push(vec![i as f64, (i % 3) as f64], y).unwrap();
        }
        d
    }

    #[test]
    fn learns_step_function_exactly() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        assert_eq!(tree.predict(&[2.0, 0.0]), 5.0);
        assert_eq!(tree.predict(&[15.0, 0.0]), 50.0);
        // One split suffices.
        assert_eq!(tree.n_leaves(), 2);
    }

    #[test]
    fn picks_informative_feature() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        let importances = tree.feature_importances();
        assert!(importances[0] > 0.99, "x carries all signal");
        assert!(importances[1] < 0.01);
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..64 {
            d.push(vec![i as f64], (i * i) as f64).unwrap();
        }
        let mut tree = DecisionTreeRegressor::new().with_max_depth(3);
        tree.fit(&d).unwrap();
        assert!(tree.depth() <= 4); // 3 split levels + leaves
        assert!(tree.n_leaves() <= 8);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..10 {
            d.push(vec![i as f64], 7.0).unwrap();
        }
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[99.0]), 7.0);
    }

    #[test]
    fn single_sample_fits() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(vec![1.0], 42.0).unwrap();
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        assert_eq!(tree.predict(&[0.0]), 42.0);
    }

    #[test]
    fn empty_dataset_errors() {
        let d = Dataset::new(vec!["x".into()]).unwrap();
        assert_eq!(
            DecisionTreeRegressor::new().fit(&d).unwrap_err(),
            FitError::EmptyDataset
        );
    }

    #[test]
    #[should_panic(expected = "tree must be fitted")]
    fn predict_before_fit_panics() {
        DecisionTreeRegressor::new().predict(&[]);
    }

    #[test]
    #[should_panic(expected = "wrong dimension")]
    fn predict_wrong_dimension_panics() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        tree.predict(&[1.0]);
    }

    #[test]
    fn decision_path_reaches_a_leaf_consistently() {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&step_dataset()).unwrap();
        let path = tree.decision_path(&[2.0, 0.0]);
        assert!(!path.is_empty());
        // Replaying the path by hand must give the same routing.
        for step in &path {
            assert!(step.feature < 2);
            assert!(step.threshold.is_finite());
        }
    }

    #[test]
    fn dump_mentions_feature_names() {
        let mut tree = DecisionTreeRegressor::new();
        let data = step_dataset();
        tree.fit(&data).unwrap();
        let text = tree.dump(data.feature_names());
        assert!(text.contains("if x <= "), "dump: {text}");
        assert!(text.contains("leaf: predict"));
    }

    #[test]
    fn dot_export_is_well_formed() {
        let mut tree = DecisionTreeRegressor::new();
        let data = step_dataset();
        tree.fit(&data).unwrap();
        let dot = tree.dump_dot(data.feature_names());
        assert!(dot.starts_with("digraph tree {"));
        assert!(dot.ends_with("}\n"));
        assert!(dot.contains("x <= "));
        assert!(dot.contains("shape=box"));
        // Every edge has a matching declared node (n nodes, n-1 edges).
        let is_node_decl = |l: &&str| {
            let t = l.trim_start();
            t.starts_with('n')
                && t.as_bytes().get(1).is_some_and(u8::is_ascii_digit)
                && !t.contains("->")
        };
        let nodes = dot.lines().filter(is_node_decl).count();
        let edges = dot.lines().filter(|l| l.contains("->")).count();
        assert_eq!(edges + 1, nodes, "a tree has n-1 edges");
    }

    #[test]
    fn duplicate_feature_values_do_not_split() {
        // All feature values equal -> no valid threshold -> leaf.
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(vec![1.0], 0.0).unwrap();
        d.push(vec![1.0], 10.0).unwrap();
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(&d).unwrap();
        assert_eq!(tree.n_leaves(), 1);
        assert_eq!(tree.predict(&[1.0]), 5.0);
    }

    #[test]
    fn stable_partition_preserves_relative_order() {
        let mut v = [5, 2, 8, 1, 9, 3];
        let mid = itertools_partition(&mut v, |&x| x < 5);
        assert_eq!(mid, 3);
        assert_eq!(&v[..mid], &[2, 1, 3]);
        assert_eq!(&v[mid..], &[5, 8, 9]);
    }

    proptest! {
        #[test]
        fn predictions_stay_within_target_hull(
            targets in proptest::collection::vec(-100.0f64..100.0, 2..40),
            query in -200.0f64..200.0,
        ) {
            let mut d = Dataset::new(vec!["x".into()]).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                d.push(vec![i as f64], t).unwrap();
            }
            let mut tree = DecisionTreeRegressor::new();
            tree.fit(&d).unwrap();
            let y = tree.predict(&[query]);
            let lo = targets.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = targets.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(y >= lo - 1e-9 && y <= hi + 1e-9);
        }

        #[test]
        fn deep_tree_interpolates_training_points(
            targets in proptest::collection::vec(-50.0f64..50.0, 2..24),
        ) {
            let mut d = Dataset::new(vec!["x".into()]).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                d.push(vec![i as f64], t).unwrap();
            }
            let mut tree = DecisionTreeRegressor::new().with_max_depth(32);
            tree.fit(&d).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                prop_assert!((tree.predict(&[i as f64]) - t).abs() < 1e-9);
            }
        }

        #[test]
        fn importances_are_a_distribution(
            seed_targets in proptest::collection::vec(0.0f64..100.0, 8..32),
        ) {
            let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
            for (i, &t) in seed_targets.iter().enumerate() {
                d.push(vec![i as f64, (i / 2) as f64], t).unwrap();
            }
            let mut tree = DecisionTreeRegressor::new();
            tree.fit(&d).unwrap();
            let imp = tree.feature_importances();
            let sum: f64 = imp.iter().sum();
            prop_assert!(imp.iter().all(|&v| v >= 0.0));
            prop_assert!(sum == 0.0 || (sum - 1.0).abs() < 1e-9);
        }

        #[test]
        fn text_round_trip_is_exact(
            targets in proptest::collection::vec(-50.0f64..50.0, 2..24),
        ) {
            let mut d = Dataset::new(vec!["x".into(), "x2".into()]).unwrap();
            for (i, &t) in targets.iter().enumerate() {
                d.push(vec![i as f64, (i * i) as f64], t).unwrap();
            }
            let mut tree = DecisionTreeRegressor::new().with_max_depth(6);
            tree.fit(&d).unwrap();
            let restored = DecisionTreeRegressor::from_text(&tree.to_text()).unwrap();
            prop_assert_eq!(&restored, &tree);
            for i in 0..targets.len() {
                let row = [i as f64, (i * i) as f64];
                prop_assert!(
                    restored.predict(&row).to_bits() == tree.predict(&row).to_bits(),
                    "prediction drifted after round trip"
                );
            }
        }
    }

    #[test]
    fn unfitted_tree_round_trips() {
        let tree = DecisionTreeRegressor::new().with_max_depth(4);
        let restored = DecisionTreeRegressor::from_text(&tree.to_text()).unwrap();
        assert_eq!(restored, tree);
        assert!(restored.root().is_none());
    }

    #[test]
    fn malformed_tree_text_is_rejected() {
        // Wrong header keyword.
        assert!(DecisionTreeRegressor::from_text("forest x=1").is_err());
        // Claimed node count exceeds supplied lines.
        let truncated = "tree max_depth=4 min_samples_split=2 \
                         min_impurity_decrease=0.0 n_features=1 nodes=3\n\
                         leaf prediction=1.0 n_samples=2\n";
        assert!(DecisionTreeRegressor::from_text(truncated).is_err());
        // Split referencing an out-of-range feature index.
        let bad_feature = "tree max_depth=4 min_samples_split=2 \
                           min_impurity_decrease=0.0 n_features=1 nodes=3\n\
                           split feature=7 threshold=0.5 prediction=1.0 \
                           n_samples=4 impurity_decrease=0.1\n\
                           leaf prediction=0.5 n_samples=2\n\
                           leaf prediction=1.5 n_samples=2\n";
        assert!(DecisionTreeRegressor::from_text(bad_feature).is_err());
        // Trailing garbage after a well-formed block.
        let trailing = "tree max_depth=4 min_samples_split=2 \
                        min_impurity_decrease=0.0 n_features=1 nodes=1\n\
                        leaf prediction=1.0 n_samples=2\n\
                        extra\n";
        assert!(DecisionTreeRegressor::from_text(trailing).is_err());
    }

    #[test]
    fn codec_errors_carry_line_numbers() {
        let bad = "tree max_depth=4 min_samples_split=2 \
                   min_impurity_decrease=0.0 n_features=1 nodes=1\n\
                   leaf prediction=abc n_samples=2\n";
        let err = DecisionTreeRegressor::from_text(bad).unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("not a float"), "{err}");
    }
}
