//! Datasets of feature vectors with regression targets.

use crate::error::DatasetError;
use serde::{Deserialize, Serialize};

/// One training/test sample: a feature vector, a target, and an optional
/// group label (the paper groups data points by benchmark for its
/// leave-one-benchmark-out cross-validation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    features: Vec<f64>,
    target: f64,
    group: Option<String>,
}

impl Sample {
    /// The feature vector.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// The regression target.
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The group label, if any.
    pub fn group(&self) -> Option<&str> {
        self.group.as_deref()
    }
}

/// A named-feature dataset.
///
/// # Example
///
/// ```
/// use bagpred_ml::Dataset;
///
/// let mut data = Dataset::new(vec!["a".into(), "b".into()])?;
/// data.push(vec![1.0, 2.0], 3.0)?;
/// data.push_grouped(vec![4.0, 5.0], 9.0, "SIFT")?;
/// assert_eq!(data.len(), 2);
/// assert_eq!(data.feature_index("b"), Some(1));
/// # Ok::<(), bagpred_ml::DatasetError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset over named features.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] when no names are given or names repeat.
    pub fn new(feature_names: Vec<String>) -> Result<Self, DatasetError> {
        if feature_names.is_empty() {
            return Err(DatasetError::NoFeatures);
        }
        for (i, name) in feature_names.iter().enumerate() {
            if feature_names[..i].contains(name) {
                return Err(DatasetError::DuplicateFeature { name: name.clone() });
            }
        }
        Ok(Self {
            feature_names,
            samples: Vec::new(),
        })
    }

    /// Adds an ungrouped sample.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on dimension mismatch or non-finite values.
    pub fn push(&mut self, features: Vec<f64>, target: f64) -> Result<(), DatasetError> {
        self.push_sample(features, target, None)
    }

    /// Adds a sample labelled with a group (e.g. the benchmark it came from).
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError`] on dimension mismatch or non-finite values.
    pub fn push_grouped(
        &mut self,
        features: Vec<f64>,
        target: f64,
        group: impl Into<String>,
    ) -> Result<(), DatasetError> {
        self.push_sample(features, target, Some(group.into()))
    }

    fn push_sample(
        &mut self,
        features: Vec<f64>,
        target: f64,
        group: Option<String>,
    ) -> Result<(), DatasetError> {
        if features.len() != self.feature_names.len() {
            return Err(DatasetError::DimensionMismatch {
                expected: self.feature_names.len(),
                actual: features.len(),
            });
        }
        if !target.is_finite() || features.iter().any(|v| !v.is_finite()) {
            return Err(DatasetError::NonFiniteValue);
        }
        self.samples.push(Sample {
            features,
            target,
            group,
        });
        Ok(())
    }

    /// Feature names, in feature-vector order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Index of a feature by name.
    pub fn feature_index(&self, name: &str) -> Option<usize> {
        self.feature_names.iter().position(|n| n == name)
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All targets, in sample order.
    pub fn targets(&self) -> Vec<f64> {
        self.samples.iter().map(|s| s.target).collect()
    }

    /// Distinct group labels, in first-appearance order.
    pub fn groups(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for s in &self.samples {
            if let Some(g) = &s.group {
                if !seen.contains(g) {
                    seen.push(g.clone());
                }
            }
        }
        seen
    }

    /// Splits into (samples **not** in `group`, samples in `group`) — the
    /// paper's leave-one-benchmark-out partition.
    pub fn split_by_group(&self, group: &str) -> (Dataset, Dataset) {
        let mut train = Dataset {
            feature_names: self.feature_names.clone(),
            samples: Vec::new(),
        };
        let mut test = train.clone();
        for s in &self.samples {
            if s.group.as_deref() == Some(group) {
                test.samples.push(s.clone());
            } else {
                train.samples.push(s.clone());
            }
        }
        (train, test)
    }

    /// Builds a new dataset from a subset of sample indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            feature_names: self.feature_names.clone(),
            samples: indices.iter().map(|&i| self.samples[i].clone()).collect(),
        }
    }

    /// Returns a copy restricted to the named feature columns, in the given
    /// order — how the predictor evaluates feature-subset schemes.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::DuplicateFeature`] for repeated names and
    /// [`DatasetError::NoFeatures`] when `names` is empty or contains an
    /// unknown feature.
    pub fn project(&self, names: &[&str]) -> Result<Dataset, DatasetError> {
        let mut indices = Vec::with_capacity(names.len());
        for name in names {
            match self.feature_index(name) {
                Some(i) => indices.push(i),
                None => return Err(DatasetError::NoFeatures),
            }
        }
        let mut projected = Dataset::new(names.iter().map(|s| s.to_string()).collect())?;
        for s in &self.samples {
            let features = indices.iter().map(|&i| s.features[i]).collect();
            projected.push_sample(features, s.target, s.group.clone())?;
        }
        Ok(projected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let mut d = Dataset::new(vec!["a".into(), "b".into()]).unwrap();
        d.push_grouped(vec![1.0, 10.0], 100.0, "x").unwrap();
        d.push_grouped(vec![2.0, 20.0], 200.0, "y").unwrap();
        d.push_grouped(vec![3.0, 30.0], 300.0, "x").unwrap();
        d
    }

    #[test]
    fn rejects_empty_feature_list() {
        assert_eq!(Dataset::new(vec![]).unwrap_err(), DatasetError::NoFeatures);
    }

    #[test]
    fn rejects_duplicate_features() {
        let err = Dataset::new(vec!["a".into(), "a".into()]).unwrap_err();
        assert!(matches!(err, DatasetError::DuplicateFeature { .. }));
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mut d = Dataset::new(vec!["a".into()]).unwrap();
        let err = d.push(vec![1.0, 2.0], 0.0).unwrap_err();
        assert_eq!(
            err,
            DatasetError::DimensionMismatch {
                expected: 1,
                actual: 2
            }
        );
    }

    #[test]
    fn rejects_non_finite() {
        let mut d = Dataset::new(vec!["a".into()]).unwrap();
        assert_eq!(
            d.push(vec![f64::NAN], 0.0).unwrap_err(),
            DatasetError::NonFiniteValue
        );
        assert_eq!(
            d.push(vec![1.0], f64::INFINITY).unwrap_err(),
            DatasetError::NonFiniteValue
        );
    }

    #[test]
    fn groups_are_deduplicated_in_order() {
        assert_eq!(toy().groups(), vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn split_by_group_partitions() {
        let (train, test) = toy().split_by_group("x");
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 2);
        assert!(test.samples().iter().all(|s| s.group() == Some("x")));
    }

    #[test]
    fn subset_selects_indices() {
        let sub = toy().subset(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.samples()[0].target(), 300.0);
        assert_eq!(sub.samples()[1].target(), 100.0);
    }

    #[test]
    fn project_reorders_columns() {
        let p = toy().project(&["b", "a"]).unwrap();
        assert_eq!(p.feature_names(), &["b".to_string(), "a".to_string()]);
        assert_eq!(p.samples()[0].features(), &[10.0, 1.0]);
        assert_eq!(p.samples()[0].target(), 100.0);
    }

    #[test]
    fn project_rejects_unknown() {
        assert!(toy().project(&["z"]).is_err());
    }
}
