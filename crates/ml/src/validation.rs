//! Dataset splitting and cross-validation.

use crate::dataset::Dataset;
use bagpred_trace::SplitMix64;

/// Splits a dataset into (train, test) with the given test fraction, using a
/// seeded shuffle — the paper's 80/20 protocol (§V-D2).
///
/// The test set receives `ceil(test_fraction * len)` samples (at least one
/// sample stays in each side when `0 < test_fraction < 1` and the dataset
/// has two or more samples).
///
/// # Panics
///
/// Panics unless `0.0 < test_fraction < 1.0`.
///
/// # Example
///
/// ```
/// use bagpred_ml::{validation, Dataset};
///
/// let mut data = Dataset::new(vec!["x".into()])?;
/// for i in 0..10 {
///     data.push(vec![i as f64], i as f64)?;
/// }
/// let (train, test) = validation::train_test_split(&data, 0.2, 42);
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// # Ok::<(), bagpred_ml::DatasetError>(())
/// ```
pub fn train_test_split(dataset: &Dataset, test_fraction: f64, seed: u64) -> (Dataset, Dataset) {
    assert!(
        test_fraction > 0.0 && test_fraction < 1.0,
        "test fraction must be in (0, 1)"
    );
    let n = dataset.len();
    let mut indices: Vec<usize> = (0..n).collect();
    shuffle(&mut indices, seed);
    let n_test = ((n as f64 * test_fraction).ceil() as usize).clamp(
        usize::from(n >= 2),
        n.saturating_sub(usize::from(n >= 2)).max(1),
    );
    let (test_idx, train_idx) = indices.split_at(n_test);
    (dataset.subset(train_idx), dataset.subset(test_idx))
}

/// Yields `k` cross-validation folds as (train, validation) pairs over a
/// seeded shuffle.
///
/// # Panics
///
/// Panics if `k < 2` or `k` exceeds the number of samples.
pub fn k_fold(dataset: &Dataset, k: usize, seed: u64) -> Vec<(Dataset, Dataset)> {
    assert!(k >= 2, "need at least two folds");
    assert!(k <= dataset.len(), "more folds than samples");
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    shuffle(&mut indices, seed);

    let mut folds = Vec::with_capacity(k);
    for fold in 0..k {
        let val_idx: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k == fold)
            .map(|(_, &i)| i)
            .collect();
        let train_idx: Vec<usize> = indices
            .iter()
            .enumerate()
            .filter(|(pos, _)| pos % k != fold)
            .map(|(_, &i)| i)
            .collect();
        folds.push((dataset.subset(&train_idx), dataset.subset(&val_idx)));
    }
    folds
}

/// Leave-one-group-out cross-validation: one (train, test, group) triple per
/// distinct group, where the test set holds *all* samples of that group.
///
/// This is the paper's Fig. 4 protocol: "to perform LOOCV for a particular
/// benchmark, we leave all the data points corresponding to that benchmark
/// for testing and use the rest for training."
pub fn leave_one_group_out(dataset: &Dataset) -> Vec<(Dataset, Dataset, String)> {
    dataset
        .groups()
        .into_iter()
        .map(|g| {
            let (train, test) = dataset.split_by_group(&g);
            (train, test, g)
        })
        .collect()
}

/// Fisher–Yates shuffle with the workspace's deterministic RNG.
fn shuffle(indices: &mut [usize], seed: u64) {
    let mut rng = SplitMix64::new(seed ^ 0x5eed_5b11);
    for i in (1..indices.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        indices.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grouped_dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        for i in 0..12 {
            let group = ["a", "b", "c"][i % 3];
            d.push_grouped(vec![i as f64], i as f64, group).unwrap();
        }
        d
    }

    #[test]
    fn split_is_deterministic_per_seed() {
        let d = grouped_dataset();
        let (t1, v1) = train_test_split(&d, 0.25, 7);
        let (t2, v2) = train_test_split(&d, 0.25, 7);
        assert_eq!(t1, t2);
        assert_eq!(v1, v2);
        let (_, v3) = train_test_split(&d, 0.25, 8);
        assert_ne!(v1, v3, "different seeds should shuffle differently");
    }

    #[test]
    fn split_partitions_all_samples() {
        let d = grouped_dataset();
        let (train, test) = train_test_split(&d, 0.3, 1);
        assert_eq!(train.len() + test.len(), d.len());
    }

    #[test]
    #[should_panic(expected = "test fraction")]
    fn bad_fraction_panics() {
        train_test_split(&grouped_dataset(), 1.5, 0);
    }

    #[test]
    fn k_fold_covers_every_sample_once() {
        let d = grouped_dataset();
        let folds = k_fold(&d, 4, 3);
        assert_eq!(folds.len(), 4);
        let total_val: usize = folds.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total_val, d.len());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), d.len());
        }
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        k_fold(&grouped_dataset(), 13, 0);
    }

    #[test]
    fn logo_holds_out_whole_groups() {
        let d = grouped_dataset();
        let rounds = leave_one_group_out(&d);
        assert_eq!(rounds.len(), 3);
        for (train, test, group) in &rounds {
            assert_eq!(test.len(), 4);
            assert_eq!(train.len(), 8);
            // No leakage: the held-out group never appears in training.
            assert!(train.samples().iter().all(|s| s.group() != Some(group)));
            assert!(test.samples().iter().all(|s| s.group() == Some(group)));
        }
    }

    #[test]
    fn logo_on_ungrouped_data_is_empty() {
        let mut d = Dataset::new(vec!["x".into()]).unwrap();
        d.push(vec![1.0], 1.0).unwrap();
        assert!(leave_one_group_out(&d).is_empty());
    }

    proptest! {
        #[test]
        fn split_never_leaks(seed in any::<u64>(), frac in 0.05f64..0.95) {
            let d = grouped_dataset();
            let (train, test) = train_test_split(&d, frac, seed);
            // Union of targets matches the original multiset.
            let mut all: Vec<f64> = train.targets();
            all.extend(test.targets());
            all.sort_by(f64::total_cmp);
            let mut want = d.targets();
            want.sort_by(f64::total_cmp);
            prop_assert_eq!(all, want);
            prop_assert!(!train.is_empty());
            prop_assert!(!test.is_empty());
        }
    }
}
