//! Decision-path analysis over fitted trees (the paper's §VI-C).
//!
//! The paper's unique selling point for decision trees is explainability: it
//! analyzes, for every test point, *which* features gate the prediction and
//! *how many times* each appears along the decision path (Figs. 10-12).
//! This module computes exactly those quantities.

use crate::dataset::Dataset;
use crate::tree::DecisionTreeRegressor;

/// Per-test-point feature usage along decision paths.
#[derive(Debug, Clone, PartialEq)]
pub struct PathAnalysis {
    feature_names: Vec<String>,
    /// `usage[point][feature]` = times the feature gates that point's path.
    usage: Vec<Vec<usize>>,
}

impl PathAnalysis {
    /// Analyzes the decision paths of every sample in `test` through `tree`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is unfitted or was fitted on a different feature
    /// dimension than `test`.
    pub fn analyze(tree: &DecisionTreeRegressor, test: &Dataset) -> Self {
        let usage = test
            .samples()
            .iter()
            .map(|s| {
                let mut counts = vec![0usize; test.n_features()];
                for step in tree.decision_path(s.features()) {
                    counts[step.feature] += 1;
                }
                counts
            })
            .collect();
        Self {
            feature_names: test.feature_names().to_vec(),
            usage,
        }
    }

    /// Merges analyses over the same feature space (used to pool the test
    /// points of every LOOCV round, as the paper's Fig. 11 does).
    ///
    /// # Panics
    ///
    /// Panics if the feature spaces differ.
    pub fn merge(mut self, other: PathAnalysis) -> PathAnalysis {
        assert_eq!(
            self.feature_names, other.feature_names,
            "analyses cover different feature spaces"
        );
        self.usage.extend(other.usage);
        self
    }

    /// Feature names, in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Number of test points analyzed.
    pub fn n_points(&self) -> usize {
        self.usage.len()
    }

    /// The raw usage matrix: `[point][feature]` → count (Fig. 12's heatmap).
    pub fn usage_matrix(&self) -> &[Vec<usize>] {
        &self.usage
    }

    /// Percentage of test points whose path uses each feature at least once
    /// (Fig. 10).
    pub fn presence_percent(&self) -> Vec<f64> {
        let n = self.usage.len().max(1) as f64;
        (0..self.feature_names.len())
            .map(|f| {
                let present = self.usage.iter().filter(|row| row[f] > 0).count();
                100.0 * present as f64 / n
            })
            .collect()
    }

    /// Mean number of times each feature appears per decision path (the
    /// radial magnitude of Fig. 11).
    pub fn mean_usage(&self) -> Vec<f64> {
        let n = self.usage.len().max(1) as f64;
        (0..self.feature_names.len())
            .map(|f| self.usage.iter().map(|row| row[f] as f64).sum::<f64>() / n)
            .collect()
    }

    /// Maximum times any single path uses each feature.
    pub fn max_usage(&self) -> Vec<usize> {
        (0..self.feature_names.len())
            .map(|f| self.usage.iter().map(|row| row[f]).max().unwrap_or(0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Regressor;

    /// Dataset where `x` fully determines the target and `junk` is constant.
    fn dataset() -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "junk".into()]).unwrap();
        for i in 0..16 {
            d.push(vec![i as f64, 1.0], (i / 4) as f64 * 10.0).unwrap();
        }
        d
    }

    fn fitted_tree(d: &Dataset) -> DecisionTreeRegressor {
        let mut tree = DecisionTreeRegressor::new();
        tree.fit(d).unwrap();
        tree
    }

    #[test]
    fn informative_feature_is_present_everywhere() {
        let d = dataset();
        let analysis = PathAnalysis::analyze(&fitted_tree(&d), &d);
        let presence = analysis.presence_percent();
        assert_eq!(presence[0], 100.0, "x gates every path");
        assert_eq!(presence[1], 0.0, "junk gates nothing");
    }

    #[test]
    fn mean_usage_reflects_path_depth() {
        let d = dataset();
        let analysis = PathAnalysis::analyze(&fitted_tree(&d), &d);
        let mean = analysis.mean_usage();
        assert!(mean[0] >= 1.0, "x used at least once per path");
        assert_eq!(mean[1], 0.0);
    }

    #[test]
    fn usage_matrix_has_one_row_per_point() {
        let d = dataset();
        let analysis = PathAnalysis::analyze(&fitted_tree(&d), &d);
        assert_eq!(analysis.n_points(), d.len());
        assert_eq!(analysis.usage_matrix()[0].len(), 2);
    }

    #[test]
    fn merge_concatenates_points() {
        let d = dataset();
        let tree = fitted_tree(&d);
        let a = PathAnalysis::analyze(&tree, &d);
        let b = PathAnalysis::analyze(&tree, &d);
        let merged = a.merge(b);
        assert_eq!(merged.n_points(), 2 * d.len());
    }

    #[test]
    #[should_panic(expected = "different feature spaces")]
    fn merge_rejects_mismatched_features() {
        let d = dataset();
        let tree = fitted_tree(&d);
        let a = PathAnalysis::analyze(&tree, &d);

        let mut other = Dataset::new(vec!["p".into(), "q".into()]).unwrap();
        other.push(vec![0.0, 0.0], 0.0).unwrap();
        let tree2 = fitted_tree(&{
            let mut t = Dataset::new(vec!["p".into(), "q".into()]).unwrap();
            t.push(vec![0.0, 0.0], 0.0).unwrap();
            t.push(vec![1.0, 1.0], 1.0).unwrap();
            t
        });
        let b = PathAnalysis::analyze(&tree2, &other);
        let _ = a.merge(b);
    }

    #[test]
    fn max_usage_bounds_mean_usage() {
        let d = dataset();
        let analysis = PathAnalysis::analyze(&fitted_tree(&d), &d);
        for (mean, max) in analysis.mean_usage().iter().zip(analysis.max_usage()) {
            assert!(*mean <= max as f64 + 1e-12);
        }
    }
}
