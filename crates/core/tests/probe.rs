use bagpred_core::{Corpus, FeatureSet, Predictor};

#[test]
#[ignore]
fn loocv_probe() {
    let records = Corpus::paper().measure();
    for scheme in [FeatureSet::full(), FeatureSet::insmix()] {
        let mut p = Predictor::new(scheme.clone());
        let report = p.loocv_by_benchmark(&records);
        eprintln!(
            "=== scheme {} mean={:.2}%",
            scheme.name(),
            report.mean_error_percent()
        );
        for (b, e, n) in report.per_benchmark() {
            eprintln!("  {:8} {:8.2}% ({n} pts)", b.name(), e);
        }
    }
    // also 80/20
    let mut p = Predictor::new(FeatureSet::full());
    eprintln!("80/20 full: {:.2}%", p.train_test_error(&records, 42));
}
