//! Decision-path analysis at the feature level (the paper's §VI-C).

use crate::feature::{Feature, FeatureSet};
use crate::measure::Measurement;
use crate::predictor::Predictor;
use bagpred_ml::introspect::PathAnalysis;
use bagpred_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Aggregated usage of one base feature across test-point decision paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureUsage {
    /// The base feature.
    pub feature: Feature,
    /// % of test points whose decision path uses the feature (Fig. 10).
    pub presence_percent: f64,
    /// Mean uses per decision path (Fig. 11's radial magnitude).
    pub mean_uses: f64,
    /// Maximum uses in any single path.
    pub max_uses: usize,
}

/// Decision-path analysis over a set of test points, pooled across the
/// LOOCV rounds as the paper's Figs. 10-12 are.
///
/// Columns of the underlying feature vector are folded back to their base
/// feature: the `GPU_a` and `GPU_b` slots both count as uses of `GPU`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionPathReport {
    usage: Vec<FeatureUsage>,
    /// Per-test-point rows: `(label, counts per base feature)` (Fig. 12).
    heatmap: Vec<(String, Vec<usize>)>,
    features: Vec<Feature>,
}

impl DecisionPathReport {
    /// Runs the paper's decision-path experiment: for every LOOCV round
    /// (leave one benchmark out), train the tree predictor and record which
    /// features gate each held-out test point, pooling all rounds.
    ///
    /// # Panics
    ///
    /// Panics if the predictor's backing model is not a decision tree or a
    /// LOOCV round has no training data.
    pub fn collect(predictor: &mut Predictor, records: &[Measurement]) -> Self {
        let scheme = predictor.scheme().clone();
        let features: Vec<Feature> = scheme.features().to_vec();
        let columns = scheme.column_names(2);

        let mut heatmap: Vec<(String, Vec<usize>)> = Vec::new();
        for bench in Benchmark::ALL {
            let (test, train): (Vec<_>, Vec<_>) = records
                .iter()
                .cloned()
                .partition(|m| m.bag().involves(bench));
            if test.is_empty() {
                continue;
            }
            predictor.train(&train);
            let tree = predictor
                .tree()
                .expect("decision-path analysis requires a tree model");
            let test_data = predictor.materialize(&test);
            let analysis = PathAnalysis::analyze(tree, &test_data);

            for (m, row) in test.iter().zip(analysis.usage_matrix()) {
                // Fold slot columns back onto base features.
                let mut counts = vec![0usize; features.len()];
                for (col_idx, col_name) in columns.iter().enumerate() {
                    let base = FeatureSet::base_feature_of_column(col_name)
                        .expect("columns come from known features");
                    let fi = features
                        .iter()
                        .position(|f| *f == base)
                        .expect("base feature is in the scheme");
                    counts[fi] += row[col_idx];
                }
                heatmap.push((format!("{bench}:{}", m.bag().label()), counts));
            }
        }

        let n = heatmap.len().max(1) as f64;
        let usage = features
            .iter()
            .enumerate()
            .map(|(fi, &feature)| {
                let present = heatmap.iter().filter(|(_, row)| row[fi] > 0).count();
                let total: usize = heatmap.iter().map(|(_, row)| row[fi]).sum();
                let max = heatmap.iter().map(|(_, row)| row[fi]).max().unwrap_or(0);
                FeatureUsage {
                    feature,
                    presence_percent: 100.0 * present as f64 / n,
                    mean_uses: total as f64 / n,
                    max_uses: max,
                }
            })
            .collect();

        Self {
            usage,
            heatmap,
            features,
        }
    }

    /// Per-feature aggregated usage (Figs. 10 and 11).
    pub fn usage(&self) -> &[FeatureUsage] {
        &self.usage
    }

    /// Usage of one feature, if it is part of the analyzed scheme.
    pub fn usage_of(&self, feature: Feature) -> Option<&FeatureUsage> {
        self.usage.iter().find(|u| u.feature == feature)
    }

    /// The per-test-point heat map rows (Fig. 12): label + per-feature
    /// counts in [`features`](Self::features) order.
    pub fn heatmap(&self) -> &[(String, Vec<usize>)] {
        &self.heatmap
    }

    /// The base features analyzed, in column order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::corpus::Corpus;
    use crate::measure::Platforms;
    use bagpred_workloads::Workload;
    use std::sync::OnceLock;

    fn records() -> &'static [Measurement] {
        static RECORDS: OnceLock<Vec<Measurement>> = OnceLock::new();
        RECORDS.get_or_init(|| {
            let mut bags = Vec::new();
            for bench in Benchmark::ALL {
                for batch in [2usize, 4, 8] {
                    bags.push(Bag::homogeneous(Workload::new(bench, batch)));
                }
            }
            for (i, a) in Benchmark::ALL.iter().enumerate() {
                for b in &Benchmark::ALL[i + 1..] {
                    bags.push(Bag::pair(Workload::new(*a, 4), Workload::new(*b, 4)));
                }
            }
            Corpus::custom(bags).measure_on(&Platforms::paper())
        })
    }

    #[test]
    fn report_covers_all_test_points() {
        let mut p = Predictor::new(crate::FeatureSet::full());
        let report = DecisionPathReport::collect(&mut p, records());
        // Every record involves 1 or 2 benchmarks, so it appears once per
        // involved benchmark across the pooled rounds.
        let expected: usize = records().iter().map(|m| m.bag().benchmarks().len()).sum();
        assert_eq!(report.heatmap().len(), expected);
    }

    #[test]
    fn gpu_time_dominates_decision_paths() {
        // The paper's Fig. 10: GPU time appears in ~100% of paths, more than
        // any instruction-mix feature.
        let mut p = Predictor::new(crate::FeatureSet::full());
        let report = DecisionPathReport::collect(&mut p, records());
        let gpu = report.usage_of(Feature::GpuTime).unwrap();
        assert!(
            gpu.presence_percent > 80.0,
            "GPU presence {}%",
            gpu.presence_percent
        );
        for mix in [Feature::StringOp, Feature::Shift] {
            let u = report.usage_of(mix).unwrap();
            assert!(
                gpu.presence_percent >= u.presence_percent,
                "GPU must dominate {mix}"
            );
        }
    }

    #[test]
    fn usage_is_internally_consistent() {
        let mut p = Predictor::new(crate::FeatureSet::full());
        let report = DecisionPathReport::collect(&mut p, records());
        for u in report.usage() {
            assert!(u.presence_percent >= 0.0 && u.presence_percent <= 100.0);
            assert!(u.mean_uses <= u.max_uses as f64 + 1e-12);
            if u.presence_percent == 0.0 {
                assert_eq!(u.max_uses, 0);
            }
        }
    }

    #[test]
    fn scheme_restricts_analyzed_features() {
        let mut p = Predictor::new(crate::FeatureSet::only(Feature::GpuTime));
        let report = DecisionPathReport::collect(&mut p, records());
        assert_eq!(report.features(), &[Feature::GpuTime]);
        assert!(report.usage_of(Feature::CpuTime).is_none());
    }
}
