//! The paper's 91-run training corpus (§V-B).

use crate::bag::Bag;
use crate::measure::{Measurement, Platforms};
use bagpred_trace::SplitMix64;
use bagpred_workloads::{Benchmark, Workload, BATCH_SIZES, STANDARD_BATCH};
use serde::{Deserialize, Serialize};

/// A collection of bags to measure — the predictor's experimental design.
///
/// [`Corpus::paper`] reproduces the paper's recipe: benchmarks are limited,
/// so data points are multiplied by (a) running each benchmark at five batch
/// sizes (20, 40, 80, 160, 320 images) and (b) permuting benchmark
/// combinations into heterogeneous bags, for 91 runs in total.
///
/// # Example
///
/// ```
/// use bagpred_core::Corpus;
///
/// let corpus = Corpus::paper();
/// assert_eq!(corpus.bags().len(), 91);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    bags: Vec<Bag>,
}

impl Corpus {
    /// The paper's 91-bag corpus:
    ///
    /// * 45 homogeneous bags — every benchmark at every batch size;
    /// * 36 heterogeneous bags — every unordered benchmark pair at the
    ///   standard batch of 20 images;
    /// * 10 heterogeneous bags with mixed batch sizes, drawn
    ///   deterministically.
    pub fn paper() -> Self {
        let mut bags = Vec::with_capacity(91);

        for bench in Benchmark::ALL {
            for batch in BATCH_SIZES {
                bags.push(Bag::homogeneous(Workload::new(bench, batch)));
            }
        }

        for (i, a) in Benchmark::ALL.iter().enumerate() {
            for b in &Benchmark::ALL[i + 1..] {
                bags.push(Bag::pair(
                    Workload::new(*a, STANDARD_BATCH),
                    Workload::new(*b, STANDARD_BATCH),
                ));
            }
        }

        // Ten mixed-batch heterogeneous bags, deterministic.
        let mut rng = SplitMix64::new(0x091_c04b5);
        while bags.len() < 91 {
            let a = Benchmark::ALL[rng.next_below(9) as usize];
            let b = Benchmark::ALL[rng.next_below(9) as usize];
            if a == b {
                continue;
            }
            let ba = BATCH_SIZES[rng.next_below(5) as usize];
            let bb = BATCH_SIZES[rng.next_below(5) as usize];
            if ba == STANDARD_BATCH && bb == STANDARD_BATCH {
                continue; // already covered by the 36 standard pairs
            }
            let bag = Bag::pair(Workload::new(a, ba), Workload::new(b, bb));
            if !bags.contains(&bag) {
                bags.push(bag);
            }
        }

        Self { bags }
    }

    /// A corpus over explicit bags (for custom experiments).
    ///
    /// # Panics
    ///
    /// Panics if `bags` is empty.
    pub fn custom(bags: Vec<Bag>) -> Self {
        assert!(!bags.is_empty(), "a corpus needs at least one bag");
        Self { bags }
    }

    /// The bags, in corpus order.
    pub fn bags(&self) -> &[Bag] {
        &self.bags
    }

    /// Measures every bag on the paper's platforms.
    pub fn measure(&self) -> Vec<Measurement> {
        self.measure_on(&Platforms::paper())
    }

    /// Measures every bag on custom platforms, fanning the per-bag
    /// collection out over [`crate::parallel::configured_threads`] scoped
    /// workers. Collection is a pure function of the bag, and results come
    /// back in corpus order, so the output is bit-identical to the serial
    /// path (set `BAGPRED_THREADS=1` to force it).
    pub fn measure_on(&self, platforms: &Platforms) -> Vec<Measurement> {
        self.measure_on_threads(platforms, crate::parallel::configured_threads())
    }

    /// [`measure_on`](Self::measure_on) with an explicit worker count.
    pub fn measure_on_threads(&self, platforms: &Platforms, threads: usize) -> Vec<Measurement> {
        crate::parallel::parallel_map(&self.bags, threads, |&bag| {
            Measurement::collect(bag, platforms)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_corpus_has_91_unique_bags() {
        let corpus = Corpus::paper();
        assert_eq!(corpus.bags().len(), 91);
        let mut bags = corpus.bags().to_vec();
        bags.sort_by_key(|b| b.label());
        bags.dedup();
        assert_eq!(bags.len(), 91, "bags must be unique");
    }

    #[test]
    fn paper_corpus_composition() {
        let corpus = Corpus::paper();
        let homogeneous = corpus.bags().iter().filter(|b| b.is_homogeneous()).count();
        assert_eq!(homogeneous, 45);
        let standard_hetero = corpus
            .bags()
            .iter()
            .filter(|b| {
                !b.is_homogeneous() && b.members().iter().all(|w| w.batch_size() == STANDARD_BATCH)
            })
            .count();
        assert_eq!(standard_hetero, 36);
    }

    #[test]
    fn every_benchmark_is_covered() {
        let corpus = Corpus::paper();
        for bench in Benchmark::ALL {
            let involved = corpus.bags().iter().filter(|b| b.involves(bench)).count();
            assert!(involved >= 13, "{bench} appears in only {involved} bags");
        }
    }

    #[test]
    fn corpus_is_deterministic() {
        assert_eq!(Corpus::paper(), Corpus::paper());
    }

    #[test]
    fn parallel_measurement_is_bit_identical_to_serial() {
        let corpus = Corpus::paper();
        let platforms = Platforms::paper();
        let serial = corpus.measure_on_threads(&platforms, 1);
        for threads in [2, 4] {
            assert_eq!(corpus.measure_on_threads(&platforms, threads), serial);
        }
    }

    #[test]
    #[should_panic(expected = "at least one bag")]
    fn empty_custom_corpus_rejected() {
        Corpus::custom(vec![]);
    }
}
