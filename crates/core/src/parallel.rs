//! Deterministic scoped-thread parallelism for the training pipeline.
//!
//! Corpus measurement and leave-one-benchmark-out fold training are
//! embarrassingly parallel: every item is a pure function of its input.
//! [`parallel_map`] fans such work out over [`std::thread::scope`] workers
//! while keeping the output **in input order**, so the parallel pipeline is
//! bit-identical to the serial one — the property the predictor equivalence
//! tests assert.
//!
//! The worker count comes from [`configured_threads`]: the
//! `BAGPRED_THREADS` environment variable when set (and positive),
//! otherwise [`std::thread::available_parallelism`]. `BAGPRED_THREADS=1`
//! forces the serial path exactly.
//!
//! No external thread-pool crate is involved — the build stays offline.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "BAGPRED_THREADS";

/// The worker-thread count the pipeline will use: `BAGPRED_THREADS` when
/// set to a positive integer, otherwise the machine's available
/// parallelism (1 when that is unknown).
pub fn configured_threads() -> usize {
    if let Ok(raw) = std::env::var(THREADS_ENV) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Maps `f` over `items` on up to `threads` scoped workers, returning
/// results **in input order**.
///
/// Work is distributed dynamically (an atomic cursor), so uneven item
/// costs balance across workers; determinism comes from reassembling by
/// index afterwards, never from scheduling. `threads <= 1` (or a short
/// input) runs the plain serial loop — the two paths produce identical
/// output for a pure `f`.
pub fn parallel_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = threads.min(items.len()).max(1);
    if threads == 1 {
        return items.iter().map(f).collect();
    }

    let cursor = AtomicUsize::new(0);
    let done = Mutex::new(Vec::with_capacity(items.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= items.len() {
                        break;
                    }
                    local.push((idx, f(&items[idx])));
                }
                done.lock().expect("worker panicked").extend(local);
            });
        }
    });

    let mut indexed = done.into_inner().expect("worker panicked");
    indexed.sort_by_key(|(idx, _)| *idx);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, value)| value).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_regardless_of_thread_count() {
        let items: Vec<usize> = (0..257).collect();
        let serial = parallel_map(&items, 1, |&i| i * 3);
        for threads in [2, 4, 8, 33] {
            assert_eq!(parallel_map(&items, threads, |&i| i * 3), serial);
        }
    }

    #[test]
    fn handles_empty_and_tiny_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(parallel_map(&empty, 4, |&b| b).is_empty());
        assert_eq!(parallel_map(&[7u8], 4, |&b| b + 1), vec![8]);
    }

    #[test]
    fn uneven_work_still_lands_in_order() {
        let items: Vec<u64> = (0..64).collect();
        let out = parallel_map(&items, 4, |&i| {
            // Skew the cost so late items finish before early ones.
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * i
        });
        assert_eq!(out, items.iter().map(|&i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }
}
