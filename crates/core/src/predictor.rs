//! The trainable multi-application performance predictor.

use crate::feature::{Feature, FeatureSet};
use crate::measure::Measurement;
use bagpred_ml::{
    metrics, Dataset, DecisionTreeRegressor, FlatForest, FlatTree, LinearRegression,
    RandomForestRegressor, Regressor, SvrKernel, SvrRegressor,
};
use bagpred_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Which regression model backs the predictor.
///
/// The paper selects the decision tree for accuracy *and* explainability;
/// SVR and linear regression are retained as the comparison points of §V-D.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// CART regression tree (the paper's choice).
    DecisionTree,
    /// ε-insensitive support-vector regression with an RBF kernel.
    Svr,
    /// Ordinary least squares.
    Linear,
    /// Bagged-CART random forest (robustness extension).
    RandomForest,
}

/// Time normalization per the paper's §V-C: all time-valued features are
/// divided by the range (max − min) of the CPU-time feature over the
/// *training* data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Normalizer {
    cpu_range: f64,
}

impl Normalizer {
    fn fit(records: &[Measurement]) -> Self {
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for m in records {
            for slot in 0..2 {
                let t = m.raw_value(Feature::CpuTime, slot);
                min = min.min(t);
                max = max.max(t);
            }
        }
        let range = max - min;
        Self {
            cpu_range: if range > 0.0 { range } else { 1.0 },
        }
    }

    fn value(&self, m: &Measurement, feature: Feature, slot: usize) -> f64 {
        let raw = m.raw_value(feature, slot);
        if feature.is_time() {
            raw / self.cpu_range
        } else {
            raw
        }
    }
}

#[derive(Debug)]
enum Model {
    Tree(DecisionTreeRegressor),
    Svr(SvrRegressor),
    Linear(LinearRegression),
    Forest(RandomForestRegressor),
}

impl Model {
    fn new(kind: ModelKind, max_depth: usize) -> Self {
        match kind {
            ModelKind::DecisionTree => {
                Model::Tree(DecisionTreeRegressor::new().with_max_depth(max_depth))
            }
            ModelKind::Svr => Model::Svr(SvrRegressor::new(SvrKernel::Rbf { gamma: 0.5 })),
            ModelKind::Linear => Model::Linear(LinearRegression::new()),
            ModelKind::RandomForest => {
                Model::Forest(RandomForestRegressor::new().with_max_depth(max_depth))
            }
        }
    }

    fn regressor_mut(&mut self) -> &mut dyn Regressor {
        match self {
            Model::Tree(m) => m,
            Model::Svr(m) => m,
            Model::Linear(m) => m,
            Model::Forest(m) => m,
        }
    }

    fn regressor(&self) -> &dyn Regressor {
        match self {
            Model::Tree(m) => m,
            Model::Svr(m) => m,
            Model::Linear(m) => m,
            Model::Forest(m) => m,
        }
    }
}

/// The flattened model behind [`CompiledModel`].
#[derive(Debug)]
enum FlatModel {
    Tree(FlatTree),
    Forest(FlatForest),
}

/// A fitted model compiled to the flattened array layout of
/// [`bagpred_ml::FlatTree`] — the allocation-free walk behind
/// [`Predictor::predict_batch`]. Only tree-shaped models compile; SVR and
/// linear models have no tree to flatten.
///
/// At compile time the model's split features are remapped from
/// full-scheme row space into a dense *used-columns-only* space, and
/// `columns` records which `(Feature, slot)` pair backs each compiled
/// column. A batch fill therefore materializes only the columns the model
/// actually reads; the walk still compares the same values against the
/// same thresholds, so predictions stay bit-identical to the boxed path.
#[derive(Debug)]
struct CompiledModel {
    model: FlatModel,
    /// The `(feature, slot)` pair behind each compiled row column, in
    /// column order. Empty for a single-leaf model (rows then carry one
    /// unread placeholder column).
    columns: Vec<(Feature, usize)>,
}

impl CompiledModel {
    fn compile(model: Option<&Model>, scheme: &FeatureSet) -> Option<Self> {
        // Full-scheme columns in the exact order `predict` fills a row.
        let full: Vec<(Feature, usize)> = scheme
            .features()
            .iter()
            .flat_map(|f| {
                let slots = if f.is_bag_level() { 1 } else { 2 };
                (0..slots).map(move |s| (*f, s))
            })
            .collect();
        let (mut flat, used) = match model? {
            Model::Tree(t) => {
                let flat = FlatTree::from_tree(t)?;
                let used = flat.used_features();
                (FlatModel::Tree(flat), used)
            }
            Model::Forest(f) => {
                let flat = FlatForest::from_forest(f)?;
                let used = flat.used_features();
                (FlatModel::Forest(flat), used)
            }
            _ => return None,
        };
        let mut map = vec![u32::MAX; full.len().max(1)];
        for (new, &old) in used.iter().enumerate() {
            map[old as usize] = new as u32;
        }
        let width = used.len().max(1);
        match &mut flat {
            FlatModel::Tree(t) => t.remap_features(&map, width),
            FlatModel::Forest(f) => f.remap_features(&map, width),
        }
        let columns = used.iter().map(|&old| full[old as usize]).collect();
        Some(Self {
            model: flat,
            columns,
        })
    }
}

/// Per-benchmark leave-one-out cross-validation results (the paper's Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoocvReport {
    per_benchmark: Vec<(Benchmark, f64, usize)>,
}

impl LoocvReport {
    /// `(benchmark, mean relative error %, test points)` per LOOCV round.
    pub fn per_benchmark(&self) -> &[(Benchmark, f64, usize)] {
        &self.per_benchmark
    }

    /// Mean of the per-benchmark relative errors, in percent — the paper's
    /// headline "9%" statistic.
    pub fn mean_error_percent(&self) -> f64 {
        let n = self.per_benchmark.len().max(1) as f64;
        self.per_benchmark.iter().map(|(_, e, _)| e).sum::<f64>() / n
    }
}

/// The multi-application GPU performance predictor.
///
/// Materializes feature vectors for bags of two applications over a chosen
/// [`FeatureSet`], trains a regression model (decision tree by default), and
/// predicts the bag's GPU makespan.
///
/// # Example
///
/// ```
/// use bagpred_core::{Bag, Corpus, FeatureSet, Predictor};
/// use bagpred_workloads::{Benchmark, Workload};
///
/// let records = Corpus::paper().measure();
/// let mut predictor = Predictor::new(FeatureSet::full());
/// predictor.train(&records);
/// let predicted = predictor.predict(&records[0]);
/// assert!(predicted > 0.0);
/// ```
#[derive(Debug)]
pub struct Predictor {
    scheme: FeatureSet,
    kind: ModelKind,
    max_depth: usize,
    model: Option<Model>,
    compiled: Option<CompiledModel>,
    normalizer: Option<Normalizer>,
}

impl Predictor {
    /// Creates an untrained decision-tree predictor over a feature scheme.
    pub fn new(scheme: FeatureSet) -> Self {
        Self {
            scheme,
            kind: ModelKind::DecisionTree,
            // Depth 8 minimizes leave-one-benchmark-out error on the paper
            // corpus (deeper trees memorize benchmark-specific leaves that
            // do not transfer to the held-out benchmark).
            max_depth: 8,
            model: None,
            compiled: None,
            normalizer: None,
        }
    }

    /// Switches the backing model.
    pub fn with_model(mut self, kind: ModelKind) -> Self {
        self.kind = kind;
        self
    }

    /// Sets the decision tree's maximum depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.max_depth = depth;
        self
    }

    /// The feature scheme in use.
    pub fn scheme(&self) -> &FeatureSet {
        &self.scheme
    }

    /// Materializes the dataset for a record set, normalizing times with
    /// the given normalizer and grouping each sample by its bag label.
    fn dataset(&self, records: &[Measurement], norm: &Normalizer) -> Dataset {
        let names = self.scheme.column_names(2);
        let mut data = Dataset::new(names).expect("schemes are non-empty");
        for m in records {
            let mut row = Vec::new();
            for f in self.scheme.features() {
                if f.is_bag_level() {
                    row.push(norm.value(m, *f, 0));
                } else {
                    row.push(norm.value(m, *f, 0));
                    row.push(norm.value(m, *f, 1));
                }
            }
            data.push_grouped(row, m.bag_gpu_time_s(), m.bag().label())
                .expect("measurements are finite");
        }
        data
    }

    /// Trains on a record set.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn train(&mut self, records: &[Measurement]) {
        assert!(!records.is_empty(), "training needs at least one record");
        let norm = Normalizer::fit(records);
        let data = self.dataset(records, &norm);
        let mut model = Model::new(self.kind, self.max_depth);
        model
            .regressor_mut()
            .fit(&data)
            .expect("non-empty dataset must fit");
        self.compiled = CompiledModel::compile(Some(&model), &self.scheme);
        self.model = Some(model);
        self.normalizer = Some(norm);
    }

    /// Predicts the GPU bag makespan (seconds) for one measured bag.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained.
    pub fn predict(&self, record: &Measurement) -> f64 {
        let norm = self.normalizer.expect("predictor must be trained");
        let model = self.model.as_ref().expect("predictor must be trained");
        let mut row = Vec::new();
        for f in self.scheme.features() {
            if f.is_bag_level() {
                row.push(norm.value(record, *f, 0));
            } else {
                row.push(norm.value(record, *f, 0));
                row.push(norm.value(record, *f, 1));
            }
        }
        model.regressor().predict(&row)
    }

    /// Predicts GPU bag makespans for a whole batch of measured bags.
    ///
    /// Tree- and forest-backed predictors walk a compiled flattened model
    /// ([`FlatTree`]/[`FlatForest`]) over one contiguous feature buffer —
    /// no per-record row allocation, no pointer chasing — using the
    /// chunked level-order walk ([`bagpred_ml::LANES`] records in flight
    /// per loop iteration, branchless conditional-move descent), which is
    /// what makes serve-side batching semantic instead of structural and
    /// batch predicts several times faster than per-record calls. Results
    /// are bit-identical to calling [`predict`](Self::predict) once per
    /// record (same comparisons, same leaves, same summation order).
    /// Model kinds without a tree to flatten (SVR, linear) fall back to
    /// the per-record walk.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained.
    pub fn predict_batch(&self, records: &[Measurement]) -> Vec<f64> {
        let norm = self.normalizer.expect("predictor must be trained");
        assert!(self.model.is_some(), "predictor must be trained");
        let Some(compiled) = self.compiled.as_ref() else {
            return records.iter().map(|m| self.predict(m)).collect();
        };
        // Only the columns the compiled model splits on get materialized
        // (its features were remapped into that narrow space at compile
        // time). One pass over the records per column keeps the feature
        // dispatch inside `raw_value` perfectly predicted.
        let width = compiled.columns.len().max(1);
        let mut buf = vec![0.0f64; records.len() * width];
        for (col, &(f, slot)) in compiled.columns.iter().enumerate() {
            for (row, m) in records.iter().enumerate() {
                buf[row * width + col] = norm.value(m, f, slot);
            }
        }
        let mut out = Vec::new();
        match &compiled.model {
            FlatModel::Tree(t) => t.predict_strided(&buf, width, &mut out),
            FlatModel::Forest(f) => f.predict_strided(&buf, width, &mut out),
        }
        out
    }

    /// Mean relative error (%) of the trained model over a record set.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained or `records` is empty.
    pub fn evaluate(&self, records: &[Measurement]) -> f64 {
        let truth: Vec<f64> = records.iter().map(Measurement::bag_gpu_time_s).collect();
        let predicted = self.predict_batch(records);
        metrics::mean_relative_error(&truth, &predicted)
    }

    /// Trains on a seeded 80/20 split and reports the test error (%) — the
    /// paper's §V-D2 protocol.
    ///
    /// # Panics
    ///
    /// Panics if `records` has fewer than five entries.
    pub fn train_test_error(&mut self, records: &[Measurement], seed: u64) -> f64 {
        assert!(records.len() >= 5, "need enough records for an 80/20 split");
        let mut indices: Vec<usize> = (0..records.len()).collect();
        // Seeded Fisher-Yates via the workspace RNG.
        let mut rng = bagpred_trace::SplitMix64::new(seed ^ 0x80_20);
        for i in (1..indices.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            indices.swap(i, j);
        }
        let n_test = (records.len() as f64 * 0.2).ceil() as usize;
        let (test_idx, train_idx) = indices.split_at(n_test);
        let train: Vec<Measurement> = train_idx.iter().map(|&i| records[i].clone()).collect();
        let test: Vec<Measurement> = test_idx.iter().map(|&i| records[i].clone()).collect();
        self.train(&train);
        self.evaluate(&test)
    }

    /// Leave-one-benchmark-out cross-validation (the paper's Fig. 4): for
    /// each benchmark, every bag *involving* it is held out for testing and
    /// the model trains on the rest.
    ///
    /// Folds are independent, so they train in parallel on
    /// [`crate::parallel::configured_threads`] scoped workers (each fold on
    /// a fresh predictor with this predictor's configuration). The report
    /// is assembled in `Benchmark::ALL` order and is bit-identical to the
    /// serial loop — see
    /// [`loocv_by_benchmark_threads`](Self::loocv_by_benchmark_threads).
    /// Unlike earlier revisions, the predictor's own trained state is left
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if some LOOCV round would have an empty training set.
    pub fn loocv_by_benchmark(&mut self, records: &[Measurement]) -> LoocvReport {
        self.loocv_by_benchmark_threads(records, crate::parallel::configured_threads())
    }

    /// [`loocv_by_benchmark`](Self::loocv_by_benchmark) with an explicit
    /// worker count (`threads == 1` runs the plain serial loop; any count
    /// yields the same report).
    ///
    /// # Panics
    ///
    /// Panics if some LOOCV round would have an empty training set.
    pub fn loocv_by_benchmark_threads(
        &mut self,
        records: &[Measurement],
        threads: usize,
    ) -> LoocvReport {
        let folds: Vec<Benchmark> = Benchmark::ALL
            .iter()
            .copied()
            .filter(|&bench| records.iter().any(|m| m.bag().involves(bench)))
            .collect();
        let this: &Predictor = self;
        let per_benchmark = crate::parallel::parallel_map(&folds, threads, |&bench| {
            let (error, tested) = this
                .loocv_fold(records, bench)
                .expect("folds keep only involved benchmarks");
            (bench, error, tested)
        });
        LoocvReport { per_benchmark }
    }

    /// Trains and evaluates one leave-`bench`-out fold: every bag
    /// *involving* `bench` is held out as the test set and a fresh
    /// predictor with this predictor's configuration trains on the rest.
    /// Returns `(mean_relative_error, tested_bags)`, or `None` when no
    /// record involves `bench` (the fold would test nothing).
    ///
    /// This is exactly the per-fold body of
    /// [`loocv_by_benchmark`](Self::loocv_by_benchmark) — exposed so
    /// harnesses (`repro bench`) can time folds individually while
    /// computing bit-identical errors. The predictor's own trained state
    /// is never touched.
    ///
    /// # Panics
    ///
    /// Panics if the fold would have an empty training set.
    pub fn loocv_fold(&self, records: &[Measurement], bench: Benchmark) -> Option<(f64, usize)> {
        if !records.iter().any(|m| m.bag().involves(bench)) {
            return None;
        }
        let (test, train): (Vec<_>, Vec<_>) = records
            .iter()
            .cloned()
            .partition(|m| m.bag().involves(bench));
        assert!(
            !train.is_empty(),
            "LOOCV round for {bench} has no training data"
        );
        let mut fold = Predictor::new(self.scheme.clone())
            .with_model(self.kind)
            .with_max_depth(self.max_depth);
        fold.train(&train);
        let error = fold.evaluate(&test);
        Some((error, test.len()))
    }

    /// The fitted decision tree, when the backing model is a tree.
    ///
    /// Used by the decision-path analysis of §VI-C.
    pub fn tree(&self) -> Option<&DecisionTreeRegressor> {
        match self.model.as_ref()? {
            Model::Tree(t) => Some(t),
            _ => None,
        }
    }

    /// The fitted random forest, when the backing model is a forest.
    pub fn forest(&self) -> Option<&RandomForestRegressor> {
        match self.model.as_ref()? {
            Model::Forest(f) => Some(f),
            _ => None,
        }
    }

    /// The backing model kind.
    pub fn model_kind(&self) -> ModelKind {
        self.kind
    }

    /// The configured maximum tree depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The fitted normalizer's CPU-time range (§V-C), or `None` before
    /// training. Together with the model this is the predictor's entire
    /// trained state — what a serving snapshot must persist.
    pub fn cpu_time_range(&self) -> Option<f64> {
        self.normalizer.map(|n| n.cpu_range)
    }

    /// Rebuilds a *trained* tree-backed predictor from snapshot parts,
    /// skipping the measurement corpus entirely. The inverse of reading
    /// [`tree`](Self::tree) + [`cpu_time_range`](Self::cpu_time_range)
    /// off a trained predictor.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `cpu_time_range` is not positive.
    pub fn from_trained_tree(
        scheme: FeatureSet,
        depth: usize,
        cpu_time_range: f64,
        tree: DecisionTreeRegressor,
    ) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(
            cpu_time_range > 0.0 && cpu_time_range.is_finite(),
            "cpu_time_range must be positive"
        );
        let model = Model::Tree(tree);
        Self {
            compiled: CompiledModel::compile(Some(&model), &scheme),
            scheme,
            kind: ModelKind::DecisionTree,
            max_depth: depth,
            model: Some(model),
            normalizer: Some(Normalizer {
                cpu_range: cpu_time_range,
            }),
        }
    }

    /// Rebuilds a *trained* forest-backed predictor from snapshot parts.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero or `cpu_time_range` is not positive.
    pub fn from_trained_forest(
        scheme: FeatureSet,
        depth: usize,
        cpu_time_range: f64,
        forest: RandomForestRegressor,
    ) -> Self {
        assert!(depth > 0, "depth must be positive");
        assert!(
            cpu_time_range > 0.0 && cpu_time_range.is_finite(),
            "cpu_time_range must be positive"
        );
        let model = Model::Forest(forest);
        Self {
            compiled: CompiledModel::compile(Some(&model), &scheme),
            scheme,
            kind: ModelKind::RandomForest,
            max_depth: depth,
            model: Some(model),
            normalizer: Some(Normalizer {
                cpu_range: cpu_time_range,
            }),
        }
    }

    /// Materializes the (normalized) dataset for external analysis, using
    /// the trained normalizer.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained.
    pub fn materialize(&self, records: &[Measurement]) -> Dataset {
        let norm = self.normalizer.expect("predictor must be trained");
        self.dataset(records, &norm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bag::Bag;
    use crate::corpus::Corpus;
    use crate::measure::Platforms;
    use bagpred_workloads::Workload;
    use std::sync::OnceLock;

    /// A small measured corpus shared across tests (batch sizes reduced for
    /// speed; the structure matches the paper's recipe).
    fn records() -> &'static [Measurement] {
        static RECORDS: OnceLock<Vec<Measurement>> = OnceLock::new();
        RECORDS.get_or_init(|| {
            let mut bags = Vec::new();
            for bench in Benchmark::ALL {
                for batch in [2usize, 4, 8] {
                    bags.push(Bag::homogeneous(Workload::new(bench, batch)));
                }
            }
            for (i, a) in Benchmark::ALL.iter().enumerate() {
                for b in &Benchmark::ALL[i + 1..] {
                    bags.push(Bag::pair(Workload::new(*a, 4), Workload::new(*b, 4)));
                }
            }
            Corpus::custom(bags).measure_on(&Platforms::paper())
        })
    }

    #[test]
    fn trained_full_model_fits_training_data_well() {
        let mut p = Predictor::new(FeatureSet::full());
        p.train(records());
        let err = p.evaluate(records());
        assert!(err < 5.0, "training error {err}%");
    }

    #[test]
    fn full_features_beat_insmix_only() {
        let mut full = Predictor::new(FeatureSet::full());
        let mut insmix = Predictor::new(FeatureSet::insmix());
        let full_err = full.train_test_error(records(), 7);
        let insmix_err = insmix.train_test_error(records(), 7);
        assert!(
            full_err < insmix_err,
            "full {full_err}% vs insmix {insmix_err}%"
        );
    }

    #[test]
    fn loocv_excludes_involved_bags() {
        let mut p = Predictor::new(FeatureSet::full());
        let report = p.loocv_by_benchmark(records());
        assert_eq!(report.per_benchmark().len(), 9);
        for (bench, err, n) in report.per_benchmark() {
            // 3 homogeneous + 8 heterogeneous involve each benchmark.
            assert_eq!(*n, 11, "{bench}");
            assert!(err.is_finite() && *err >= 0.0);
        }
    }

    #[test]
    fn loocv_fold_is_bit_identical_to_the_report_entry() {
        let mut p = Predictor::new(FeatureSet::full());
        let report = p.loocv_by_benchmark_threads(records(), 1);
        for (bench, err, n) in report.per_benchmark() {
            let (fold_err, fold_n) = p.loocv_fold(records(), *bench).expect("bench is involved");
            assert_eq!(fold_err.to_bits(), err.to_bits(), "{bench}");
            assert_eq!(fold_n, *n, "{bench}");
        }
        // A corpus with no SIFT bags has no SIFT fold.
        let no_sift: Vec<_> = records()
            .iter()
            .filter(|m| !m.bag().involves(Benchmark::Sift))
            .cloned()
            .collect();
        assert_eq!(p.loocv_fold(&no_sift, Benchmark::Sift), None);
    }

    #[test]
    fn tree_accessor_matches_model_kind() {
        let mut tree = Predictor::new(FeatureSet::full());
        tree.train(records());
        assert!(tree.tree().is_some());

        let mut linear = Predictor::new(FeatureSet::full()).with_model(ModelKind::Linear);
        linear.train(records());
        assert!(linear.tree().is_none());
    }

    #[test]
    fn predictions_are_positive_times() {
        let mut p = Predictor::new(FeatureSet::full());
        p.train(records());
        for m in records() {
            let y = p.predict(m);
            assert!(y > 0.0 && y.is_finite());
        }
    }

    #[test]
    #[should_panic(expected = "must be trained")]
    fn predict_before_train_panics() {
        Predictor::new(FeatureSet::full()).predict(&records()[0]);
    }

    #[test]
    fn snapshot_parts_rebuild_an_identical_tree_predictor() {
        let mut original = Predictor::new(FeatureSet::full());
        original.train(records());
        let rebuilt = Predictor::from_trained_tree(
            original.scheme().clone(),
            original.max_depth(),
            original.cpu_time_range().unwrap(),
            original.tree().unwrap().clone(),
        );
        for m in records() {
            assert_eq!(
                rebuilt.predict(m).to_bits(),
                original.predict(m).to_bits(),
                "{}",
                m.bag().label()
            );
        }
    }

    #[test]
    fn snapshot_parts_rebuild_an_identical_forest_predictor() {
        let mut original = Predictor::new(FeatureSet::full()).with_model(ModelKind::RandomForest);
        original.train(records());
        assert!(original.forest().is_some());
        let rebuilt = Predictor::from_trained_forest(
            original.scheme().clone(),
            original.max_depth(),
            original.cpu_time_range().unwrap(),
            original.forest().unwrap().clone(),
        );
        for m in records().iter().step_by(7) {
            assert_eq!(rebuilt.predict(m).to_bits(), original.predict(m).to_bits());
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_to_per_record_predict() {
        let mut p = Predictor::new(FeatureSet::full());
        p.train(records());
        let batch = p.predict_batch(records());
        assert_eq!(batch.len(), records().len());
        for (m, y) in records().iter().zip(&batch) {
            assert_eq!(y.to_bits(), p.predict(m).to_bits(), "{}", m.bag().label());
        }
    }

    #[test]
    fn forest_predict_batch_is_bit_identical_to_per_record_predict() {
        let mut p = Predictor::new(FeatureSet::full()).with_model(ModelKind::RandomForest);
        p.train(records());
        let batch = p.predict_batch(records());
        for (m, y) in records().iter().zip(&batch) {
            assert_eq!(y.to_bits(), p.predict(m).to_bits(), "{}", m.bag().label());
        }
    }

    #[test]
    fn uncompilable_models_fall_back_to_per_record_predict() {
        let mut p = Predictor::new(FeatureSet::full()).with_model(ModelKind::Linear);
        p.train(records());
        let batch = p.predict_batch(records());
        for (m, y) in records().iter().zip(&batch) {
            assert_eq!(y.to_bits(), p.predict(m).to_bits());
        }
    }

    #[test]
    fn parallel_loocv_reproduces_serial_report_exactly() {
        let mut p = Predictor::new(FeatureSet::full());
        let serial = p.loocv_by_benchmark_threads(records(), 1);
        for threads in [2, 4] {
            assert_eq!(p.loocv_by_benchmark_threads(records(), threads), serial);
        }
    }

    #[test]
    fn normalization_uses_training_cpu_range() {
        let norm = Normalizer::fit(records());
        assert!(norm.cpu_range > 0.0);
        let m = &records()[0];
        let normalized = norm.value(m, Feature::CpuTime, 0);
        assert!((normalized - m.raw_value(Feature::CpuTime, 0) / norm.cpu_range).abs() < 1e-15);
        // Percentages pass through unchanged.
        assert_eq!(norm.value(m, Feature::Sse, 0), m.raw_value(Feature::Sse, 0));
    }

    #[test]
    fn materialized_dataset_has_expected_shape() {
        let mut p = Predictor::new(FeatureSet::full());
        p.train(records());
        let data = p.materialize(records());
        assert_eq!(data.len(), records().len());
        assert_eq!(data.n_features(), 11 * 2 + 1);
    }
}
