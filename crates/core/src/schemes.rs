//! The named feature schemes of the paper's evaluation (Figs. 5-9), with
//! the paper's reported relative errors for side-by-side comparison.

use crate::feature::{Feature, FeatureSet};

/// A scheme paired with the relative error (%) the paper reports for it,
/// where one is given. Paper numbers come from its Figs. 5-9.
#[derive(Debug, Clone, PartialEq)]
pub struct PaperScheme {
    /// The feature scheme.
    pub scheme: FeatureSet,
    /// The paper's reported relative error, when the figure labels one.
    pub paper_error_percent: Option<f64>,
}

fn scheme(set: FeatureSet, paper: Option<f64>) -> PaperScheme {
    PaperScheme {
        scheme: set,
        paper_error_percent: paper,
    }
}

/// Fig. 5's four bars: the headline comparison with related work.
///
/// The first bar (instruction mix only) is the feature set of Baldini et
/// al., the state of the art for *single-application* prediction; the last
/// is the paper's full set.
pub fn figure5() -> Vec<PaperScheme> {
    vec![
        scheme(FeatureSet::insmix(), Some(144.6)),
        scheme(
            FeatureSet::insmix()
                .with(Feature::CpuTime)
                .named("insmix+CPUtime"),
            Some(57.05),
        ),
        scheme(
            FeatureSet::insmix()
                .with(Feature::CpuTime)
                .with(Feature::Fairness)
                .named("insmix+CPUtime+Fairness"),
            Some(37.73),
        ),
        scheme(FeatureSet::full(), Some(9.05)),
    ]
}

/// Fig. 6: base schemes and the same schemes with CPU time added.
/// Returns `(without, with)` pairs.
pub fn figure6() -> Vec<(PaperScheme, PaperScheme)> {
    vec![
        (
            scheme(FeatureSet::insmix(), Some(144.6)),
            scheme(FeatureSet::insmix().with(Feature::CpuTime), Some(57.05)),
        ),
        (
            scheme(
                FeatureSet::arith_sse().with(Feature::Fairness),
                Some(229.75),
            ),
            scheme(
                FeatureSet::arith_sse()
                    .with(Feature::Fairness)
                    .with(Feature::CpuTime),
                Some(40.7),
            ),
        ),
        (
            scheme(FeatureSet::mem().with(Feature::Fairness), Some(89.54)),
            scheme(
                FeatureSet::mem()
                    .with(Feature::Fairness)
                    .with(Feature::CpuTime),
                Some(55.05),
            ),
        ),
        (
            scheme(FeatureSet::insmix().with(Feature::Fairness), Some(98.17)),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::Fairness)
                    .with(Feature::CpuTime),
                Some(37.73),
            ),
        ),
        (
            scheme(FeatureSet::only(Feature::Fairness), Some(120.5)),
            scheme(
                FeatureSet::only(Feature::Fairness).with(Feature::CpuTime),
                Some(49.67),
            ),
        ),
    ]
}

/// Fig. 7: base schemes and the same schemes with GPU time added.
pub fn figure7() -> Vec<(PaperScheme, PaperScheme)> {
    vec![
        (
            scheme(FeatureSet::insmix(), Some(144.6)),
            scheme(FeatureSet::insmix().with(Feature::GpuTime), Some(11.36)),
        ),
        (
            scheme(
                FeatureSet::arith_sse().with(Feature::Fairness),
                Some(229.75),
            ),
            scheme(
                FeatureSet::arith_sse()
                    .with(Feature::Fairness)
                    .with(Feature::GpuTime),
                Some(350.0),
            ),
        ),
        (
            scheme(FeatureSet::only(Feature::CpuTime), Some(62.5)),
            scheme(
                FeatureSet::only(Feature::CpuTime).with(Feature::GpuTime),
                Some(10.66),
            ),
        ),
        (
            scheme(FeatureSet::insmix().with(Feature::Fairness), Some(98.17)),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::Fairness)
                    .with(Feature::GpuTime),
                Some(11.51),
            ),
        ),
        (
            scheme(FeatureSet::mem().with(Feature::Fairness), Some(89.54)),
            scheme(
                FeatureSet::mem()
                    .with(Feature::Fairness)
                    .with(Feature::GpuTime),
                Some(9.7),
            ),
        ),
    ]
}

/// Fig. 8: base schemes and the same schemes with the instruction mix added.
pub fn figure8() -> Vec<(PaperScheme, PaperScheme)> {
    vec![
        (
            scheme(FeatureSet::only(Feature::GpuTime), Some(10.5)),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::GpuTime)
                    .named("GPU+insmix"),
                Some(11.36),
            ),
        ),
        (
            scheme(FeatureSet::only(Feature::CpuTime), Some(62.5)),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::CpuTime)
                    .named("CPU+insmix"),
                Some(57.05),
            ),
        ),
        (
            scheme(
                FeatureSet::only(Feature::CpuTime).with(Feature::Fairness),
                Some(55.05),
            ),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::CpuTime)
                    .with(Feature::Fairness)
                    .named("CPU+fairness+insmix"),
                Some(37.73),
            ),
        ),
        (
            scheme(
                FeatureSet::only(Feature::GpuTime).with(Feature::Fairness),
                Some(9.7),
            ),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::GpuTime)
                    .with(Feature::Fairness)
                    .named("GPU+fairness+insmix"),
                Some(11.51),
            ),
        ),
    ]
}

/// Fig. 9: base schemes and the same schemes with fairness added.
pub fn figure9() -> Vec<(PaperScheme, PaperScheme)> {
    vec![
        (
            scheme(FeatureSet::insmix(), Some(144.6)),
            scheme(FeatureSet::insmix().with(Feature::Fairness), Some(98.17)),
        ),
        (
            scheme(FeatureSet::insmix().with(Feature::CpuTime), Some(57.05)),
            scheme(
                FeatureSet::insmix()
                    .with(Feature::CpuTime)
                    .with(Feature::Fairness),
                Some(37.73),
            ),
        ),
        (
            scheme(
                FeatureSet::mem()
                    .with(Feature::CpuTime)
                    .named("mem+CPUtime"),
                Some(53.5),
            ),
            scheme(
                FeatureSet::mem()
                    .with(Feature::CpuTime)
                    .with(Feature::Fairness)
                    .named("mem+CPUtime+fairness"),
                Some(49.67),
            ),
        ),
        (
            scheme(
                FeatureSet::insmix()
                    .with(Feature::CpuTime)
                    .with(Feature::GpuTime),
                Some(11.5),
            ),
            scheme(FeatureSet::full(), Some(9.05)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_has_four_schemes_in_improving_order() {
        let schemes = figure5();
        assert_eq!(schemes.len(), 4);
        let errors: Vec<f64> = schemes
            .iter()
            .map(|s| s.paper_error_percent.unwrap())
            .collect();
        assert!(errors.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn sensitivity_pairs_differ_by_exactly_one_feature() {
        for (name, pairs, added) in [
            ("fig6", figure6(), Feature::CpuTime),
            ("fig7", figure7(), Feature::GpuTime),
            ("fig9", figure9(), Feature::Fairness),
        ] {
            for (base, extended) in pairs {
                assert!(
                    !base.scheme.contains(added),
                    "{name}: base {} already has {added}",
                    base.scheme.name()
                );
                assert!(
                    extended.scheme.contains(added),
                    "{name}: extended {} lacks {added}",
                    extended.scheme.name()
                );
                assert_eq!(
                    extended.scheme.features().len(),
                    base.scheme.features().len() + 1,
                    "{name}: pair must differ by exactly one feature"
                );
            }
        }
    }

    #[test]
    fn figure8_pairs_add_the_full_instruction_mix() {
        for (base, extended) in figure8() {
            assert!(!base.scheme.contains(Feature::Sse));
            assert!(extended.scheme.contains(Feature::Sse));
            assert_eq!(
                extended.scheme.features().len(),
                base.scheme.features().len() + 9
            );
        }
    }

    #[test]
    fn all_schemes_have_paper_reference_values() {
        for s in figure5() {
            assert!(s.paper_error_percent.is_some());
        }
    }
}
