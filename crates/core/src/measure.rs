//! Feature measurement: the paper's §V-B/§V-C data-point collection.

use crate::bag::Bag;
use crate::feature::Feature;
use bagpred_cpusim::{fairness, CpuConfig, CpuSimulator};
use bagpred_gpusim::{GpuConfig, GpuSimulator};
use bagpred_workloads::Workload;
use serde::{Deserialize, Serialize};

/// The two machines every measurement runs against (Table III).
#[derive(Debug, Clone)]
pub struct Platforms {
    cpu: CpuSimulator,
    gpu: GpuSimulator,
}

impl Default for Platforms {
    fn default() -> Self {
        Self::paper()
    }
}

impl Platforms {
    /// The paper's baseline: 2× Xeon Gold 5118 + Tesla T4.
    pub fn paper() -> Self {
        Self {
            cpu: CpuSimulator::new(CpuConfig::xeon_gold_5118()),
            gpu: GpuSimulator::new(GpuConfig::tesla_t4()),
        }
    }

    /// Custom machine pair (for sensitivity studies).
    pub fn new(cpu: CpuSimulator, gpu: GpuSimulator) -> Self {
        Self { cpu, gpu }
    }

    /// The CPU simulator.
    pub fn cpu(&self) -> &CpuSimulator {
        &self.cpu
    }

    /// The GPU simulator.
    pub fn gpu(&self) -> &GpuSimulator {
        &self.gpu
    }
}

/// Per-application feature values (one Table IV row's worth, minus the
/// bag-level fairness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppFeatures {
    /// Single-instance CPU time at the best thread count, seconds.
    pub cpu_time_s: f64,
    /// Single-instance GPU time, seconds.
    pub gpu_time_s: f64,
    /// Instruction-mix percentages, keyed by [`Feature`] order
    /// (`mem_rd, mem_wr, ctrl, arith, fp, stack, shift, string, sse`).
    pub mix_percent: [f64; 9],
}

impl AppFeatures {
    /// Measures one workload's per-application features: CPU time at the
    /// best thread count, single-instance GPU time, and the instruction
    /// mix. This is the expensive per-app scalar collection the serving
    /// layer memoizes — it is a pure function of `(benchmark, batch_size)`
    /// and the platform pair.
    pub fn collect(workload: &Workload, platforms: &Platforms) -> Self {
        let profile = workload.profile();
        let mix = profile.mix();
        use bagpred_trace::InstrClass as C;
        Self {
            cpu_time_s: platforms.cpu.simulate_best(&profile).time_s,
            gpu_time_s: platforms.gpu.simulate(&profile).time_s,
            mix_percent: [
                mix.percent(C::Load),
                mix.percent(C::Store),
                mix.percent(C::Control),
                mix.percent(C::Alu),
                mix.percent(C::Fp),
                mix.percent(C::Stack),
                mix.percent(C::Shift),
                mix.percent(C::StringOp),
                mix.percent(C::Sse),
            ],
        }
    }

    /// The mix percentage of one mix feature.
    ///
    /// # Panics
    ///
    /// Panics when given a non-mix feature (times or fairness).
    pub fn mix(&self, feature: Feature) -> f64 {
        let idx = match feature {
            Feature::MemRd => 0,
            Feature::MemWr => 1,
            Feature::Ctrl => 2,
            Feature::Arith => 3,
            Feature::Fp => 4,
            Feature::Stack => 5,
            Feature::Shift => 6,
            Feature::StringOp => 7,
            Feature::Sse => 8,
            other => panic!("{other} is not an instruction-mix feature"),
        };
        self.mix_percent[idx]
    }
}

/// One fully-measured data point: a bag, its feature values, and the
/// ground-truth multi-application GPU time the predictor learns to predict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    bag: Bag,
    apps: [AppFeatures; 2],
    fairness: f64,
    bag_gpu_time_s: f64,
}

impl Measurement {
    /// Measures one bag on the given platforms: profiles both workloads,
    /// times single instances on CPU (best thread count) and GPU, computes
    /// the fairness of the co-run on the multicore server (Eq. 2), and
    /// records the ground-truth GPU bag makespan under MPS.
    pub fn collect(bag: Bag, platforms: &Platforms) -> Self {
        let profiles: Vec<_> = bag.members().iter().map(Workload::profile).collect();
        let members = bag.members();
        let apps = [
            AppFeatures::collect(&members[0], platforms),
            AppFeatures::collect(&members[1], platforms),
        ];
        let fairness = fairness(&platforms.cpu, &profiles);
        let bag_gpu_time_s = platforms.gpu.simulate_bag(&profiles).makespan_s();
        Self {
            bag,
            apps,
            fairness,
            bag_gpu_time_s,
        }
    }

    /// Measures the fairness (Eq. 2) of a bag's co-run on the multicore
    /// server, without running the GPU bag simulation.
    pub fn collect_fairness(bag: &Bag, platforms: &Platforms) -> f64 {
        let profiles: Vec<_> = bag.members().iter().map(Workload::profile).collect();
        fairness(&platforms.cpu, &profiles)
    }

    /// Assembles a measurement from already-collected parts.
    ///
    /// This is the serving fast path: per-app features and fairness come
    /// from a cache, and `bag_gpu_time_s` may be `f64::NAN` when the
    /// ground truth is unknown — exactly the situation a prediction
    /// request is in. Prediction never reads the ground-truth field;
    /// training and evaluation do, so never feed NaN-labelled parts to
    /// [`Predictor::train`](crate::Predictor::train).
    pub fn from_parts(
        bag: Bag,
        apps: [AppFeatures; 2],
        fairness: f64,
        bag_gpu_time_s: f64,
    ) -> Self {
        Self {
            bag,
            apps,
            fairness,
            bag_gpu_time_s,
        }
    }

    /// The measured bag.
    pub fn bag(&self) -> &Bag {
        &self.bag
    }

    /// Per-application features, in the bag's canonical member order.
    pub fn apps(&self) -> &[AppFeatures; 2] {
        &self.apps
    }

    /// The fairness of the bag (Eq. 2), in `(0, 1]`.
    pub fn fairness(&self) -> f64 {
        self.fairness
    }

    /// Ground truth: the bag's GPU makespan under MPS, seconds.
    pub fn bag_gpu_time_s(&self) -> f64 {
        self.bag_gpu_time_s
    }

    /// Returns a copy with multiplicative measurement noise applied to the
    /// measured quantities (times, fairness and the target), emulating the
    /// run-to-run variance of a physical testbed.
    ///
    /// Each quantity is scaled by `1 + ε` with `ε` uniform in
    /// `[-sigma, sigma]`, drawn deterministically from `seed`. The
    /// instruction mix is a deterministic count and is left untouched.
    /// Used by the noise-robustness extension experiment.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma` is in `[0, 0.5]`.
    pub fn with_noise(&self, seed: u64, sigma: f64) -> Measurement {
        assert!(
            (0.0..=0.5).contains(&sigma),
            "noise sigma must be in [0, 0.5]"
        );
        let mut rng = bagpred_trace::SplitMix64::new(seed ^ 0x4015_e5ee_d000);
        let mut noisy = self.clone();
        let mut perturb = |v: &mut f64| {
            *v *= 1.0 + rng.next_range(-sigma, sigma);
        };
        for app in &mut noisy.apps {
            perturb(&mut app.cpu_time_s);
            perturb(&mut app.gpu_time_s);
        }
        perturb(&mut noisy.bag_gpu_time_s);
        // Fairness is a ratio of measurements: noise partially cancels.
        noisy.fairness =
            (noisy.fairness * (1.0 + rng.next_range(-sigma / 2.0, sigma / 2.0))).min(1.0);
        noisy
    }

    /// Raw (unnormalized) value of one feature for one application slot.
    ///
    /// # Panics
    ///
    /// Panics if `slot > 1`.
    pub fn raw_value(&self, feature: Feature, slot: usize) -> f64 {
        assert!(slot < 2, "bags have two slots");
        match feature {
            Feature::CpuTime => self.apps[slot].cpu_time_s,
            Feature::GpuTime => self.apps[slot].gpu_time_s,
            Feature::Fairness => self.fairness,
            mix => self.apps[slot].mix(mix),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_workloads::{Benchmark, Workload};

    fn measure(bag: Bag) -> Measurement {
        Measurement::collect(bag, &Platforms::paper())
    }

    #[test]
    fn homogeneous_bag_has_identical_slots() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Hog, 4)));
        assert_eq!(m.apps()[0], m.apps()[1]);
        // Identical tasks suffer identically: fairness ~ 1.
        assert!(m.fairness() > 0.99);
    }

    #[test]
    fn heterogeneous_bag_differs_across_slots() {
        let m = measure(Bag::pair(
            Workload::new(Benchmark::Sift, 4),
            Workload::new(Benchmark::Fast, 4),
        ));
        assert_ne!(m.apps()[0], m.apps()[1]);
        assert!(m.fairness() > 0.0 && m.fairness() <= 1.0);
    }

    #[test]
    fn bag_time_exceeds_both_solo_times() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Surf, 4)));
        assert!(m.bag_gpu_time_s() > m.apps()[0].gpu_time_s);
    }

    #[test]
    fn mix_percentages_sum_to_100() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Knn, 4)));
        let sum: f64 = m.apps()[0].mix_percent.iter().sum();
        assert!((sum - 100.0).abs() < 1e-6, "sum {sum}");
    }

    #[test]
    fn raw_value_routes_features() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Orb, 4)));
        assert_eq!(m.raw_value(Feature::CpuTime, 0), m.apps()[0].cpu_time_s);
        assert_eq!(m.raw_value(Feature::Fairness, 1), m.fairness());
        assert_eq!(m.raw_value(Feature::Sse, 0), m.apps()[0].mix(Feature::Sse));
    }

    #[test]
    fn noise_perturbs_times_but_not_mix() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Hog, 4)));
        let noisy = m.with_noise(1, 0.05);
        assert_ne!(noisy.apps()[0].cpu_time_s, m.apps()[0].cpu_time_s);
        assert_ne!(noisy.bag_gpu_time_s(), m.bag_gpu_time_s());
        assert_eq!(noisy.apps()[0].mix_percent, m.apps()[0].mix_percent);
        // Bounded perturbation.
        let ratio = noisy.apps()[0].cpu_time_s / m.apps()[0].cpu_time_s;
        assert!((0.95..=1.05).contains(&ratio));
        assert!(noisy.fairness() <= 1.0);
    }

    #[test]
    fn zero_noise_changes_nothing() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Fast, 4)));
        assert_eq!(m.with_noise(9, 0.0), m);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Knn, 4)));
        assert_eq!(m.with_noise(7, 0.03), m.with_noise(7, 0.03));
        assert_ne!(m.with_noise(7, 0.03), m.with_noise(8, 0.03));
    }

    #[test]
    #[should_panic(expected = "noise sigma must be in")]
    fn oversized_noise_rejected() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Fast, 4)));
        let _ = m.with_noise(0, 0.9);
    }

    #[test]
    fn parts_reassemble_into_identical_features() {
        let platforms = Platforms::paper();
        let bag = Bag::pair(
            Workload::new(Benchmark::Sift, 4),
            Workload::new(Benchmark::Knn, 4),
        );
        let full = Measurement::collect(bag, &platforms);
        let members = bag.members();
        let apps = [
            AppFeatures::collect(&members[0], &platforms),
            AppFeatures::collect(&members[1], &platforms),
        ];
        let fair = Measurement::collect_fairness(&bag, &platforms);
        let lite = Measurement::from_parts(bag, apps, fair, f64::NAN);
        for feature in Feature::ALL {
            for slot in 0..2 {
                assert_eq!(
                    lite.raw_value(feature, slot).to_bits(),
                    full.raw_value(feature, slot).to_bits(),
                    "{feature} slot {slot}"
                );
            }
        }
        assert!(lite.bag_gpu_time_s().is_nan());
    }

    #[test]
    #[should_panic(expected = "not an instruction-mix feature")]
    fn mix_rejects_time_features() {
        let m = measure(Bag::homogeneous(Workload::new(Benchmark::Fast, 4)));
        m.apps()[0].mix(Feature::CpuTime);
    }
}
