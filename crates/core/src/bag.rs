//! Bags of concurrently-running workloads.

use bagpred_workloads::{Benchmark, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bag of two applications to run concurrently on the GPU.
///
/// The paper limits bags to two applications (§V-A1: a variable-sized
/// feature vector would make learning much harder); this type enforces the
/// same limit and canonicalizes member order so that `{A, B}` and `{B, A}`
/// are the same bag.
///
/// # Example
///
/// ```
/// use bagpred_core::Bag;
/// use bagpred_workloads::{Benchmark, Workload};
///
/// let homo = Bag::homogeneous(Workload::new(Benchmark::Sift, 20));
/// assert!(homo.is_homogeneous());
///
/// let hetero = Bag::pair(
///     Workload::new(Benchmark::Sift, 20),
///     Workload::new(Benchmark::Fast, 20),
/// );
/// assert!(!hetero.is_homogeneous());
/// // Canonical order makes member order irrelevant.
/// let flipped = Bag::pair(
///     Workload::new(Benchmark::Fast, 20),
///     Workload::new(Benchmark::Sift, 20),
/// );
/// assert_eq!(hetero, flipped);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Bag {
    first: Workload,
    second: Workload,
}

impl Bag {
    /// A bag of two instances of the same workload.
    pub fn homogeneous(workload: Workload) -> Self {
        Self {
            first: workload,
            second: workload,
        }
    }

    /// A bag of two (possibly different) workloads, canonically ordered by
    /// benchmark name and then batch size.
    pub fn pair(a: Workload, b: Workload) -> Self {
        let key = |w: &Workload| (w.benchmark().name(), w.batch_size());
        if key(&a) <= key(&b) {
            Self {
                first: a,
                second: b,
            }
        } else {
            Self {
                first: b,
                second: a,
            }
        }
    }

    /// The two members, in canonical order.
    pub fn members(&self) -> [Workload; 2] {
        [self.first, self.second]
    }

    /// True when both members run the same benchmark with the same input.
    pub fn is_homogeneous(&self) -> bool {
        self.first == self.second
    }

    /// The benchmarks involved (deduplicated, canonical order).
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        if self.first.benchmark() == self.second.benchmark() {
            vec![self.first.benchmark()]
        } else {
            vec![self.first.benchmark(), self.second.benchmark()]
        }
    }

    /// True when any member runs `benchmark` — the membership test the
    /// leave-one-benchmark-out protocol uses.
    pub fn involves(&self, benchmark: Benchmark) -> bool {
        self.first.benchmark() == benchmark || self.second.benchmark() == benchmark
    }

    /// A stable human-readable label, e.g. `SIFT@20+FAST@20`.
    pub fn label(&self) -> String {
        format!(
            "{}@{}+{}@{}",
            self.first.benchmark(),
            self.first.batch_size(),
            self.second.benchmark(),
            self.second.batch_size()
        )
    }
}

impl fmt::Display for Bag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_detection() {
        let same = Bag::homogeneous(Workload::new(Benchmark::Hog, 40));
        assert!(same.is_homogeneous());
        assert_eq!(same.benchmarks(), vec![Benchmark::Hog]);

        // Same benchmark, different batch: a pair, not homogeneous.
        let mixed = Bag::pair(
            Workload::new(Benchmark::Hog, 20),
            Workload::new(Benchmark::Hog, 40),
        );
        assert!(!mixed.is_homogeneous());
        assert_eq!(mixed.benchmarks(), vec![Benchmark::Hog]);
    }

    #[test]
    fn canonical_ordering_sorts_by_name_then_batch() {
        let bag = Bag::pair(
            Workload::new(Benchmark::Svm, 20),
            Workload::new(Benchmark::Fast, 320),
        );
        assert_eq!(bag.members()[0].benchmark(), Benchmark::Fast);

        let same_bench = Bag::pair(
            Workload::new(Benchmark::Knn, 320),
            Workload::new(Benchmark::Knn, 20),
        );
        assert_eq!(same_bench.members()[0].batch_size(), 20);
    }

    #[test]
    fn involves_checks_both_slots() {
        let bag = Bag::pair(
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Fast, 20),
        );
        assert!(bag.involves(Benchmark::Sift));
        assert!(bag.involves(Benchmark::Fast));
        assert!(!bag.involves(Benchmark::Svm));
    }

    #[test]
    fn label_is_stable_under_member_order() {
        let a = Bag::pair(
            Workload::new(Benchmark::Orb, 20),
            Workload::new(Benchmark::Hog, 80),
        );
        let b = Bag::pair(
            Workload::new(Benchmark::Hog, 80),
            Workload::new(Benchmark::Orb, 20),
        );
        assert_eq!(a.label(), b.label());
        assert_eq!(a.label(), "HoG@80+ORB@20");
    }
}
