//! The feature space of Table IV and its subset schemes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the twelve base features the predictor can use.
///
/// Table IV lists eleven features with a merged `MEM` percentage; the
/// paper's decision-path heat map (Fig. 12) splits memory reads and writes,
/// which is the granularity the feature vector actually carries — so this
/// enum has [`MemRd`](Feature::MemRd) and [`MemWr`](Feature::MemWr)
/// separately (twelve base features in all).
///
/// For a bag of two applications, every feature except
/// [`Fairness`](Feature::Fairness) appears once per application slot;
/// fairness is a bag-level scalar (Eq. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Feature {
    /// Single-instance execution time on the CPU.
    CpuTime,
    /// Single-instance execution time on the GPU (novel in the paper).
    GpuTime,
    /// % of memory-read instructions.
    MemRd,
    /// % of memory-write instructions.
    MemWr,
    /// % of control/branch instructions.
    Ctrl,
    /// % of scalar arithmetic instructions.
    Arith,
    /// % of floating-point instructions.
    Fp,
    /// % of stack push/pop instructions.
    Stack,
    /// % of multiply/shift instructions.
    Shift,
    /// % of string operations.
    StringOp,
    /// % of SSE/vector instructions.
    Sse,
    /// Fairness of the bag's co-run on the multicore server (novel).
    Fairness,
}

impl Feature {
    /// All features, in the column order of the paper's Fig. 12.
    pub const ALL: [Feature; 12] = [
        Feature::CpuTime,
        Feature::GpuTime,
        Feature::MemRd,
        Feature::MemWr,
        Feature::Ctrl,
        Feature::Arith,
        Feature::Fp,
        Feature::Stack,
        Feature::Shift,
        Feature::StringOp,
        Feature::Sse,
        Feature::Fairness,
    ];

    /// Short name matching the paper's figure labels.
    pub const fn name(self) -> &'static str {
        match self {
            Feature::CpuTime => "CPU",
            Feature::GpuTime => "GPU",
            Feature::MemRd => "mem_rd",
            Feature::MemWr => "mem_wr",
            Feature::Ctrl => "ctrl",
            Feature::Arith => "arith",
            Feature::Fp => "fp",
            Feature::Stack => "stack",
            Feature::Shift => "shift",
            Feature::StringOp => "string",
            Feature::Sse => "sse",
            Feature::Fairness => "fairness",
        }
    }

    /// True for the bag-level feature (one column, not one per app slot).
    pub const fn is_bag_level(self) -> bool {
        matches!(self, Feature::Fairness)
    }

    /// True for time-valued features (normalized per §V-C).
    pub const fn is_time(self) -> bool {
        matches!(self, Feature::CpuTime | Feature::GpuTime)
    }
}

impl fmt::Display for Feature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named subset of the feature space — one of the "schemes" the paper
/// compares in Figs. 5-9.
///
/// # Example
///
/// ```
/// use bagpred_core::{Feature, FeatureSet};
///
/// let insmix = FeatureSet::insmix();
/// assert!(insmix.contains(Feature::Sse));
/// assert!(!insmix.contains(Feature::GpuTime));
///
/// let scheme = insmix.with(Feature::CpuTime).named("insmix+CPUtime");
/// assert!(scheme.contains(Feature::CpuTime));
/// assert_eq!(scheme.name(), "insmix+CPUtime");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureSet {
    name: String,
    features: Vec<Feature>,
}

impl FeatureSet {
    /// Creates a named feature set. Duplicates are removed; order follows
    /// [`Feature::ALL`].
    ///
    /// # Panics
    ///
    /// Panics if `features` is empty.
    pub fn new(name: impl Into<String>, features: &[Feature]) -> Self {
        assert!(!features.is_empty(), "a feature set cannot be empty");
        let ordered: Vec<Feature> = Feature::ALL
            .into_iter()
            .filter(|f| features.contains(f))
            .collect();
        Self {
            name: name.into(),
            features: ordered,
        }
    }

    /// The nine instruction-mix percentages (Baldini et al.'s feature set).
    pub fn insmix() -> Self {
        Self::new(
            "insmix",
            &[
                Feature::MemRd,
                Feature::MemWr,
                Feature::Ctrl,
                Feature::Arith,
                Feature::Fp,
                Feature::Stack,
                Feature::Shift,
                Feature::StringOp,
                Feature::Sse,
            ],
        )
    }

    /// The paper's full feature set (Table IV): instruction mix + CPU time +
    /// GPU time + fairness.
    pub fn full() -> Self {
        Self::new("Full", &Feature::ALL)
    }

    /// Only the memory-instruction percentages.
    pub fn mem() -> Self {
        Self::new("mem", &[Feature::MemRd, Feature::MemWr])
    }

    /// Only the compute-instruction percentages (`arith + sse`).
    pub fn arith_sse() -> Self {
        Self::new("arith+sse", &[Feature::Arith, Feature::Sse])
    }

    /// A single-feature set.
    pub fn only(feature: Feature) -> Self {
        Self::new(feature.name(), &[feature])
    }

    /// Returns a copy extended with `feature`, named `<name>+<feature>`.
    pub fn with(&self, feature: Feature) -> Self {
        let mut features = self.features.clone();
        if !features.contains(&feature) {
            features.push(feature);
        }
        FeatureSet::new(format!("{}+{}", self.name, feature.name()), &features)
    }

    /// Returns a copy merged with another set, named `<a>+<b>`.
    pub fn union(&self, other: &FeatureSet) -> Self {
        let mut features = self.features.clone();
        for f in &other.features {
            if !features.contains(f) {
                features.push(*f);
            }
        }
        FeatureSet::new(format!("{}+{}", self.name, other.name), &features)
    }

    /// Renames the set.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The scheme's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The base features, in canonical order.
    pub fn features(&self) -> &[Feature] {
        &self.features
    }

    /// True when the set includes `feature`.
    pub fn contains(&self, feature: Feature) -> bool {
        self.features.contains(&feature)
    }

    /// Column names of the materialized feature vector for a bag of
    /// `slots` applications: per-app features get `_a`/`_b`… suffixes,
    /// bag-level features appear once.
    pub fn column_names(&self, slots: usize) -> Vec<String> {
        let mut names = Vec::new();
        for f in &self.features {
            if f.is_bag_level() {
                names.push(f.name().to_string());
            } else {
                for slot in 0..slots {
                    let suffix = (b'a' + slot as u8) as char;
                    names.push(format!("{}_{}", f.name(), suffix));
                }
            }
        }
        names
    }

    /// Maps a materialized column name back to its base feature.
    pub fn base_feature_of_column(column: &str) -> Option<Feature> {
        let base = column
            .rsplit_once('_')
            .filter(|(_, suffix)| suffix.len() == 1 && suffix.as_bytes()[0].is_ascii_lowercase())
            .map(|(head, _)| head)
            .unwrap_or(column);
        // `mem_rd`/`mem_wr` contain underscores themselves: try the full
        // column first, then the stripped head.
        Feature::ALL
            .into_iter()
            .find(|f| f.name() == column)
            .or_else(|| Feature::ALL.into_iter().find(|f| f.name() == base))
    }
}

impl fmt::Display for FeatureSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_twelve_distinct_features() {
        let mut names: Vec<&str> = Feature::ALL.iter().map(|f| f.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn insmix_has_nine_percentages_no_times() {
        let s = FeatureSet::insmix();
        assert_eq!(s.features().len(), 9);
        assert!(!s.contains(Feature::CpuTime));
        assert!(!s.contains(Feature::GpuTime));
        assert!(!s.contains(Feature::Fairness));
    }

    #[test]
    fn full_has_everything() {
        assert_eq!(FeatureSet::full().features().len(), 12);
    }

    #[test]
    fn with_is_idempotent() {
        let a = FeatureSet::insmix().with(Feature::CpuTime);
        let b = a.with(Feature::CpuTime);
        assert_eq!(a.features(), b.features());
    }

    #[test]
    fn union_merges_without_duplicates() {
        let u = FeatureSet::mem().union(&FeatureSet::arith_sse());
        assert_eq!(u.features().len(), 4);
        assert_eq!(u.name(), "mem+arith+sse");
    }

    #[test]
    #[should_panic(expected = "cannot be empty")]
    fn empty_set_rejected() {
        FeatureSet::new("x", &[]);
    }

    #[test]
    fn column_names_expand_per_slot() {
        let s = FeatureSet::new("t", &[Feature::GpuTime, Feature::Fairness]);
        assert_eq!(s.column_names(2), vec!["GPU_a", "GPU_b", "fairness"]);
    }

    #[test]
    fn column_roundtrip_to_base_feature() {
        for f in Feature::ALL {
            let s = FeatureSet::only(f);
            for col in s.column_names(2) {
                assert_eq!(
                    FeatureSet::base_feature_of_column(&col),
                    Some(f),
                    "column {col}"
                );
            }
        }
    }

    #[test]
    fn mem_rd_column_maps_correctly() {
        // `mem_rd_a` must map to MemRd, not be confused by inner underscores.
        assert_eq!(
            FeatureSet::base_feature_of_column("mem_rd_a"),
            Some(Feature::MemRd)
        );
        assert_eq!(
            FeatureSet::base_feature_of_column("fairness"),
            Some(Feature::Fairness)
        );
    }

    #[test]
    fn canonical_order_is_stable() {
        let s = FeatureSet::new("x", &[Feature::Fairness, Feature::CpuTime]);
        assert_eq!(s.features(), &[Feature::CpuTime, Feature::Fairness]);
    }
}
