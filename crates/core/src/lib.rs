//! Multi-application GPU performance prediction — the primary contribution
//! of *"Performance Prediction for Multi-Application Concurrency on GPUs"*
//! (ISPASS 2020).
//!
//! The predictor answers: *given a bag of applications about to be launched
//! concurrently on a GPU under MPS, how long will the bag take?* It learns a
//! decision-tree regression from features that are cheap to collect —
//! almost all on a multicore CPU server:
//!
//! | Feature | Source | Novel in the paper |
//! |---|---|---|
//! | CPU execution time | multicore server | no (prior single-app work) |
//! | instruction mix (9 classes) | PIN/MICA-style profiling | no |
//! | **single-instance GPU time** | one GPU run | **yes** |
//! | **fairness** (Eq. 2) | co-run IPC ratios on the CPU | **yes** |
//!
//! # Pipeline
//!
//! 1. [`Bag`] — two workloads to co-run (homogeneous or heterogeneous).
//! 2. [`Measurement`] — runs the workloads through the CPU and GPU timing
//!    models and collects every Table IV feature plus the ground-truth bag
//!    makespan.
//! 3. [`Corpus`] — the paper's §V-B data-point recipe: 45 homogeneous bags
//!    (9 benchmarks × 5 batch sizes), 36 heterogeneous pairs, and 10
//!    mixed-batch pairs = 91 runs.
//! 4. [`Predictor`] — trains a CART tree over a [`FeatureSet`] (any of the
//!    feature-scheme combinations of Figs. 5-9), predicts, evaluates, and
//!    exposes decision-path analysis (Figs. 10-12).
//! 5. [`nbag`] — the extension answering the paper's open problem: bags of
//!    more than two applications via order-statistic feature aggregation.
//!
//! # Example
//!
//! ```
//! use bagpred_core::{Corpus, FeatureSet, Predictor};
//!
//! let corpus = Corpus::paper().measure();
//! let mut predictor = Predictor::new(FeatureSet::full());
//! let report = predictor.loocv_by_benchmark(&corpus);
//! // The paper's headline: ~9% mean relative error with the full feature set.
//! assert!(report.mean_error_percent() < 35.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analysis;
mod bag;
mod corpus;
mod feature;
mod measure;
pub mod nbag;
pub mod parallel;
mod predictor;
pub mod schemes;

pub use analysis::{DecisionPathReport, FeatureUsage};
pub use bag::Bag;
pub use corpus::Corpus;
pub use feature::{Feature, FeatureSet};
pub use measure::{AppFeatures, Measurement, Platforms};
pub use predictor::{LoocvReport, ModelKind, Predictor};
