//! Extension: predicting bags of more than two applications.
//!
//! The paper limits bags to two applications because a variable-sized
//! feature vector "makes learning very difficult" and names scaling in the
//! number of applications as an open problem (§V-A1, §VII). This module
//! implements the natural solution: **order-statistic aggregation**. For
//! each per-application feature the vector carries its max, min and mean
//! across the bag — a fixed-length representation for any bag size — plus
//! the bag size itself and the fairness of the whole ensemble.
//!
//! The `nbag_scaling` extension experiment evaluates this predictor on bags
//! of two, three and four applications.

use crate::feature::Feature;
use crate::measure::{AppFeatures, Platforms};
use bagpred_cpusim::fairness;
use bagpred_ml::{Dataset, DecisionTreeRegressor, FlatTree, Regressor};
use bagpred_trace::{KernelProfile, SplitMix64};
use bagpred_workloads::{Benchmark, Workload, BATCH_SIZES, STANDARD_BATCH};
use serde::{Deserialize, Serialize};

/// Largest bag size supported by the extension.
pub const MAX_BAG: usize = 4;

/// A bag of `2..=MAX_BAG` workloads, canonically ordered.
///
/// # Example
///
/// ```
/// use bagpred_core::nbag::NBag;
/// use bagpred_workloads::{Benchmark, Workload};
///
/// let bag = NBag::new(vec![
///     Workload::new(Benchmark::Sift, 20),
///     Workload::new(Benchmark::Fast, 20),
///     Workload::new(Benchmark::Knn, 20),
/// ]);
/// assert_eq!(bag.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NBag {
    members: Vec<Workload>,
}

impl NBag {
    /// Creates a bag; members are sorted canonically.
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= members.len() <= MAX_BAG`.
    pub fn new(mut members: Vec<Workload>) -> Self {
        assert!(
            (2..=MAX_BAG).contains(&members.len()),
            "bag size must be in 2..={MAX_BAG}"
        );
        members.sort_by_key(|w| (w.benchmark().name(), w.batch_size()));
        Self { members }
    }

    /// Number of applications in the bag.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Always false: bags have at least two members.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The members, canonically ordered.
    pub fn members(&self) -> &[Workload] {
        &self.members
    }

    /// True when any member runs `benchmark`.
    pub fn involves(&self, benchmark: Benchmark) -> bool {
        self.members.iter().any(|w| w.benchmark() == benchmark)
    }

    /// A stable human-readable label.
    pub fn label(&self) -> String {
        self.members
            .iter()
            .map(|w| format!("{}@{}", w.benchmark(), w.batch_size()))
            .collect::<Vec<_>>()
            .join("+")
    }
}

/// A measured n-bag data point with aggregated features.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NBagMeasurement {
    bag: NBag,
    /// Aggregated features in [`NBagMeasurement::column_names`] order.
    features: Vec<f64>,
    fairness: f64,
    bag_gpu_time_s: f64,
}

/// Per-feature aggregates carried in the fixed-length vector. The `sum`
/// aggregate matters most for times: the summed solo GPU time is the
/// serialized-execution bound the makespan scales from.
const AGGREGATES: [&str; 4] = ["max", "min", "mean", "sum"];

impl NBagMeasurement {
    /// Column names of the aggregated feature vector.
    pub fn column_names() -> Vec<String> {
        let mut names = Vec::new();
        for f in Feature::ALL {
            if f.is_bag_level() {
                continue; // fairness appended separately
            }
            for agg in AGGREGATES {
                names.push(format!("{}_{agg}", f.name()));
            }
        }
        names.push("bag_size".to_string());
        names.push("fairness".to_string());
        names
    }

    /// Measures one n-bag: aggregates every per-application Table IV
    /// feature across the bag, computes Eq. 2 fairness over all members,
    /// and records the MPS makespan ground truth.
    pub fn collect(bag: NBag, platforms: &Platforms) -> Self {
        let profiles: Vec<KernelProfile> = bag.members().iter().map(Workload::profile).collect();
        let (features, fair) = Self::aggregate(&bag, &profiles, platforms);
        let bag_gpu_time_s = platforms.gpu().simulate_bag(&profiles).makespan_s();
        Self {
            bag,
            features,
            fairness: fair,
            bag_gpu_time_s,
        }
    }

    /// Measures one n-bag's feature vector *without* running the GPU bag
    /// simulation: the ground-truth field is `f64::NAN`.
    ///
    /// This is what an online prediction or admission-control request
    /// needs — the makespan is exactly the unknown being predicted, so
    /// collecting it would defeat the predictor's purpose (and cost a
    /// full multi-application GPU simulation per query). Never feed
    /// unlabeled measurements to [`NBagPredictor::train`].
    pub fn collect_unlabeled(bag: NBag, platforms: &Platforms) -> Self {
        let profiles: Vec<KernelProfile> = bag.members().iter().map(Workload::profile).collect();
        let (features, fair) = Self::aggregate(&bag, &profiles, platforms);
        Self {
            bag,
            features,
            fairness: fair,
            bag_gpu_time_s: f64::NAN,
        }
    }

    /// Assembles an unlabeled measurement from per-application features
    /// and a precomputed Eq. 2 fairness — bit-identical to
    /// [`Self::collect_unlabeled`], which re-profiles every member from
    /// scratch. This is the serving-layer fast path: a feature cache
    /// holds one [`AppFeatures`] per distinct workload (and one kernel
    /// profile per member for fairness), so a fresh candidate bag costs
    /// aggregation, not re-profiling.
    ///
    /// # Panics
    ///
    /// Panics unless `apps` carries exactly one entry per bag member, in
    /// the bag's canonical member order.
    pub fn from_apps_unlabeled(bag: NBag, apps: &[AppFeatures], fairness: f64) -> Self {
        assert_eq!(
            apps.len(),
            bag.len(),
            "one AppFeatures per member, in canonical order"
        );
        // The per-app row layout of `aggregate`: CPU time, GPU time, then
        // the nine mix percentages — exactly the `AppFeatures` fields.
        let per_app: Vec<Vec<f64>> = apps
            .iter()
            .map(|a| {
                let mut row = Vec::with_capacity(11);
                row.push(a.cpu_time_s);
                row.push(a.gpu_time_s);
                row.extend(a.mix_percent);
                row
            })
            .collect();
        let features = Self::aggregate_rows(&bag, &per_app, fairness);
        Self {
            bag,
            features,
            fairness,
            bag_gpu_time_s: f64::NAN,
        }
    }

    /// The order-statistic aggregation shared by labeled and unlabeled
    /// collection: per-feature max/min/mean/sum across the bag, plus bag
    /// size and Eq. 2 fairness.
    fn aggregate(bag: &NBag, profiles: &[KernelProfile], platforms: &Platforms) -> (Vec<f64>, f64) {
        // Per-application raw feature values.
        let per_app: Vec<Vec<f64>> = profiles
            .iter()
            .map(|p| {
                use bagpred_trace::InstrClass as C;
                let mix = p.mix();
                vec![
                    platforms.cpu().simulate_best(p).time_s,
                    platforms.gpu().simulate(p).time_s,
                    mix.percent(C::Load),
                    mix.percent(C::Store),
                    mix.percent(C::Control),
                    mix.percent(C::Alu),
                    mix.percent(C::Fp),
                    mix.percent(C::Stack),
                    mix.percent(C::Shift),
                    mix.percent(C::StringOp),
                    mix.percent(C::Sse),
                ]
            })
            .collect();
        let fair = fairness(platforms.cpu(), profiles);
        (Self::aggregate_rows(bag, &per_app, fair), fair)
    }

    /// Folds per-application rows into the fixed-length aggregate vector.
    fn aggregate_rows(bag: &NBag, per_app: &[Vec<f64>], fair: f64) -> Vec<f64> {
        let n_features = per_app[0].len();
        let mut features = Vec::with_capacity(n_features * AGGREGATES.len() + 2);
        for f in 0..n_features {
            let values: Vec<f64> = per_app.iter().map(|row| row[f]).collect();
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let sum: f64 = values.iter().sum();
            let mean = sum / values.len() as f64;
            features.extend([max, min, mean, sum]);
        }
        features.push(bag.len() as f64);
        features.push(fair);
        features
    }

    /// The measured bag.
    pub fn bag(&self) -> &NBag {
        &self.bag
    }

    /// The aggregated feature vector.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// The ensemble fairness (Eq. 2 over all members).
    pub fn fairness(&self) -> f64 {
        self.fairness
    }

    /// Ground truth: the bag's GPU makespan under MPS.
    pub fn bag_gpu_time_s(&self) -> f64 {
        self.bag_gpu_time_s
    }
}

/// Measures a set of n-bags in parallel on
/// [`crate::parallel::configured_threads`] scoped workers, returning
/// results in input order — bit-identical to the serial loop.
pub fn measure_nbags(bags: &[NBag], platforms: &Platforms) -> Vec<NBagMeasurement> {
    measure_nbags_threads(bags, platforms, crate::parallel::configured_threads())
}

/// [`measure_nbags`] with an explicit worker count.
pub fn measure_nbags_threads(
    bags: &[NBag],
    platforms: &Platforms,
    threads: usize,
) -> Vec<NBagMeasurement> {
    crate::parallel::parallel_map(bags, threads, |bag| {
        NBagMeasurement::collect(bag.clone(), platforms)
    })
}

/// Builds a mixed-size training corpus: homogeneous bags of 2..=4 instances
/// for every benchmark and batch size, plus `extra_heterogeneous` random
/// mixed bags (seeded, deterministic).
pub fn nbag_corpus(extra_heterogeneous: usize) -> Vec<NBag> {
    let mut bags = Vec::new();
    for bench in Benchmark::ALL {
        for batch in BATCH_SIZES {
            for n in 2..=MAX_BAG {
                bags.push(NBag::new(vec![Workload::new(bench, batch); n]));
            }
        }
    }
    let mut rng = SplitMix64::new(0x0ba6_9ba65);
    while bags.len() < Benchmark::ALL.len() * BATCH_SIZES.len() * 3 + extra_heterogeneous {
        let n = 2 + rng.next_below((MAX_BAG - 1) as u64) as usize;
        let members: Vec<Workload> = (0..n)
            .map(|_| Workload::new(Benchmark::ALL[rng.next_below(9) as usize], STANDARD_BATCH))
            .collect();
        let bag = NBag::new(members);
        if !bags.contains(&bag) {
            bags.push(bag);
        }
    }
    bags
}

/// The n-bag predictor: a CART tree over order-statistic aggregated
/// features — the extension answering the paper's open problem.
#[derive(Debug)]
pub struct NBagPredictor {
    tree: Option<DecisionTreeRegressor>,
    flat: Option<FlatTree>,
    max_depth: usize,
}

impl Default for NBagPredictor {
    fn default() -> Self {
        Self::new()
    }
}

impl NBagPredictor {
    /// Creates an untrained predictor.
    pub fn new() -> Self {
        Self {
            tree: None,
            flat: None,
            max_depth: 8,
        }
    }

    /// Sets the tree depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn with_max_depth(mut self, depth: usize) -> Self {
        assert!(depth > 0, "depth must be positive");
        self.max_depth = depth;
        self
    }

    /// The fitted decision tree, or `None` before training. Together with
    /// [`max_depth`](Self::max_depth) this is the predictor's entire
    /// trained state — what a serving snapshot persists.
    pub fn tree(&self) -> Option<&DecisionTreeRegressor> {
        self.tree.as_ref()
    }

    /// The configured maximum tree depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Rebuilds a *trained* n-bag predictor from snapshot parts, skipping
    /// corpus measurement and training.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn from_trained(depth: usize, tree: DecisionTreeRegressor) -> Self {
        assert!(depth > 0, "depth must be positive");
        Self {
            flat: FlatTree::from_tree(&tree),
            tree: Some(tree),
            max_depth: depth,
        }
    }

    fn dataset(records: &[NBagMeasurement]) -> Dataset {
        let mut data =
            Dataset::new(NBagMeasurement::column_names()).expect("column names are valid");
        for m in records {
            data.push_grouped(m.features().to_vec(), m.bag_gpu_time_s(), m.bag().label())
                .expect("measurements are finite");
        }
        data
    }

    /// Trains on a set of measured n-bags.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    pub fn train(&mut self, records: &[NBagMeasurement]) {
        assert!(!records.is_empty(), "training needs at least one record");
        let data = Self::dataset(records);
        let mut tree = DecisionTreeRegressor::new().with_max_depth(self.max_depth);
        tree.fit(&data).expect("non-empty dataset fits");
        self.flat = FlatTree::from_tree(&tree);
        self.tree = Some(tree);
    }

    /// Predicts the makespan (seconds) of a measured bag.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained.
    pub fn predict(&self, record: &NBagMeasurement) -> f64 {
        self.tree
            .as_ref()
            .expect("predictor must be trained")
            .predict(record.features())
    }

    /// Predicts makespans for a whole batch of measured bags via the
    /// compiled [`FlatTree`] — one walk per record over the already
    /// materialized feature vectors, no per-record allocation. Bit-identical
    /// to calling [`predict`](Self::predict) once per record.
    ///
    /// # Panics
    ///
    /// Panics if the predictor has not been trained.
    pub fn predict_batch(&self, records: &[NBagMeasurement]) -> Vec<f64> {
        assert!(self.tree.is_some(), "predictor must be trained");
        let rows: Vec<&[f64]> = records.iter().map(NBagMeasurement::features).collect();
        match self.flat.as_ref() {
            Some(flat) => flat.predict_batch(&rows),
            None => records.iter().map(|m| self.predict(m)).collect(),
        }
    }

    /// Mean relative error (%) over a record set.
    ///
    /// # Panics
    ///
    /// Panics if untrained or `records` is empty.
    pub fn evaluate(&self, records: &[NBagMeasurement]) -> f64 {
        let truth: Vec<f64> = records
            .iter()
            .map(NBagMeasurement::bag_gpu_time_s)
            .collect();
        let predicted = self.predict_batch(records);
        bagpred_ml::metrics::mean_relative_error(&truth, &predicted)
    }

    /// Leave-one-benchmark-out cross-validation over an n-bag corpus.
    /// Returns `(benchmark, error %, points)` per round.
    ///
    /// Folds train in parallel on
    /// [`crate::parallel::configured_threads`] workers (each on a fresh
    /// predictor with this depth); output order and values are
    /// bit-identical to the serial loop. The predictor's own trained state
    /// is left untouched.
    pub fn loocv_by_benchmark(
        &mut self,
        records: &[NBagMeasurement],
    ) -> Vec<(Benchmark, f64, usize)> {
        self.loocv_by_benchmark_threads(records, crate::parallel::configured_threads())
    }

    /// [`loocv_by_benchmark`](Self::loocv_by_benchmark) with an explicit
    /// worker count (`threads == 1` is the plain serial loop).
    pub fn loocv_by_benchmark_threads(
        &mut self,
        records: &[NBagMeasurement],
        threads: usize,
    ) -> Vec<(Benchmark, f64, usize)> {
        let folds: Vec<Benchmark> = Benchmark::ALL
            .iter()
            .copied()
            .filter(|&bench| {
                let held_out = records.iter().filter(|m| m.bag().involves(bench)).count();
                held_out > 0 && held_out < records.len()
            })
            .collect();
        let max_depth = self.max_depth;
        crate::parallel::parallel_map(&folds, threads, |&bench| {
            let (test, train): (Vec<_>, Vec<_>) = records
                .iter()
                .cloned()
                .partition(|m| m.bag().involves(bench));
            let mut fold = NBagPredictor::new().with_max_depth(max_depth);
            fold.train(&train);
            (bench, fold.evaluate(&test), test.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn small_records() -> &'static [NBagMeasurement] {
        static RECORDS: OnceLock<Vec<NBagMeasurement>> = OnceLock::new();
        RECORDS.get_or_init(|| {
            let platforms = Platforms::paper();
            let mut bags = Vec::new();
            for bench in Benchmark::ALL {
                for n in 2..=4usize {
                    bags.push(NBag::new(vec![Workload::new(bench, 4); n]));
                }
            }
            // A few heterogeneous triples.
            for i in 0..6 {
                bags.push(NBag::new(vec![
                    Workload::new(Benchmark::ALL[i], 4),
                    Workload::new(Benchmark::ALL[i + 3], 4),
                    Workload::new(Benchmark::ALL[(i + 5) % 9], 4),
                ]));
            }
            bags.into_iter()
                .map(|b| NBagMeasurement::collect(b, &platforms))
                .collect()
        })
    }

    #[test]
    #[should_panic(expected = "bag size must be in 2..=4")]
    fn oversized_bag_rejected() {
        NBag::new(vec![Workload::new(Benchmark::Fast, 4); 5]);
    }

    #[test]
    #[should_panic(expected = "bag size must be in 2..=4")]
    fn single_member_rejected() {
        NBag::new(vec![Workload::new(Benchmark::Fast, 4)]);
    }

    #[test]
    fn canonical_order_ignores_input_order() {
        let a = NBag::new(vec![
            Workload::new(Benchmark::Svm, 4),
            Workload::new(Benchmark::Fast, 4),
            Workload::new(Benchmark::Hog, 4),
        ]);
        let b = NBag::new(vec![
            Workload::new(Benchmark::Hog, 4),
            Workload::new(Benchmark::Svm, 4),
            Workload::new(Benchmark::Fast, 4),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.label(), "FAST@4+HoG@4+SVM@4");
    }

    #[test]
    fn feature_vector_is_fixed_length_across_sizes() {
        let names = NBagMeasurement::column_names();
        for m in small_records() {
            assert_eq!(m.features().len(), names.len(), "{}", m.bag().label());
        }
    }

    #[test]
    fn aggregates_are_consistent() {
        for m in small_records() {
            // For every feature group: min <= mean <= max <= sum (values
            // are non-negative).
            for chunk in m.features()[..44].chunks(4) {
                let (max, min, mean, sum) = (chunk[0], chunk[1], chunk[2], chunk[3]);
                assert!(min <= mean + 1e-12 && mean <= max + 1e-12);
                assert!(max <= sum + 1e-12);
            }
            assert!(m.fairness() > 0.0 && m.fairness() <= 1.0);
        }
    }

    #[test]
    fn unlabeled_collection_matches_labeled_features() {
        let platforms = Platforms::paper();
        let bag = NBag::new(vec![
            Workload::new(Benchmark::Sift, 4),
            Workload::new(Benchmark::Knn, 4),
            Workload::new(Benchmark::Hog, 4),
        ]);
        let labeled = NBagMeasurement::collect(bag.clone(), &platforms);
        let unlabeled = NBagMeasurement::collect_unlabeled(bag, &platforms);
        assert_eq!(labeled.features(), unlabeled.features());
        assert_eq!(labeled.fairness(), unlabeled.fairness());
        assert!(unlabeled.bag_gpu_time_s().is_nan());

        // An unlabeled measurement predicts identically to a labeled one.
        let mut p = NBagPredictor::new();
        p.train(small_records());
        assert_eq!(
            p.predict(&labeled).to_bits(),
            p.predict(&unlabeled).to_bits()
        );
    }

    #[test]
    fn snapshot_parts_rebuild_an_identical_nbag_predictor() {
        let mut original = NBagPredictor::new();
        original.train(small_records());
        let rebuilt =
            NBagPredictor::from_trained(original.max_depth(), original.tree().unwrap().clone());
        for m in small_records() {
            assert_eq!(
                rebuilt.predict(m).to_bits(),
                original.predict(m).to_bits(),
                "{}",
                m.bag().label()
            );
        }
    }

    #[test]
    fn bigger_bags_take_longer() {
        let platforms = Platforms::paper();
        let w = Workload::new(Benchmark::Surf, 4);
        let two = NBagMeasurement::collect(NBag::new(vec![w; 2]), &platforms);
        let four = NBagMeasurement::collect(NBag::new(vec![w; 4]), &platforms);
        assert!(four.bag_gpu_time_s() > two.bag_gpu_time_s());
    }

    #[test]
    fn predictor_fits_and_generalizes_in_sample() {
        let mut p = NBagPredictor::new();
        p.train(small_records());
        let err = p.evaluate(small_records());
        assert!(err < 15.0, "training error {err:.1}%");
    }

    #[test]
    fn loocv_runs_for_every_benchmark() {
        let mut p = NBagPredictor::new();
        let report = p.loocv_by_benchmark(small_records());
        assert_eq!(report.len(), 9);
        for (bench, err, n) in report {
            assert!(err.is_finite(), "{bench}");
            assert!(n >= 3, "{bench}: {n}");
        }
    }

    #[test]
    fn predict_batch_is_bit_identical_to_per_record_predict() {
        let mut p = NBagPredictor::new();
        p.train(small_records());
        let batch = p.predict_batch(small_records());
        assert_eq!(batch.len(), small_records().len());
        for (m, y) in small_records().iter().zip(&batch) {
            assert_eq!(y.to_bits(), p.predict(m).to_bits(), "{}", m.bag().label());
        }
    }

    #[test]
    fn parallel_loocv_reproduces_serial_report_exactly() {
        let mut p = NBagPredictor::new();
        let serial = p.loocv_by_benchmark_threads(small_records(), 1);
        for threads in [2, 4] {
            assert_eq!(
                p.loocv_by_benchmark_threads(small_records(), threads),
                serial
            );
        }
    }

    #[test]
    fn parallel_nbag_measurement_is_bit_identical_to_serial() {
        let platforms = Platforms::paper();
        let bags = nbag_corpus(10);
        let serial = measure_nbags_threads(&bags, &platforms, 1);
        assert_eq!(measure_nbags_threads(&bags, &platforms, 4), serial);
    }

    #[test]
    fn from_apps_unlabeled_is_bit_identical_to_collect_unlabeled() {
        let platforms = Platforms::paper();
        let bag = NBag::new(vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
            Workload::new(Benchmark::Orb, 10),
        ]);
        let direct = NBagMeasurement::collect_unlabeled(bag.clone(), &platforms);
        let apps: Vec<AppFeatures> = bag
            .members()
            .iter()
            .map(|w| AppFeatures::collect(w, &platforms))
            .collect();
        let profiles: Vec<KernelProfile> = bag.members().iter().map(Workload::profile).collect();
        let fair = fairness(platforms.cpu(), &profiles);
        let assembled = NBagMeasurement::from_apps_unlabeled(bag, &apps, fair);
        assert_eq!(assembled.features().len(), direct.features().len());
        for (a, d) in assembled.features().iter().zip(direct.features()) {
            assert_eq!(a.to_bits(), d.to_bits());
        }
        assert_eq!(assembled.fairness().to_bits(), direct.fairness().to_bits());
        assert!(assembled.bag_gpu_time_s().is_nan());
    }

    #[test]
    #[should_panic(expected = "one AppFeatures per member")]
    fn from_apps_unlabeled_rejects_mismatched_arity() {
        let platforms = Platforms::paper();
        let bag = NBag::new(vec![
            Workload::new(Benchmark::Sift, 20),
            Workload::new(Benchmark::Knn, 40),
        ]);
        let one = AppFeatures::collect(&Workload::new(Benchmark::Sift, 20), &platforms);
        NBagMeasurement::from_apps_unlabeled(bag, &[one], 1.0);
    }

    #[test]
    fn corpus_generator_is_deterministic_and_sized() {
        let a = nbag_corpus(20);
        let b = nbag_corpus(20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 9 * 5 * 3 + 20);
        // Every size is represented.
        for n in 2..=MAX_BAG {
            assert!(a.iter().any(|bag| bag.len() == n));
        }
    }
}
