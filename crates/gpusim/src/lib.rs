//! Analytical SIMT GPU timing model for the `bagpred` workspace.
//!
//! The ISPASS 2020 paper measures GPU execution times on an NVIDIA Tesla T4
//! (Turing) with CUDA MPS enabled, both for single instances and for bags of
//! concurrently-running applications. This crate reproduces that measurement
//! capability as a first-order analytical model in the tradition of Hong &
//! Kim's GPU model (the paper's reference [18]):
//!
//! * **Compute pipeline** — per-thread instruction throughput over the CUDA
//!   cores, scaled by occupancy (resident threads vs. data-parallel width)
//!   and SIMT efficiency (lane idling under branch divergence).
//! * **Memory pipeline** — DRAM traffic after an L2 capacity model, inflated
//!   by uncoalesced access, bounded by GDDR6 bandwidth.
//! * **Latency overlap** — compute and memory overlap in proportion to
//!   occupancy (abundant warps hide latency; starved SMs do not).
//! * **Fixed overheads** — kernel-launch latency and PCIe transfer time.
//! * **MPS multi-application interference** ([`GpuSimulator::simulate_bag`])
//!   — SM/L2/bandwidth partitioning across the bag plus the *destructive*
//!   terms the paper attributes the GPU's poor scaling to (citing MASK and
//!   Jog et al.): shared-TLB thrashing, L2 conflict inflation, and MPS
//!   scheduling overhead.
//!
//! # Example
//!
//! ```
//! use bagpred_gpusim::{GpuConfig, GpuSimulator};
//! use bagpred_workloads::{Benchmark, Workload};
//!
//! let sim = GpuSimulator::new(GpuConfig::tesla_t4());
//! let profile = Workload::new(Benchmark::Sift, 20).profile();
//! let solo = sim.simulate(&profile);
//!
//! // Two concurrent instances interfere destructively: each takes more
//! // than twice as long as running alone (the paper's Fig. 2).
//! let bag = sim.simulate_bag(&[profile.clone(), profile.clone()]);
//! assert!(bag.makespan_s() > 2.0 * solo.time_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod dynamic;
mod model;
mod mps;
mod temporal;

pub use config::GpuConfig;
pub use dynamic::DynamicBagExecution;
pub use model::{ExecutionBound, GpuExecution, GpuSimulator};
pub use mps::BagExecution;
pub use temporal::TemporalExecution;
