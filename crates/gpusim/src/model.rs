//! The single-application SIMT timing model.

use crate::config::GpuConfig;
use bagpred_trace::{InstrClass, KernelProfile};
use serde::{Deserialize, Serialize};

/// Which pipeline dominated an execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutionBound {
    /// CUDA-core instruction throughput dominated.
    Compute,
    /// DRAM bandwidth dominated.
    Memory,
    /// Fixed overheads (launches + PCIe transfer) dominated.
    Overhead,
}

/// Result of simulating one application on the GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuExecution {
    /// Total wall-clock time in seconds (kernels + overheads).
    pub time_s: f64,
    /// Time spent inside kernels.
    pub kernel_time_s: f64,
    /// Time spent on launches and PCIe transfers.
    pub overhead_s: f64,
    /// Achieved occupancy in `(0, 1]`.
    pub occupancy: f64,
    /// Modelled L2 miss rate over memory traffic.
    pub l2_miss_rate: f64,
    /// The dominating pipeline.
    pub bound: ExecutionBound,
}

/// Resource share granted to one application (full device when alone).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GpuShare {
    /// Fraction of SMs available, in `(0, 1]`.
    pub sm_fraction: f64,
    /// L2 bytes available to this app.
    pub l2_bytes: f64,
    /// DRAM bandwidth available to this app.
    pub bandwidth: f64,
    /// PCIe bandwidth available to this app (the bus is shared under MPS).
    pub pcie_bandwidth: f64,
    /// Multiplier on L2 misses from co-runner conflicts (1 = none).
    pub l2_interference: f64,
    /// Multiplier on launch latency from MPS scheduling (1 = none).
    pub schedule_inflation: f64,
    /// Multiplier on kernel time from cache-victim contention (1 = none).
    ///
    /// An application whose working set is comparable to the shared L2 is a
    /// contention *victim*: cache-polluting co-runners evict its resident
    /// lines and its whole kernel slows, beyond the capacity split.
    pub victim_slowdown: f64,
    /// Multiplier on the serial residue from device contention (1 = none).
    ///
    /// Between dependent launches, a lone app re-acquires the device
    /// immediately; in a bag, each dependent step waits behind co-runners'
    /// kernel bursts in the MPS queue.
    pub serial_inflation: f64,
    /// Multiplier on memory time from shared-TLB thrashing (1 = none).
    ///
    /// Co-runners' translation streams evict each other's TLB entries, so a
    /// fraction of memory accesses pay a page walk — modelled as a
    /// proportional slowdown of the memory pipeline.
    pub tlb_inflation: f64,
}

impl GpuShare {
    pub(crate) fn whole_device(config: &GpuConfig) -> Self {
        Self {
            sm_fraction: 1.0,
            l2_bytes: config.l2_bytes() as f64,
            bandwidth: config.dram_bandwidth(),
            pcie_bandwidth: config.pcie_bandwidth(),
            l2_interference: 1.0,
            schedule_inflation: 1.0,
            serial_inflation: 1.0,
            victim_slowdown: 1.0,
            tlb_inflation: 1.0,
        }
    }
}

/// Analytical SIMT GPU simulator.
///
/// See the [crate docs](crate) for the modelling rationale and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuSimulator {
    config: GpuConfig,
}

/// Per-thread instruction cost in core cycles on the SIMT pipeline.
fn class_cost(class: InstrClass) -> f64 {
    match class {
        // Vector ops decompose into per-lane scalar ops on a GPU.
        InstrClass::Sse => 1.0,
        InstrClass::Alu => 1.0,
        // Address generation; the data movement is priced by the memory pipe.
        InstrClass::Load => 1.0,
        InstrClass::Store => 1.0,
        InstrClass::Fp => 1.0,
        InstrClass::Stack => 1.2,
        InstrClass::StringOp => 4.0,
        InstrClass::Shift => 1.0,
        InstrClass::Control => 1.5,
    }
}

impl GpuSimulator {
    /// Creates a simulator over a device configuration.
    pub fn new(config: GpuConfig) -> Self {
        Self { config }
    }

    /// The device configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Simulates one application running alone on the whole device.
    pub fn simulate(&self, profile: &KernelProfile) -> GpuExecution {
        self.simulate_with_share(profile, GpuShare::whole_device(&self.config))
    }

    pub(crate) fn simulate_with_share(
        &self,
        profile: &KernelProfile,
        share: GpuShare,
    ) -> GpuExecution {
        let cfg = &self.config;

        // --- Occupancy: resident threads vs. available width. ---
        // MPS on Turing shares SMs rather than hard-partitioning them, so a
        // narrow kernel cannot reclaim a co-runner's resident-thread slots:
        // occupancy is always relative to the whole device, while the
        // throughput share (`sm_fraction`) reflects the co-run split.
        let resident_capacity = cfg.max_resident_threads() as f64;
        let occupancy = (profile.parallel_width() as f64 / resident_capacity).clamp(1e-4, 1.0);

        // --- Compute pipeline. ---
        let mix = profile.mix();
        let cpi: f64 = InstrClass::ALL
            .iter()
            .map(|&c| mix.percent(c) / 100.0 * class_cost(c))
            .sum();
        // Divergent branches idle a fraction of each warp's lanes.
        let simt_efficiency = 1.0 - 0.7 * profile.branch_divergence();
        let cores = cfg.cuda_cores() as f64 * share.sm_fraction;
        let instr = profile.total_instructions() as f64;
        // The serial residue (Amdahl) runs on a single lane of a single SM —
        // the structural reason iterative workloads (SVM epochs) lose to a
        // big out-of-order core.
        let par = profile.parallel_fraction();
        let parallel_throughput = cores * cfg.freq_hz() * occupancy * simt_efficiency;
        // The serial residue's dependent micro-launches dispatch through the
        // (contended) MPS server, so it inflates with scheduling pressure.
        let compute_time = instr * cpi * par / parallel_throughput
            + instr * (1.0 - par) / cfg.serial_throughput_ips() * share.serial_inflation;

        // --- Memory pipeline. ---
        let ws = profile.working_set_bytes() as f64;
        let l2_miss_rate = if ws <= share.l2_bytes {
            0.05 // streaming compulsory misses
        } else {
            (0.05 + 0.7 * (1.0 - share.l2_bytes / ws)).min(1.0)
        };
        let l2_miss_rate = (l2_miss_rate * share.l2_interference).min(1.0);
        // Uncoalesced accesses fetch whole sectors for single words.
        let coalescing = profile.coalescing().max(0.05);
        let dram_traffic = profile.bytes_total() as f64 * l2_miss_rate / coalescing;
        // Shared-TLB thrashing (multi-app only) slows the memory pipeline
        // proportionally: a fraction of accesses stall for page walks.
        let memory_time = dram_traffic / share.bandwidth * share.tlb_inflation;

        // --- Overlap: abundant warps hide memory latency behind compute. ---
        let hide = occupancy.sqrt();
        let kernel_time = (compute_time.max(memory_time)
            + (1.0 - hide) * compute_time.min(memory_time))
            * share.victim_slowdown;

        // --- Fixed overheads. ---
        let launch_time =
            profile.kernel_launches() as f64 * cfg.launch_latency_s() * share.schedule_inflation;
        let transfer_time = profile.transfer_bytes() as f64 / share.pcie_bandwidth;
        let overhead = launch_time + transfer_time;

        let time_s = kernel_time + overhead;
        let bound = if overhead >= compute_time.max(memory_time) {
            ExecutionBound::Overhead
        } else if memory_time > compute_time {
            ExecutionBound::Memory
        } else {
            ExecutionBound::Compute
        };

        GpuExecution {
            time_s,
            kernel_time_s: kernel_time,
            overhead_s: overhead,
            occupancy,
            l2_miss_rate,
            bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_trace::Profiler;
    use bagpred_workloads::{Benchmark, Workload};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tesla_t4())
    }

    fn profile(width: u64, divergence: f64, launches: u64) -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Fp, 50_000_000);
        p.read_bytes(100_000_000);
        KernelProfile::builder(p)
            .parallel_width(width)
            .parallel_fraction(0.999)
            .branch_divergence(divergence)
            .coalescing(0.9)
            .kernel_launches(launches)
            .transfer_bytes(1_000_000)
            .working_set_bytes(1 << 20)
            .build()
            .unwrap()
    }

    #[test]
    fn wide_kernels_saturate_occupancy() {
        let exec = sim().simulate(&profile(1 << 22, 0.1, 4));
        assert!((exec.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn narrow_kernels_underutilize() {
        let wide = sim().simulate(&profile(1 << 22, 0.1, 4));
        let narrow = sim().simulate(&profile(512, 0.1, 4));
        assert!(narrow.occupancy < 0.05);
        assert!(narrow.time_s > 3.0 * wide.time_s);
    }

    #[test]
    fn divergence_slows_compute() {
        let uniform = sim().simulate(&profile(1 << 22, 0.0, 4));
        let divergent = sim().simulate(&profile(1 << 22, 0.8, 4));
        assert!(divergent.time_s > uniform.time_s);
    }

    #[test]
    fn launches_add_fixed_cost() {
        let few = sim().simulate(&profile(1 << 22, 0.1, 2));
        let many = sim().simulate(&profile(1 << 22, 0.1, 2000));
        let expected = 1998.0 * sim().config().launch_latency_s();
        assert!((many.time_s - few.time_s - expected).abs() / expected < 0.01);
    }

    #[test]
    fn l2_overflow_inflates_memory_time() {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 1_000_000);
        p.read_bytes(4_000_000_000);
        let base = KernelProfile::builder(p);
        let mut small_builder = base.clone();
        let fits = small_builder
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .working_set_bytes(1 << 20)
            .build()
            .unwrap();
        let mut big_builder = base.clone();
        let spills = big_builder
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .working_set_bytes(1 << 30)
            .build()
            .unwrap();
        let t_fits = sim().simulate(&fits);
        let t_spills = sim().simulate(&spills);
        assert!(t_spills.l2_miss_rate > 5.0 * t_fits.l2_miss_rate);
        assert!(t_spills.time_s > t_fits.time_s);
    }

    #[test]
    fn bound_classification_is_consistent() {
        // Overhead-bound: tiny compute, many launches.
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 1_000);
        let tiny = KernelProfile::builder(p)
            .parallel_width(1 << 20)
            .kernel_launches(1_000)
            .build()
            .unwrap();
        assert_eq!(sim().simulate(&tiny).bound, ExecutionBound::Overhead);

        // Memory-bound: huge uncached traffic.
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 1_000_000);
        p.read_bytes(8_000_000_000);
        let memory = KernelProfile::builder(p)
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .working_set_bytes(1 << 30)
            .coalescing(0.2)
            .kernel_launches(1)
            .build()
            .unwrap();
        assert_eq!(sim().simulate(&memory).bound, ExecutionBound::Memory);
    }

    #[test]
    fn real_workloads_have_sane_times() {
        for b in Benchmark::ALL {
            let exec = sim().simulate(&Workload::new(b, 4).profile());
            assert!(
                exec.time_s > 1e-9 && exec.time_s < 100.0,
                "{b}: implausible {}",
                exec.time_s
            );
            assert!(exec.occupancy > 0.0 && exec.occupancy <= 1.0);
        }
    }

    #[test]
    fn gpu_time_grows_with_batch() {
        // Within the paper's batch range (20..320) occupancy is saturated
        // and more images mean more time. (Below ~10 images, added work can
        // be absorbed by rising occupancy instead.)
        for b in [Benchmark::Sift, Benchmark::Knn] {
            let small = sim().simulate(&Workload::new(b, 20).profile());
            let large = sim().simulate(&Workload::new(b, 80).profile());
            assert!(large.time_s > small.time_s, "{b}");
        }
    }
}
