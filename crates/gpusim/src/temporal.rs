//! Temporal multiplexing: the time-slicing alternative to MPS.
//!
//! Before spatial multiplexing, GPUs shared applications by interleaving
//! them at scheduling points (the paper's §II-A, citing Ausavarungnirun et
//! al.'s observation that performance degrades as concurrent applications
//! scale). This module models round-robin time slicing: each application
//! owns the whole device for a quantum, paying a preemption latency and a
//! cold-cache reload penalty at every switch.
//!
//! The `temporal_vs_spatial` extension experiment compares this against the
//! MPS model of [`GpuSimulator::simulate_bag`].

use crate::model::GpuSimulator;
use bagpred_trace::KernelProfile;
use serde::{Deserialize, Serialize};

/// Preemption/drain latency per context switch, seconds.
///
/// Kernel-granularity preemption must drain in-flight thread blocks and
/// swap contexts; tens of microseconds on hardware of the paper's era.
const SWITCH_LATENCY_S: f64 = 25e-6;

/// Result of time-slicing a bag of applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalExecution {
    /// Per-application turnaround time (submission to completion), seconds,
    /// in input order.
    pub turnaround_s: Vec<f64>,
    /// Time until the last application completes.
    pub makespan_s: f64,
    /// Total context switches performed.
    pub context_switches: u64,
}

impl TemporalExecution {
    /// The mean slowdown relative to the given solo times.
    ///
    /// # Panics
    ///
    /// Panics if `solo_times` has a different length than the schedule.
    pub fn mean_slowdown(&self, solo_times: &[f64]) -> f64 {
        assert_eq!(
            solo_times.len(),
            self.turnaround_s.len(),
            "one solo time per application is required"
        );
        let sum: f64 = self
            .turnaround_s
            .iter()
            .zip(solo_times)
            .map(|(t, s)| t / s)
            .sum();
        sum / solo_times.len() as f64
    }
}

impl GpuSimulator {
    /// Simulates round-robin temporal multiplexing of a bag with the given
    /// scheduling quantum.
    ///
    /// Each application executes alone on the whole device during its
    /// quantum (no spatial interference), but pays [`SWITCH_LATENCY_S`] plus
    /// an L2 reload penalty at each context switch — re-fetching its
    /// resident working set through DRAM.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty or `quantum_s` is not positive.
    pub fn simulate_time_sliced(
        &self,
        profiles: &[KernelProfile],
        quantum_s: f64,
    ) -> TemporalExecution {
        assert!(!profiles.is_empty(), "at least one profile is required");
        assert!(
            quantum_s > 0.0 && quantum_s.is_finite(),
            "quantum must be positive"
        );

        // Solo execution time of each app (whole device to itself).
        let mut remaining: Vec<f64> = profiles.iter().map(|p| self.simulate(p).time_s).collect();
        // Cache reload after a switch: the evicted working set re-streams
        // from DRAM.
        let reload: Vec<f64> = profiles
            .iter()
            .map(|p| {
                let resident = (p.working_set_bytes() as f64).min(self.config().l2_bytes() as f64);
                resident / self.config().dram_bandwidth()
            })
            .collect();

        let n = profiles.len();
        let mut turnaround = vec![0.0f64; n];
        let mut clock = 0.0f64;
        let mut switches = 0u64;
        let mut live = n;

        // A single app owns the device outright: no switching at all.
        if n == 1 {
            return TemporalExecution {
                turnaround_s: remaining,
                makespan_s: self.simulate(&profiles[0]).time_s,
                context_switches: 0,
            };
        }

        while live > 0 {
            for i in 0..n {
                if remaining[i] <= 0.0 {
                    continue;
                }
                // Context switch in (drain + state swap + cold L2).
                clock += SWITCH_LATENCY_S + reload[i];
                switches += 1;
                let slice = remaining[i].min(quantum_s);
                clock += slice;
                remaining[i] -= slice;
                if remaining[i] <= 0.0 {
                    turnaround[i] = clock;
                    live -= 1;
                }
            }
        }

        TemporalExecution {
            makespan_s: clock,
            turnaround_s: turnaround,
            context_switches: switches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use bagpred_trace::{InstrClass, Profiler};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tesla_t4())
    }

    fn profile(mega_instr: u64) -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Fp, mega_instr * 1_000_000);
        KernelProfile::builder(p)
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .working_set_bytes(2 << 20)
            .kernel_launches(4)
            .build()
            .unwrap()
    }

    #[test]
    fn single_app_pays_no_switches() {
        let p = profile(100);
        let solo = sim().simulate(&p).time_s;
        let sliced = sim().simulate_time_sliced(std::slice::from_ref(&p), 1e-3);
        assert_eq!(sliced.context_switches, 0);
        assert!((sliced.makespan_s - solo).abs() < 1e-12);
    }

    #[test]
    fn slicing_is_slower_than_solo_sum() {
        let a = profile(200);
        let b = profile(100);
        let solo_sum = sim().simulate(&a).time_s + sim().simulate(&b).time_s;
        let sliced = sim().simulate_time_sliced(&[a, b], 0.5e-3);
        assert!(
            sliced.makespan_s > solo_sum,
            "switch overheads must cost something: {} vs {}",
            sliced.makespan_s,
            solo_sum
        );
    }

    #[test]
    fn finer_quanta_cost_more_switches() {
        let bag = [profile(200), profile(200)];
        let coarse = sim().simulate_time_sliced(&bag, 2e-3);
        let fine = sim().simulate_time_sliced(&bag, 0.2e-3);
        assert!(fine.context_switches > coarse.context_switches);
        assert!(fine.makespan_s > coarse.makespan_s);
    }

    #[test]
    fn short_apps_finish_before_the_makespan() {
        // Quantum small enough that the long app needs several rounds while
        // the short one completes in its first slice.
        let long = profile(500);
        let short = profile(20);
        let sliced = sim().simulate_time_sliced(&[long, short], 20e-6);
        assert!(sliced.turnaround_s[1] < sliced.turnaround_s[0]);
        assert_eq!(sliced.makespan_s, sliced.turnaround_s[0]);
    }

    #[test]
    fn mean_slowdown_grows_with_bag_size() {
        // The degradation-with-scale observation the paper cites.
        let p = profile(150);
        let solo = sim().simulate(&p).time_s;
        let mut last = 0.0;
        for n in 2..=4usize {
            let bag: Vec<_> = (0..n).map(|_| p.clone()).collect();
            let sliced = sim().simulate_time_sliced(&bag, 1e-3);
            let slowdown = sliced.mean_slowdown(&vec![solo; n]);
            assert!(slowdown > last, "n={n}: {slowdown}");
            last = slowdown;
        }
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        sim().simulate_time_sliced(&[profile(1)], 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_bag_rejected() {
        sim().simulate_time_sliced(&[], 1e-3);
    }

    #[test]
    #[should_panic(expected = "one solo time per application")]
    fn mean_slowdown_length_mismatch() {
        let sliced = sim().simulate_time_sliced(&[profile(1)], 1e-3);
        sliced.mean_slowdown(&[1.0, 2.0]);
    }
}
