//! Multi-application (MPS) execution with destructive interference.

use crate::config::GpuConfig;
use crate::model::{GpuExecution, GpuShare, GpuSimulator};
use bagpred_trace::KernelProfile;
use serde::{Deserialize, Serialize};

/// Result of co-running a bag of applications under MPS.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BagExecution {
    per_app: Vec<GpuExecution>,
    makespan_s: f64,
}

impl BagExecution {
    /// Per-application executions, in input order.
    pub fn per_app(&self) -> &[GpuExecution] {
        &self.per_app
    }

    /// Time until the last application finishes — the quantity the paper's
    /// predictor learns to predict for a bag.
    pub fn makespan_s(&self) -> f64 {
        self.makespan_s
    }

    /// Aggregate throughput relative to a set of solo times: the sum over
    /// apps of `solo_time / shared_time`. Equals `n` under perfect
    /// isolation-scaled sharing, and falls below 1 under heavy destructive
    /// interference.
    ///
    /// # Panics
    ///
    /// Panics if `solo_times` has a different length than the bag.
    pub fn weighted_speedup(&self, solo_times: &[f64]) -> f64 {
        assert_eq!(
            solo_times.len(),
            self.per_app.len(),
            "one solo time per bag member is required"
        );
        self.per_app
            .iter()
            .zip(solo_times)
            .map(|(exec, &solo)| solo / exec.time_s)
            .sum()
    }
}

impl GpuSimulator {
    /// Simulates a bag of applications running concurrently under MPS
    /// spatial multiplexing.
    ///
    /// The model partitions SMs, L2 and DRAM bandwidth evenly (MPS provides
    /// no quality-of-service isolation, but a symmetric steady state is the
    /// standard first-order treatment) and adds the destructive-interference
    /// terms the paper highlights in §II:
    ///
    /// 1. **Shared TLB thrashing** — address translations of one app evict
    ///    entries of the others, adding a per-miss page-walk penalty that
    ///    grows with the bag size.
    /// 2. **L2 conflict inflation** — beyond losing capacity, co-runners
    ///    conflict in the shared L2 and at the memory controller.
    /// 3. **MPS scheduling overhead** — launch dispatch serializes in the
    ///    MPS server, inflating per-launch latency with bag size.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn simulate_bag(&self, profiles: &[KernelProfile]) -> BagExecution {
        assert!(!profiles.is_empty(), "at least one profile is required");
        let per_app: Vec<GpuExecution> = profiles
            .iter()
            .enumerate()
            .map(|(i, p)| self.simulate_with_share(p, bag_share_for(self.config(), profiles, i)))
            .collect();
        let makespan_s = per_app.iter().map(|e| e.time_s).fold(0.0f64, f64::max);
        BagExecution {
            per_app,
            makespan_s,
        }
    }
}

/// Computes the resource share of `profiles[me]` when co-running with the
/// rest of the bag.
///
/// Interference is *partner-dependent*: how much one application suffers
/// depends on what its co-runners demand — the interaction the paper's
/// predictor is designed to capture.
pub(crate) fn bag_share_for(cfg: &GpuConfig, profiles: &[KernelProfile], me: usize) -> GpuShare {
    let n = profiles.len() as f64;
    if profiles.len() <= 1 {
        return GpuShare::whole_device(cfg);
    }

    // Demand-proportional bandwidth arbitration (how GDDR controllers and
    // the PCIe bus behave), floored so no app starves completely.
    let demand = |p: &KernelProfile| p.bytes_total() as f64 + 1.0;
    let total_demand: f64 = profiles.iter().map(demand).sum();
    let my_bw_share = (demand(&profiles[me]) / total_demand).max(1.0 / (3.0 * n));
    let transfer = |p: &KernelProfile| p.transfer_bytes() as f64 + 1.0;
    let total_transfer: f64 = profiles.iter().map(transfer).sum();
    let my_pcie_share = (transfer(&profiles[me]) / total_transfer).max(1.0 / (2.0 * n));

    // Co-runners' working sets pressure the shared L2 (Jog et al.): conflict
    // misses grow with how much of the cache the partners want.
    let partner_ws: f64 = profiles
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != me)
        .map(|(_, p)| p.working_set_bytes() as f64)
        .sum();
    let l2 = cfg.l2_bytes() as f64;
    let l2_interference = 1.0 + 0.25 * (partner_ws / l2).min(2.5);

    // Cache-victim sensitivity peaks when the app's working set is about the
    // cache size: much smaller sets ride in registers/L1, much larger sets
    // miss regardless of the co-runners.
    let my_ws = profiles[me].working_set_bytes() as f64 + 1.0;
    let sensitivity = (my_ws / l2).min(l2 / my_ws).clamp(0.0, 1.0);
    let victim_slowdown = 1.0 + 0.45 * (partner_ws / l2).min(2.0) * sensitivity;

    GpuShare {
        // Compute throughput splits evenly: MPS interleaves everyone's warps
        // across the shared SMs.
        sm_fraction: 1.0 / n,
        l2_bytes: l2 / n,
        bandwidth: cfg.dram_bandwidth() * my_bw_share,
        pcie_bandwidth: cfg.pcie_bandwidth() * my_pcie_share,
        l2_interference,
        // MPS server serializes launch dispatch across clients.
        schedule_inflation: 1.0 + 0.35 * (n - 1.0),
        // Dependent serial steps wait behind co-runners' kernel bursts.
        serial_inflation: 1.0 + 0.85 * (n - 1.0),
        victim_slowdown,
        // Shared-TLB thrashing: co-runners' translation streams evict each
        // other's entries (the MASK paper's headline problem); pressure is
        // proportional to how memory-hungry the partners are.
        tlb_inflation: 1.0
            + 0.12
                * (n - 1.0)
                * (1.0 - demand(&profiles[me]) / total_demand)
                * (cfg.tlb_miss_penalty_s() / 0.6e-6).min(4.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_trace::{InstrClass, Profiler};
    use bagpred_workloads::{Benchmark, Workload};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tesla_t4())
    }

    fn wide_profile() -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Fp, 80_000_000);
        p.read_bytes(2_000_000_000);
        KernelProfile::builder(p)
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .coalescing(0.9)
            .branch_divergence(0.1)
            .kernel_launches(8)
            .transfer_bytes(4_000_000)
            .working_set_bytes(8 << 20) // spills the 4 MB L2
            .build()
            .unwrap()
    }

    #[test]
    fn bag_of_one_matches_solo() {
        let p = wide_profile();
        let solo = sim().simulate(&p);
        let bag = sim().simulate_bag(std::slice::from_ref(&p));
        assert!((bag.makespan_s() - solo.time_s).abs() < 1e-12);
    }

    #[test]
    fn sharing_is_destructive_not_just_divisive() {
        // Per-app time under 2-way sharing exceeds 2x the solo time: the
        // interference terms make the whole less than the sum of its parts.
        let p = wide_profile();
        let solo = sim().simulate(&p);
        let bag = sim().simulate_bag(&[p.clone(), p.clone()]);
        assert!(
            bag.per_app()[0].time_s > 2.0 * solo.time_s,
            "shared {} vs solo {}",
            bag.per_app()[0].time_s,
            solo.time_s
        );
    }

    #[test]
    fn aggregate_throughput_decreases_with_bag_size() {
        // The paper's Fig. 2: normalized GPU performance falls as instances
        // are added.
        let p = wide_profile();
        let solo = sim().simulate(&p).time_s;
        let mut last = f64::INFINITY;
        for n in 2..=4usize {
            let bag = sim().simulate_bag(&vec![p.clone(); n]);
            let agg = bag.weighted_speedup(&vec![solo; n]);
            assert!(agg < last, "aggregate must fall: n={n} agg={agg}");
            last = agg;
        }
    }

    #[test]
    fn makespan_is_max_of_members() {
        let a = wide_profile();
        let b = Workload::new(Benchmark::Fast, 4).profile();
        let bag = sim().simulate_bag(&[a, b]);
        let max = bag
            .per_app()
            .iter()
            .map(|e| e.time_s)
            .fold(0.0f64, f64::max);
        assert_eq!(bag.makespan_s(), max);
    }

    #[test]
    fn heterogeneous_members_are_reported_in_order() {
        let a = Workload::new(Benchmark::Sift, 4).profile();
        let b = Workload::new(Benchmark::Fast, 4).profile();
        let bag_ab = sim().simulate_bag(&[a.clone(), b.clone()]);
        let bag_ba = sim().simulate_bag(&[b, a]);
        assert!((bag_ab.per_app()[0].time_s - bag_ba.per_app()[1].time_s).abs() < 1e-12);
        assert!((bag_ab.makespan_s() - bag_ba.makespan_s()).abs() < 1e-12);
    }

    #[test]
    fn bag_makespan_correlates_with_solo_time() {
        // Insight 3 of the paper: single-instance GPU time is the strongest
        // signal for multi-instance GPU time.
        let s = sim();
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        for b in Benchmark::ALL {
            let p = Workload::new(b, 4).profile();
            let solo = s.simulate(&p).time_s;
            let bag = s.simulate_bag(&[p.clone(), p]);
            pairs.push((solo, bag.makespan_s()));
        }
        // Spearman rank correlation between solo time and bag makespan.
        let rank = |key: fn(&(f64, f64)) -> f64, pairs: &[(f64, f64)]| -> Vec<f64> {
            let mut order: Vec<usize> = (0..pairs.len()).collect();
            order.sort_by(|&i, &j| key(&pairs[i]).total_cmp(&key(&pairs[j])));
            let mut ranks = vec![0.0; pairs.len()];
            for (r, &i) in order.iter().enumerate() {
                ranks[i] = r as f64;
            }
            ranks
        };
        let ra = rank(|p| p.0, &pairs);
        let rb = rank(|p| p.1, &pairs);
        let n = pairs.len() as f64;
        let d2: f64 = ra.iter().zip(&rb).map(|(a, b)| (a - b) * (a - b)).sum();
        let rho = 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
        assert!(rho > 0.7, "solo/bag rank correlation too weak: {rho:.2}");
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_bag_rejected() {
        sim().simulate_bag(&[]);
    }

    #[test]
    #[should_panic(expected = "one solo time per bag member")]
    fn weighted_speedup_length_mismatch() {
        let p = wide_profile();
        let bag = sim().simulate_bag(&[p.clone(), p]);
        bag.weighted_speedup(&[1.0]);
    }
}
