//! Dynamic bag execution: resources are re-shared as applications finish.
//!
//! [`GpuSimulator::simulate_bag`] models a steady state in which every
//! member of the bag runs for the whole makespan — a standard first-order
//! treatment, but pessimistic for asymmetric bags: once the short
//! application completes, the survivor should get the whole device back.
//! This module simulates the bag in *phases*: within a phase the member
//! set is fixed and every live application progresses at the rate the
//! interference model gives it; at each completion the shares are
//! recomputed for the survivors.
//!
//! The `dynamic_release` ablation (extension experiment 6) quantifies how
//! much the steady-state simplification overstates makespans.

use crate::model::GpuSimulator;
use crate::mps::bag_share_for;
use bagpred_trace::KernelProfile;
use serde::{Deserialize, Serialize};

/// Result of dynamically simulating a bag with resource release.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicBagExecution {
    /// Per-application completion times (from bag launch), in input order.
    pub completion_s: Vec<f64>,
    /// Time until the last application completes.
    pub makespan_s: f64,
    /// Number of sharing phases simulated (= bag size for distinct
    /// finishers).
    pub phases: usize,
}

impl GpuSimulator {
    /// Simulates a bag with dynamic resource release: each time an
    /// application finishes, the remaining ones re-share the device.
    ///
    /// Within a phase, application `i` progresses at rate `1 / t_i` where
    /// `t_i` is its whole-run time under the current sharing configuration;
    /// the phase ends when the first live application reaches completion.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn simulate_bag_dynamic(&self, profiles: &[KernelProfile]) -> DynamicBagExecution {
        assert!(!profiles.is_empty(), "at least one profile is required");
        let n = profiles.len();
        let mut remaining = vec![1.0f64; n]; // fraction of work left
        let mut completion = vec![0.0f64; n];
        let mut live: Vec<usize> = (0..n).collect();
        let mut clock = 0.0f64;
        let mut phases = 0usize;

        while !live.is_empty() {
            phases += 1;
            // Whole-run time of each live app under the current member set.
            let members: Vec<KernelProfile> = live.iter().map(|&i| profiles[i].clone()).collect();
            let times: Vec<f64> = live
                .iter()
                .enumerate()
                .map(|(pos, _)| {
                    self.simulate_with_share(
                        &members[pos],
                        bag_share_for(self.config(), &members, pos),
                    )
                    .time_s
                })
                .collect();

            // Time until the first live app finishes at current rates.
            let dt = live
                .iter()
                .enumerate()
                .map(|(pos, &i)| remaining[i] * times[pos])
                .fold(f64::INFINITY, f64::min);
            clock += dt;

            let mut still_live = Vec::with_capacity(live.len());
            for (pos, &i) in live.iter().enumerate() {
                remaining[i] -= dt / times[pos];
                if remaining[i] <= 1e-12 {
                    completion[i] = clock;
                } else {
                    still_live.push(i);
                }
            }
            live = still_live;
        }

        DynamicBagExecution {
            makespan_s: clock,
            completion_s: completion,
            phases,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use bagpred_trace::{InstrClass, Profiler};

    fn sim() -> GpuSimulator {
        GpuSimulator::new(GpuConfig::tesla_t4())
    }

    fn profile(mega_instr: u64) -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Fp, mega_instr * 1_000_000);
        p.read_bytes(mega_instr * 2_000_000);
        KernelProfile::builder(p)
            .parallel_width(1 << 22)
            .parallel_fraction(0.999)
            .working_set_bytes(6 << 20)
            .kernel_launches(4)
            .transfer_bytes(1 << 20)
            .build()
            .unwrap()
    }

    #[test]
    fn single_app_matches_solo() {
        let p = profile(100);
        let solo = sim().simulate(&p).time_s;
        let dynamic = sim().simulate_bag_dynamic(std::slice::from_ref(&p));
        assert!((dynamic.makespan_s - solo).abs() < 1e-12);
        assert_eq!(dynamic.phases, 1);
    }

    #[test]
    fn homogeneous_bag_matches_steady_state() {
        // Identical apps finish together: no release happens, so the
        // dynamic makespan equals the static model's.
        let p = profile(150);
        let static_bag = sim().simulate_bag(&[p.clone(), p.clone()]);
        let dynamic = sim().simulate_bag_dynamic(&[p.clone(), p]);
        assert!(
            (dynamic.makespan_s - static_bag.makespan_s()).abs() < 1e-9 * static_bag.makespan_s()
        );
    }

    #[test]
    fn asymmetric_bag_benefits_from_release() {
        let long = profile(400);
        let short = profile(40);
        let static_bag = sim().simulate_bag(&[long.clone(), short.clone()]);
        let dynamic = sim().simulate_bag_dynamic(&[long.clone(), short.clone()]);
        // The long app reclaims the device after the short one exits.
        assert!(
            dynamic.makespan_s < static_bag.makespan_s(),
            "dynamic {} vs static {}",
            dynamic.makespan_s,
            static_bag.makespan_s()
        );
        // But never better than running the long app alone.
        let solo_long = sim().simulate(&long).time_s;
        assert!(dynamic.makespan_s > solo_long);
        assert_eq!(dynamic.phases, 2);
    }

    #[test]
    fn completion_order_follows_work() {
        let long = profile(400);
        let short = profile(40);
        let dynamic = sim().simulate_bag_dynamic(&[long, short]);
        assert!(dynamic.completion_s[1] < dynamic.completion_s[0]);
        assert_eq!(dynamic.makespan_s, dynamic.completion_s[0]);
    }

    #[test]
    fn dynamic_is_bounded_by_static_for_any_pair() {
        for (a, b) in [(100u64, 100u64), (300, 50), (50, 300), (500, 20)] {
            let pa = profile(a);
            let pb = profile(b);
            let static_ms = sim().simulate_bag(&[pa.clone(), pb.clone()]).makespan_s();
            let dynamic_ms = sim().simulate_bag_dynamic(&[pa, pb]).makespan_s;
            assert!(
                dynamic_ms <= static_ms * (1.0 + 1e-9),
                "{a}/{b}: dynamic {dynamic_ms} > static {static_ms}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_bag_rejected() {
        sim().simulate_bag_dynamic(&[]);
    }
}
