//! GPU machine configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the modelled GPU.
///
/// Defaults ([`GpuConfig::tesla_t4`]) follow the paper's Table III: an
/// NVIDIA Tesla T4 (Turing) with 2560 CUDA cores.
///
/// # Example
///
/// ```
/// use bagpred_gpusim::GpuConfig;
///
/// let t4 = GpuConfig::tesla_t4();
/// assert_eq!(t4.cuda_cores(), 2560);
/// let half = GpuConfig::builder().sms(20).build();
/// assert_eq!(half.cuda_cores(), 1280);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    sms: u32,
    cores_per_sm: u32,
    freq_ghz: f64,
    max_threads_per_sm: u32,
    l2_bytes: u64,
    dram_bw_bytes_per_s: f64,
    pcie_bw_bytes_per_s: f64,
    launch_latency_s: f64,
    tlb_reach_bytes: u64,
    tlb_miss_penalty_s: f64,
    serial_throughput_ips: f64,
}

impl GpuConfig {
    /// The paper's baseline GPU (Table III): Tesla T4.
    pub fn tesla_t4() -> Self {
        Self::builder().build()
    }

    /// Starts building a custom configuration.
    pub fn builder() -> GpuConfigBuilder {
        GpuConfigBuilder::default()
    }

    /// Number of streaming multiprocessors.
    pub fn sms(&self) -> u32 {
        self.sms
    }

    /// CUDA cores per SM.
    pub fn cores_per_sm(&self) -> u32 {
        self.cores_per_sm
    }

    /// Total CUDA cores.
    pub fn cuda_cores(&self) -> u32 {
        self.sms * self.cores_per_sm
    }

    /// Boost clock in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Boost clock in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_ghz * 1e9
    }

    /// Maximum resident threads per SM.
    pub fn max_threads_per_sm(&self) -> u32 {
        self.max_threads_per_sm
    }

    /// Maximum resident threads on the whole device.
    pub fn max_resident_threads(&self) -> u64 {
        self.sms as u64 * self.max_threads_per_sm as u64
    }

    /// Shared L2 cache capacity in bytes.
    pub fn l2_bytes(&self) -> u64 {
        self.l2_bytes
    }

    /// GDDR6 bandwidth in bytes per second.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bw_bytes_per_s
    }

    /// Effective host–device PCIe bandwidth in bytes per second.
    pub fn pcie_bandwidth(&self) -> f64 {
        self.pcie_bw_bytes_per_s
    }

    /// Fixed latency per kernel launch, in seconds.
    pub fn launch_latency_s(&self) -> f64 {
        self.launch_latency_s
    }

    /// Address range the (shared) TLB hierarchy can map at once.
    pub fn tlb_reach_bytes(&self) -> u64 {
        self.tlb_reach_bytes
    }

    /// Penalty of a TLB miss (page walk), in seconds.
    pub fn tlb_miss_penalty_s(&self) -> f64 {
        self.tlb_miss_penalty_s
    }

    /// Throughput of the serial residue of a workload, in instructions/s.
    ///
    /// The non-parallelizable fraction of a GPU workload — dependent
    /// iterations (SVM epochs), inter-stage reductions, pipeline
    /// synchronization — effectively executes at single-lane speed between
    /// dependent kernel launches, roughly one instruction per device clock.
    /// This is the structural reason iterative workloads lose to a big
    /// out-of-order CPU core even when their parallel phase flies.
    pub fn serial_throughput_ips(&self) -> f64 {
        self.serial_throughput_ips
    }
}

/// Builder for [`GpuConfig`]; see [`GpuConfig::builder`].
#[derive(Debug, Clone)]
pub struct GpuConfigBuilder {
    config: GpuConfig,
}

impl Default for GpuConfigBuilder {
    fn default() -> Self {
        Self {
            config: GpuConfig {
                sms: 40,
                cores_per_sm: 64,
                freq_ghz: 1.59,
                max_threads_per_sm: 1024,
                l2_bytes: 4 * 1024 * 1024,
                dram_bw_bytes_per_s: 320e9,
                // PCIe 3.0 x16 effective for pageable-memory copies.
                pcie_bw_bytes_per_s: 6e9,
                launch_latency_s: 8e-6,
                tlb_reach_bytes: 512 * 2 * 1024 * 1024, // 512 x 2 MB entries
                tlb_miss_penalty_s: 0.6e-6,
                serial_throughput_ips: 1.0e9,
            },
        }
    }
}

impl GpuConfigBuilder {
    /// Sets the SM count.
    ///
    /// # Panics
    ///
    /// Panics if `sms` is zero.
    pub fn sms(mut self, sms: u32) -> Self {
        assert!(sms > 0, "SM count must be positive");
        self.config.sms = sms;
        self
    }

    /// Sets the CUDA cores per SM.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cores_per_sm(mut self, cores: u32) -> Self {
        assert!(cores > 0, "cores per SM must be positive");
        self.config.cores_per_sm = cores;
        self
    }

    /// Sets the boost clock in GHz.
    ///
    /// # Panics
    ///
    /// Panics unless `ghz` is positive and finite.
    pub fn freq_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0 && ghz.is_finite(), "frequency must be positive");
        self.config.freq_ghz = ghz;
        self
    }

    /// Sets the maximum resident threads per SM.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn max_threads_per_sm(mut self, threads: u32) -> Self {
        assert!(threads > 0, "resident threads must be positive");
        self.config.max_threads_per_sm = threads;
        self
    }

    /// Sets the L2 capacity in bytes.
    pub fn l2_bytes(mut self, bytes: u64) -> Self {
        self.config.l2_bytes = bytes;
        self
    }

    /// Sets the DRAM bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn dram_bandwidth(mut self, bytes_per_s: f64) -> Self {
        assert!(
            bytes_per_s > 0.0 && bytes_per_s.is_finite(),
            "bandwidth must be positive"
        );
        self.config.dram_bw_bytes_per_s = bytes_per_s;
        self
    }

    /// Sets the PCIe bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn pcie_bandwidth(mut self, bytes_per_s: f64) -> Self {
        assert!(
            bytes_per_s > 0.0 && bytes_per_s.is_finite(),
            "bandwidth must be positive"
        );
        self.config.pcie_bw_bytes_per_s = bytes_per_s;
        self
    }

    /// Sets the kernel-launch latency in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless non-negative and finite.
    pub fn launch_latency_s(mut self, seconds: f64) -> Self {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "latency must be non-negative"
        );
        self.config.launch_latency_s = seconds;
        self
    }

    /// Sets the TLB reach in bytes.
    pub fn tlb_reach_bytes(mut self, bytes: u64) -> Self {
        self.config.tlb_reach_bytes = bytes;
        self
    }

    /// Sets the TLB miss penalty in seconds.
    ///
    /// # Panics
    ///
    /// Panics unless non-negative and finite.
    pub fn tlb_miss_penalty_s(mut self, seconds: f64) -> Self {
        assert!(
            seconds >= 0.0 && seconds.is_finite(),
            "penalty must be non-negative"
        );
        self.config.tlb_miss_penalty_s = seconds;
        self
    }

    /// Sets the serial-residue throughput in instructions per second.
    ///
    /// # Panics
    ///
    /// Panics unless positive and finite.
    pub fn serial_throughput_ips(mut self, ips: f64) -> Self {
        assert!(ips > 0.0 && ips.is_finite(), "throughput must be positive");
        self.config.serial_throughput_ips = ips;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> GpuConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t4_matches_table_iii() {
        let c = GpuConfig::tesla_t4();
        assert_eq!(c.cuda_cores(), 2560);
        assert_eq!(c.sms(), 40);
        assert_eq!(c.max_resident_threads(), 40 * 1024);
    }

    #[test]
    fn builder_overrides() {
        let c = GpuConfig::builder()
            .sms(10)
            .cores_per_sm(32)
            .freq_ghz(1.0)
            .build();
        assert_eq!(c.cuda_cores(), 320);
        assert!((c.freq_hz() - 1e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "SM count must be positive")]
    fn zero_sms_rejected() {
        GpuConfig::builder().sms(0);
    }

    #[test]
    #[should_panic(expected = "latency must be non-negative")]
    fn negative_launch_latency_rejected() {
        GpuConfig::builder().launch_latency_s(-1.0);
    }
}
