use bagpred_cpusim::{CpuConfig, CpuSimulator};
use bagpred_gpusim::{GpuConfig, GpuSimulator};
use bagpred_workloads::{Benchmark, Workload};

#[test]
#[ignore]
fn probe() {
    let cpu = CpuSimulator::new(CpuConfig::xeon_gold_5118());
    let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
    for b in Benchmark::ALL {
        let p = Workload::new(b, 20).profile();
        let c = cpu.simulate_best(&p);
        let g = gpu.simulate(&p);
        let bag = gpu.simulate_bag(&[p.clone(), p.clone()]);
        eprintln!(
            "{:8} cpu={:10.3}us gpu={:10.3}us ratio(gpu/cpu perf)={:6.2} gpu_bound={:?} occ={:.3} bag2/solo={:5.2}",
            b.name(),
            c.time_s * 1e6,
            g.time_s * 1e6,
            c.time_s / g.time_s,
            g.bound,
            g.occupancy,
            bag.makespan_s() / g.time_s
        );
    }
}
