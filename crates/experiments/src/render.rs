//! Plain-text table rendering for experiment output.

/// A simple fixed-width text table.
///
/// # Example
///
/// ```
/// use bagpred_experiments::TextTable;
///
/// let mut t = TextTable::new(vec!["name".into(), "value".into()]);
/// t.row(vec!["alpha".into(), "1".into()]);
/// let s = t.render();
/// assert!(s.contains("alpha"));
/// assert!(s.contains("name"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let emit = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                for _ in cell.len()..widths[c] {
                    out.push(' ');
                }
            }
            // Trim the trailing padding of the last column.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        emit(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            emit(&mut out, row);
        }
        out
    }
}

/// Formats a time in seconds with an adaptive unit.
pub(crate) fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{:.1} us", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxxx".into(), "1".into()]);
        t.row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new(vec!["a".into()]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn time_units_adapt() {
        assert_eq!(format_time(2.5), "2.500 s");
        assert_eq!(format_time(0.0025), "2.500 ms");
        assert_eq!(format_time(0.0000025), "2.5 us");
    }
}
