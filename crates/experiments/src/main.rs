//! `repro` — regenerate the paper's tables and figures, or serve the
//! trained predictor online.
//!
//! ```text
//! repro <artifact>...
//! repro all
//! repro --list
//! repro serve [ADDR] [--models DIR] [--admin] [--unsharded] [--metrics-addr ADDR]
//!             [--slow-threshold-ms MS] [--read-timeout-ms MS] [--write-timeout-ms MS]
//! repro bench [--smoke] [--json] [--out FILE] [--baseline FILE] [--max-regression X]
//!             [--fleet FILE]
//! repro fleet [--policy ffd|solo|all] [--gpus K,K,...] [--duration S] [--rate R]
//!             [--amplitude A] [--period S] [--patience S] [--budget S] [--seed N]
//!             [--window N] [--gap-instances N] [--gap-slack X] [--no-gap] [--smoke]
//!             [--json] [--out FILE]
//! repro soak [--smoke] [--seed N] [--clients N] [--requests N] [--digest]
//! ```
//!
//! Artifacts: `fig1` … `fig12`, `table2`, `table3`, `table4`,
//! `ext1` … `ext9`, `summary`, `all`. `--list` prints the machine-readable
//! artifact list (one per line) without measuring anything. `serve` trains
//! the pair + n-bag models (or loads snapshots from `--models DIR`) and
//! answers the line protocol documented in `bagpred_serve::protocol` on
//! `ADDR` (default `127.0.0.1:7878`). The filesystem-touching
//! `load`/`save`/`reload` commands (and the slow-request `trace` dump)
//! are refused unless `--admin` is given (and even then file paths
//! resolve only inside the `--models` directory). `--unsharded`
//! collapses the per-model engine shards into one shared queue and
//! worker pool (the pre-sharding behaviour, kept for A/B latency
//! comparisons). `--metrics-addr`
//! starts a second listener answering HTTP scrapes with the Prometheus
//! text exposition; `--slow-threshold-ms` sets the latency at which a
//! request's span breakdown is kept for `trace` (default 25). `bench`
//! runs the pipeline benchmark harness and writes `BENCH_pipeline.json`
//! (`--fleet FILE` additionally merges a fleet report into the `--json`
//! stdout — the written file stays pipeline-only so the committed
//! regression baseline is never clobbered). `fleet` replays a synthetic
//! diurnal arrival trace through the admission stack across policies and
//! fleet sizes and writes `BENCH_fleet.json` (see `bagpred_fleet`).
//! `soak` runs the deterministic chaos soak (multi-site fault storm,
//! hedging clients, conservation invariants — see
//! `bagpred_experiments::soak`); `--digest` prints only the bit-stable
//! digest line for two-run determinism comparison, and the exit code is
//! 1 when an invariant fails.

use bagpred_experiments::{
    accuracy, bench, extensions, paths, scaling, sensitivity, tables, Context,
};
use bagpred_serve::{
    bootstrap, MetricsServer, PredictionService, Server, ServerConfig, ServiceConfig,
};
use std::sync::Arc;

const ARTIFACTS: [&str; 25] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "table2", "table3", "table4", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6", "ext7",
    "ext8", "ext9", "summary",
];

fn run(artifact: &str, ctx: &Context) -> Result<String, String> {
    Ok(match artifact {
        "fig1" => scaling::figure1(ctx).render(),
        "fig2" => scaling::figure2(ctx).render(),
        "fig3" => scaling::figure3(ctx).render(),
        "fig4" => accuracy::figure4(ctx).render(),
        "fig5" => accuracy::figure5(ctx).render(),
        "fig6" => sensitivity::figure6(ctx).render(),
        "fig7" => sensitivity::figure7(ctx).render(),
        "fig8" => sensitivity::figure8(ctx).render(),
        "fig9" => sensitivity::figure9(ctx).render(),
        "fig10" => paths::figure10(ctx).render(),
        "fig11" => paths::figure11(ctx).render(),
        "fig12" => paths::figure12(ctx).render_snapshot(26),
        "table2" => tables::table2(ctx).render(),
        "table3" => tables::table3(ctx).render(),
        "table4" => tables::table4(ctx).render(),
        "ext1" => extensions::temporal_vs_spatial(ctx).render(),
        "ext2" => extensions::nbag_scaling().render(),
        "ext3" => extensions::model_comparison(ctx).render(),
        "ext4" => extensions::noise_robustness(ctx).render(),
        "ext5" => extensions::benchmark_similarity(ctx).render(),
        "ext6" => extensions::dynamic_release(ctx).render(),
        "ext7" => extensions::thread_sensitivity(ctx).render(),
        "ext8" => extensions::fleet_capacity().render(),
        "ext9" => extensions::online_observability_live(ctx).render(),
        "summary" => summary(ctx),
        other => return Err(format!("unknown artifact `{other}`")),
    })
}

/// One-screen headline comparison against the paper.
fn summary(ctx: &Context) -> String {
    let fig4 = accuracy::figure4(ctx);
    let fig5 = accuracy::figure5(ctx);
    let fig10 = paths::figure10(ctx);
    let gpu_presence = fig10
        .presence
        .iter()
        .find(|(n, _)| n == "GPU")
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    let mut out = String::from("Headline summary (paper vs measured)\n");
    out.push_str(&format!(
        "  LOOCV mean error, full features:   paper  9.0%   measured {:>6.2}%\n",
        fig4.mean_error_percent
    ));
    for s in &fig5.schemes {
        out.push_str(&format!(
            "  {:<34} paper {:>5.1}%  measured {:>7.2}%\n",
            s.scheme,
            s.paper_percent.unwrap_or(f64::NAN),
            s.measured_percent
        ));
    }
    out.push_str(&format!(
        "  GPU time in decision paths:        paper 100%    measured {gpu_presence:>6.1}%\n"
    ));
    out.push_str("  (full comparison: EXPERIMENTS.md; regenerate with `repro all`)\n");
    out
}

fn serve(args: &[String]) -> ! {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut models_dir: Option<std::path::PathBuf> = None;
    let mut read_timeout_ms: u64 = 250;
    let mut write_timeout_ms: u64 = 5_000;
    let mut admin = false;
    let mut sharded = true;
    let mut metrics_addr: Option<String> = None;
    let mut slow_threshold_ms: Option<u64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--models" => match it.next() {
                Some(dir) => models_dir = Some(std::path::PathBuf::from(dir)),
                None => {
                    eprintln!("error: --models needs a directory");
                    std::process::exit(2);
                }
            },
            "--metrics-addr" => match it.next() {
                Some(a) => metrics_addr = Some(a.to_string()),
                None => {
                    eprintln!("error: --metrics-addr needs an address (e.g. 127.0.0.1:9090)");
                    std::process::exit(2);
                }
            },
            "--slow-threshold-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) => slow_threshold_ms = Some(ms),
                _ => {
                    eprintln!("error: --slow-threshold-ms needs a non-negative integer");
                    std::process::exit(2);
                }
            },
            "--read-timeout-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms > 0 => read_timeout_ms = ms,
                _ => {
                    eprintln!("error: --read-timeout-ms needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--write-timeout-ms" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms > 0 => write_timeout_ms = ms,
                _ => {
                    eprintln!("error: --write-timeout-ms needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--admin" => admin = true,
            "--unsharded" => sharded = false,
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown serve flag `{flag}`");
                eprintln!(
                    "usage: repro serve [ADDR] [--models DIR] [--admin] [--unsharded] \
                     [--metrics-addr ADDR] [--slow-threshold-ms MS] \
                     [--read-timeout-ms MS] [--write-timeout-ms MS]"
                );
                std::process::exit(2);
            }
            positional => addr = positional.to_string(),
        }
    }
    if admin && models_dir.is_none() {
        eprintln!(
            "error: --admin needs --models DIR \
             (load/save/reload paths are confined to that directory)"
        );
        std::process::exit(2);
    }

    // Claim the ports before training: a bind conflict should fail in
    // milliseconds, not after a multi-second training run.
    let listener = match std::net::TcpListener::bind(addr.as_str()) {
        Ok(listener) => listener,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            std::process::exit(2);
        }
    };
    let metrics_listener = metrics_addr.as_deref().map(|metrics_addr| {
        match std::net::TcpListener::bind(metrics_addr) {
            Ok(listener) => listener,
            Err(e) => {
                eprintln!("error: cannot bind metrics address {metrics_addr}: {e}");
                std::process::exit(2);
            }
        }
    });
    // Arm the fault plan (deterministic fault injection for robustness
    // drills) before training: a typo'd BAGPRED_FAULTS spec should fail
    // fast, and an *armed* plan deserves a loud warning line.
    let faults = match bagpred_serve::FaultPlan::from_env() {
        Ok(plan) => Arc::new(plan),
        Err(e) => {
            eprintln!("error: bad BAGPRED_FAULTS spec: {e}");
            std::process::exit(2);
        }
    };
    if faults.is_armed() {
        eprintln!(
            "warning: fault injection ARMED via BAGPRED_FAULTS — \
             this process will deliberately misbehave"
        );
    }
    let platforms = bagpred_core::Platforms::paper();
    eprintln!("booting models (loads snapshots, or trains on first run)...");
    let boot = match bootstrap::load_or_train(&platforms, models_dir.as_deref()) {
        Ok(boot) => boot,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let registry = boot.registry;
    for path in &boot.quarantined {
        eprintln!(
            "warning: quarantined corrupt snapshot {} (moved aside; retrain or restore it)",
            path.display()
        );
    }
    match boot.source {
        bootstrap::BootSource::Loaded(n) => {
            let dir = models_dir.as_deref().expect("loaded implies a dir");
            eprintln!("loaded {n} model snapshot(s) from {}", dir.display());
        }
        bootstrap::BootSource::Trained(writeback) => {
            eprintln!("trained models on the paper corpus");
            report_writeback(writeback, models_dir.as_deref());
        }
        bootstrap::BootSource::Repaired {
            loaded,
            retrained,
            writeback,
        } => {
            let dir = models_dir.as_deref().expect("repaired implies a dir");
            eprintln!(
                "loaded {loaded} model snapshot(s) from {}; retrained {retrained} missing model(s)",
                dir.display()
            );
            report_writeback(writeback, Some(dir));
        }
    }
    let mut config = ServiceConfig {
        // `save`/`reload` without path= read and write here.
        snapshot_dir: models_dir.clone(),
        faults,
        sharded,
        ..ServiceConfig::default()
    };
    if let Some(ms) = slow_threshold_ms {
        config.slow_request_threshold = std::time::Duration::from_millis(ms);
    }
    let service = PredictionService::start(registry, platforms, config);
    let server = match Server::serve_listener_with(
        listener,
        Arc::clone(&service),
        ServerConfig {
            read_timeout: std::time::Duration::from_millis(read_timeout_ms),
            write_timeout: std::time::Duration::from_millis(write_timeout_ms),
            admin,
        },
    ) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot serve on {addr}: {e}");
            std::process::exit(2);
        }
    };
    let metrics_server = metrics_listener.map(|listener| {
        match MetricsServer::serve_listener(listener, Arc::clone(&service)) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("error: cannot serve metrics: {e}");
                std::process::exit(2);
            }
        }
    });
    println!("serving on {}", server.local_addr());
    if let Some(metrics_server) = &metrics_server {
        println!(
            "metrics on http://{} (also: `metrics` wire command)",
            metrics_server.local_addr()
        );
    }
    if admin {
        println!(
            "commands: predict A@N+B@M | schedule k=K budget=S A@N ... | \
             observe id=I actual_us=N | stats [model=NAME] | models | health | \
             metrics | trace | load model=NAME path=FILE | \
             save [model=NAME] [path=DEST] | reload model=NAME [path=FILE] | quit \
             (any request also takes deadline_ms=N)"
        );
        println!(
            "admin enabled: load/save/reload paths resolve inside {}",
            models_dir
                .as_deref()
                .expect("--admin requires --models")
                .display()
        );
    } else {
        println!(
            "commands: predict A@N+B@M | schedule k=K budget=S A@N ... | \
             observe id=I actual_us=N | stats [model=NAME] | models | health | \
             metrics | quit (any request also takes deadline_ms=N; \
             load/save/reload/trace need --admin)"
        );
    }
    // Serve until killed; connections and workers run on their own threads.
    loop {
        std::thread::park();
    }
}

/// Reports how a boot's snapshot write-back went (shared by the trained
/// and repaired boot paths).
fn report_writeback(writeback: bootstrap::SnapshotWriteback, dir: Option<&std::path::Path>) {
    match writeback {
        bootstrap::SnapshotWriteback::Skipped => {}
        bootstrap::SnapshotWriteback::Saved(n) => {
            let dir = dir.expect("saved implies a dir");
            eprintln!("saved {n} snapshot(s) to {}", dir.display());
        }
        bootstrap::SnapshotWriteback::Failed(e) => {
            eprintln!("warning: could not save snapshots: {e}");
        }
    }
}

/// `repro bench`: run the pipeline harness, write the JSON report, and
/// optionally gate on a committed baseline.
fn run_bench(args: &[String]) -> ! {
    let mut options = bench::BenchOptions::default();
    let mut json_stdout = false;
    let mut out_path = std::path::PathBuf::from("BENCH_pipeline.json");
    let mut baseline: Option<std::path::PathBuf> = None;
    let mut fleet: Option<std::path::PathBuf> = None;
    let mut max_ratio = 2.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => options.smoke = true,
            "--json" => json_stdout = true,
            "--out" => match it.next() {
                Some(path) => out_path = std::path::PathBuf::from(path),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("error: --baseline needs a file path");
                    std::process::exit(2);
                }
            },
            "--fleet" => match it.next() {
                Some(path) => fleet = Some(std::path::PathBuf::from(path)),
                None => {
                    eprintln!("error: --fleet needs a fleet report file");
                    std::process::exit(2);
                }
            },
            "--max-regression" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(ratio)) if ratio >= 1.0 => max_ratio = ratio,
                _ => {
                    eprintln!("error: --max-regression needs a ratio >= 1.0");
                    std::process::exit(2);
                }
            },
            flag => {
                eprintln!("error: unknown bench flag `{flag}`");
                eprintln!(
                    "usage: repro bench [--smoke] [--json] [--out FILE] \
                     [--baseline FILE] [--max-regression X] [--fleet FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    eprintln!(
        "benchmarking the pipeline ({} mode, {} thread(s))...",
        if options.smoke { "smoke" } else { "full" },
        bagpred_core::parallel::configured_threads()
    );
    let report = bench::run(&options);
    let json = report.to_json();
    // The written file stays pipeline-only: the committed regression
    // baseline must never absorb fleet keys. The merge only affects the
    // combined `--json` view below.
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    }
    if json_stdout {
        let combined = match &fleet {
            Some(fleet_path) => {
                let fleet_json = match std::fs::read_to_string(fleet_path) {
                    Ok(text) => text,
                    Err(e) => {
                        eprintln!("error: cannot read {}: {e}", fleet_path.display());
                        std::process::exit(2);
                    }
                };
                match bench::merge_fleet(&json, &fleet_json) {
                    Ok(merged) => merged,
                    Err(e) => {
                        eprintln!("error: cannot merge {}: {e}", fleet_path.display());
                        std::process::exit(2);
                    }
                }
            }
            None => json.clone(),
        };
        print!("{combined}");
    } else {
        print!("{}", report.render());
        if fleet.is_some() {
            eprintln!("note: --fleet only affects --json output");
        }
    }
    eprintln!("report written to {}", out_path.display());

    if let Some(baseline_path) = baseline {
        let baseline_json = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!(
                    "error: cannot read baseline {}: {e}",
                    baseline_path.display()
                );
                std::process::exit(2);
            }
        };
        let complaints = bench::regressions(&report, &baseline_json, max_ratio);
        if !complaints.is_empty() {
            for complaint in &complaints {
                eprintln!("regression: {complaint}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "no rate regressed beyond {max_ratio}x of {}",
            baseline_path.display()
        );
    }
    std::process::exit(0);
}

/// `repro soak`: run the deterministic chaos soak — a live server under
/// a multi-site fault storm, hedging clients, post-storm conservation
/// invariants — and print the report (digest line last). `--digest`
/// prints only the bit-stable digest line, which `scripts/verify.sh`
/// compares across two same-seed runs. Exits 1 when an invariant fails.
fn run_soak(args: &[String]) -> ! {
    let usage = "usage: repro soak [--smoke] [--seed N] [--clients N] [--requests N] [--digest]";

    fn parsed<T: std::str::FromStr>(flag: &str, value: Option<&String>, usage: &str) -> T {
        match value.map(|v| v.parse::<T>()) {
            Some(Ok(parsed)) => parsed,
            _ => {
                eprintln!("error: {flag} needs a valid value");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    let mut cfg = bagpred_experiments::soak::SoakConfig::default();
    let mut digest_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => {
                let smoke = bagpred_experiments::soak::SoakConfig::smoke();
                cfg.clients = smoke.clients;
                cfg.requests_per_client = smoke.requests_per_client;
                cfg.smoke = true;
            }
            "--seed" => cfg.seed = parsed("--seed", it.next(), usage),
            "--clients" => cfg.clients = parsed("--clients", it.next(), usage),
            "--requests" => cfg.requests_per_client = parsed("--requests", it.next(), usage),
            "--digest" => digest_only = true,
            other => {
                eprintln!("error: unknown soak flag `{other}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if cfg.clients == 0 || cfg.requests_per_client == 0 {
        eprintln!("error: --clients and --requests must be positive");
        std::process::exit(2);
    }

    let report = bagpred_experiments::soak::run(&cfg);
    if digest_only {
        println!("{}", report.digest());
    } else {
        print!("{}", report.render());
    }
    std::process::exit(if report.passed() { 0 } else { 1 });
}

/// `repro fleet`: replay a synthetic diurnal trace through the admission
/// stack across policies and fleet sizes, write `BENCH_fleet.json`, and
/// print the capacity-planning report.
fn run_fleet(args: &[String]) -> ! {
    let usage = "usage: repro fleet [--policy ffd|solo|all] [--gpus K,K,...] \
                 [--duration S] [--rate R] [--amplitude A] [--period S] \
                 [--patience S] [--budget S] [--seed N] [--window N] \
                 [--gap-instances N] [--gap-slack X] [--no-gap] [--smoke] \
                 [--json] [--out FILE]";
    let mut cfg = bagpred_fleet::FleetConfig::default();
    let mut smoke = false;
    let mut json_stdout = false;
    let mut out_path = std::path::PathBuf::from("BENCH_fleet.json");

    fn parsed<T: std::str::FromStr>(flag: &str, value: Option<&String>, usage: &str) -> T {
        match value.map(|v| v.parse::<T>()) {
            Some(Ok(parsed)) => parsed,
            _ => {
                eprintln!("error: {flag} needs a valid value");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--policy" => match it.next().map(String::as_str) {
                Some("all") => {
                    cfg.policies = vec!["ffd".into(), "solo".into()];
                }
                Some(name) if bagpred_fleet::by_name(name).is_some() => {
                    cfg.policies = vec![name.to_string()];
                }
                _ => {
                    eprintln!("error: --policy needs ffd, solo, optimal, or all");
                    std::process::exit(2);
                }
            },
            "--gpus" => {
                let spec: String = parsed("--gpus", it.next(), usage);
                let sweep: Result<Vec<usize>, _> =
                    spec.split(',').map(|k| k.trim().parse::<usize>()).collect();
                match sweep {
                    Ok(sweep) if !sweep.is_empty() && sweep.iter().all(|&k| k >= 1) => {
                        cfg.gpu_sweep = sweep;
                    }
                    _ => {
                        eprintln!("error: --gpus needs a comma list of positive integers");
                        std::process::exit(2);
                    }
                }
            }
            "--duration" => cfg.arrivals.duration_s = parsed("--duration", it.next(), usage),
            "--rate" => cfg.arrivals.base_rate_per_s = parsed("--rate", it.next(), usage),
            "--amplitude" => {
                cfg.arrivals.diurnal_amplitude = parsed("--amplitude", it.next(), usage)
            }
            "--period" => cfg.arrivals.day_period_s = parsed("--period", it.next(), usage),
            "--patience" => cfg.arrivals.patience_s = parsed("--patience", it.next(), usage),
            "--budget" => cfg.budget_s = parsed("--budget", it.next(), usage),
            "--seed" => cfg.arrivals.seed = parsed("--seed", it.next(), usage),
            "--window" => cfg.window = parsed("--window", it.next(), usage),
            "--gap-instances" => {
                let instances: usize = parsed("--gap-instances", it.next(), usage);
                let mut gap = cfg.gap.unwrap_or_default();
                gap.instances = instances;
                cfg.gap = Some(gap);
            }
            "--gap-slack" => {
                let slack: f64 = parsed("--gap-slack", it.next(), usage);
                let mut gap = cfg.gap.unwrap_or_default();
                gap.budget_slack = slack;
                cfg.gap = Some(gap);
            }
            "--no-gap" => cfg.gap = None,
            "--smoke" => smoke = true,
            "--json" => json_stdout = true,
            "--out" => match it.next() {
                Some(path) => out_path = std::path::PathBuf::from(path),
                None => {
                    eprintln!("error: --out needs a file path");
                    std::process::exit(2);
                }
            },
            flag => {
                eprintln!("error: unknown fleet flag `{flag}`");
                eprintln!("{usage}");
                std::process::exit(2);
            }
        }
    }
    if smoke {
        // Smoke shrinks the trace and sweep but keeps explicit flag
        // overrides: apply the smoke shape only where the user said
        // nothing (flags above already mutated cfg, so just shrink).
        let defaults = bagpred_fleet::FleetConfig::default();
        if cfg.arrivals.duration_s == defaults.arrivals.duration_s {
            cfg.arrivals.duration_s = 10.0;
        }
        if cfg.gpu_sweep == defaults.gpu_sweep {
            cfg.gpu_sweep = vec![1, 2];
        }
        if let Some(gap) = &mut cfg.gap {
            if gap.instances == bagpred_fleet::GapConfig::default().instances {
                gap.instances = 3;
            }
        }
        cfg.smoke = true;
    }

    eprintln!(
        "simulating {} policies × {:?} GPUs over {:.0}s of arrivals (training models first)...",
        cfg.policies.len(),
        cfg.gpu_sweep,
        cfg.arrivals.duration_s
    );
    let report = match bagpred_fleet::run(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let json = report.to_json();
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: cannot write {}: {e}", out_path.display());
        std::process::exit(2);
    }
    if json_stdout {
        print!("{json}");
    } else {
        print!("{}", report.render());
    }
    eprintln!("report written to {}", out_path.display());
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!(
            "usage: repro <artifact>... | all | --list | \
             serve [ADDR] [--models DIR] [--admin] [--unsharded] [--metrics-addr ADDR] \
             [--slow-threshold-ms MS] [--read-timeout-ms MS] [--write-timeout-ms MS] | \
             bench [--smoke] [--json] [--out FILE] [--baseline FILE] [--max-regression X] [--fleet FILE] | \
             fleet [--policy P] [--gpus K,...] [--duration S] [--seed N] [--smoke] [--json] [--out FILE] | \
             soak [--smoke] [--seed N] [--clients N] [--requests N] [--digest]"
        );
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    // Machine-readable artifact list: one name per line on stdout, no
    // corpus measurement, stable output for scripts to consume.
    if args.iter().any(|a| a == "--list") {
        for artifact in ARTIFACTS {
            println!("{artifact}");
        }
        return;
    }

    if args[0] == "serve" {
        serve(&args[1..]);
    }
    if args[0] == "bench" {
        run_bench(&args[1..]);
    }
    if args[0] == "fleet" {
        run_fleet(&args[1..]);
    }
    if args[0] == "soak" {
        run_soak(&args[1..]);
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    // Validate every requested artifact before the expensive corpus
    // measurement so a typo fails in milliseconds, not minutes.
    let unknown: Vec<&str> = selected
        .iter()
        .copied()
        .filter(|name| !ARTIFACTS.contains(name))
        .collect();
    if !unknown.is_empty() {
        for name in unknown {
            eprintln!("error: unknown artifact `{name}`");
        }
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(2);
    }

    eprintln!("measuring the 91-run corpus...");
    let ctx = Context::shared();

    for artifact in selected {
        match run(artifact, ctx) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("artifacts: {}", ARTIFACTS.join(" "));
                std::process::exit(2);
            }
        }
    }
}
