//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <artifact>...
//! repro all
//! ```
//!
//! Artifacts: `fig1` … `fig12`, `table2`, `table3`, `table4`,
//! `ext1` … `ext6`, `summary`, `all`.

use bagpred_experiments::{accuracy, extensions, paths, scaling, sensitivity, tables, Context};

const ARTIFACTS: [&str; 23] = [
    "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
    "fig12", "table2", "table3", "table4", "ext1", "ext2", "ext3", "ext4", "ext5", "ext6",
    "ext7", "summary",
];

fn run(artifact: &str, ctx: &Context) -> Result<String, String> {
    Ok(match artifact {
        "fig1" => scaling::figure1(ctx).render(),
        "fig2" => scaling::figure2(ctx).render(),
        "fig3" => scaling::figure3(ctx).render(),
        "fig4" => accuracy::figure4(ctx).render(),
        "fig5" => accuracy::figure5(ctx).render(),
        "fig6" => sensitivity::figure6(ctx).render(),
        "fig7" => sensitivity::figure7(ctx).render(),
        "fig8" => sensitivity::figure8(ctx).render(),
        "fig9" => sensitivity::figure9(ctx).render(),
        "fig10" => paths::figure10(ctx).render(),
        "fig11" => paths::figure11(ctx).render(),
        "fig12" => paths::figure12(ctx).render_snapshot(26),
        "table2" => tables::table2(ctx).render(),
        "table3" => tables::table3(ctx).render(),
        "table4" => tables::table4(ctx).render(),
        "ext1" => extensions::temporal_vs_spatial(ctx).render(),
        "ext2" => extensions::nbag_scaling().render(),
        "ext3" => extensions::model_comparison(ctx).render(),
        "ext4" => extensions::noise_robustness(ctx).render(),
        "ext5" => extensions::benchmark_similarity(ctx).render(),
        "ext6" => extensions::dynamic_release(ctx).render(),
        "ext7" => extensions::thread_sensitivity(ctx).render(),
        "summary" => summary(ctx),
        other => return Err(format!("unknown artifact `{other}`")),
    })
}

/// One-screen headline comparison against the paper.
fn summary(ctx: &Context) -> String {
    let fig4 = accuracy::figure4(ctx);
    let fig5 = accuracy::figure5(ctx);
    let fig10 = paths::figure10(ctx);
    let gpu_presence = fig10
        .presence
        .iter()
        .find(|(n, _)| n == "GPU")
        .map(|(_, p)| *p)
        .unwrap_or(0.0);
    let mut out = String::from("Headline summary (paper vs measured)\n");
    out.push_str(&format!(
        "  LOOCV mean error, full features:   paper  9.0%   measured {:>6.2}%\n",
        fig4.mean_error_percent
    ));
    for s in &fig5.schemes {
        out.push_str(&format!(
            "  {:<34} paper {:>5.1}%  measured {:>7.2}%\n",
            s.scheme,
            s.paper_percent.unwrap_or(f64::NAN),
            s.measured_percent
        ));
    }
    out.push_str(&format!(
        "  GPU time in decision paths:        paper 100%    measured {gpu_presence:>6.1}%\n"
    ));
    out.push_str("  (full comparison: EXPERIMENTS.md; regenerate with `repro all`)\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        eprintln!("usage: repro <artifact>... | all");
        eprintln!("artifacts: {}", ARTIFACTS.join(" "));
        std::process::exit(if args.is_empty() { 2 } else { 0 });
    }

    let selected: Vec<&str> = if args.iter().any(|a| a == "all") {
        ARTIFACTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };

    eprintln!("measuring the 91-run corpus...");
    let ctx = Context::shared();

    for artifact in selected {
        match run(artifact, ctx) {
            Ok(text) => println!("{text}"),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("artifacts: {}", ARTIFACTS.join(" "));
                std::process::exit(2);
            }
        }
    }
}
