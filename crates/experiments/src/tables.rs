//! Tables II-IV: benchmark inventory, machine configuration, feature list.

use crate::context::Context;
use crate::render::{format_time, TextTable};
use bagpred_core::Feature;
use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use serde::{Deserialize, Serialize};

/// Table II: the benchmark suite, with measured single-instance statistics
/// appended (the paper's table is descriptive; the measured columns document
/// what our implementations actually do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// `(name, description, dynamic instructions, CPU time s, GPU time s)`.
    pub rows: Vec<(String, String, u64, f64, f64)>,
}

impl Table2 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "instructions".into(),
            "CPU time".into(),
            "GPU time".into(),
            "description".into(),
        ]);
        for (name, desc, instr, cpu, gpu) in &self.rows {
            table.row(vec![
                name.clone(),
                instr.to_string(),
                format_time(*cpu),
                format_time(*gpu),
                desc.clone(),
            ]);
        }
        format!(
            "Table II: benchmarks (batch of {STANDARD_BATCH} images)\n{}",
            table.render()
        )
    }
}

/// Builds Table II.
pub fn table2(ctx: &Context) -> Table2 {
    let rows = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let cpu = ctx.platforms().cpu().simulate_best(&profile).time_s;
            let gpu = ctx.platforms().gpu().simulate(&profile).time_s;
            (
                bench.name().to_string(),
                bench.description().to_string(),
                profile.total_instructions(),
                cpu,
                gpu,
            )
        })
        .collect();
    Table2 { rows }
}

/// Table III: the simulated baseline system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// `(parameter, value)` rows.
    pub rows: Vec<(String, String)>,
}

impl Table3 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["parameter".into(), "type/value".into()]);
        for (k, v) in &self.rows {
            table.row(vec![k.clone(), v.clone()]);
        }
        format!(
            "Table III: details of the baseline system\n{}",
            table.render()
        )
    }
}

/// Builds Table III from the live simulator configurations.
pub fn table3(ctx: &Context) -> Table3 {
    let cpu = ctx.platforms().cpu().config();
    let gpu = ctx.platforms().gpu().config();
    let rows = vec![
        (
            "CPU".to_string(),
            format!(
                "{}x Intel Xeon Gold 5118 (Skylake) [modelled]",
                cpu.sockets()
            ),
        ),
        (
            "# of cores".to_string(),
            format!("{} physical", cpu.physical_cores()),
        ),
        ("Logical cores".to_string(), cpu.logical_cores().to_string()),
        (
            "Frequency".to_string(),
            format!("{:.1} GHz", cpu.freq_ghz()),
        ),
        (
            "LLC".to_string(),
            format!("{:.1} MB total", cpu.llc_bytes() as f64 / (1024.0 * 1024.0)),
        ),
        (
            "DRAM bandwidth".to_string(),
            format!("{:.0} GB/s", cpu.dram_bandwidth() / 1e9),
        ),
        (
            "GPU".to_string(),
            "NVIDIA Tesla T4 (Turing) [modelled]".to_string(),
        ),
        ("CUDA cores".to_string(), gpu.cuda_cores().to_string()),
        ("SMs".to_string(), gpu.sms().to_string()),
        (
            "GPU frequency".to_string(),
            format!("{:.2} GHz", gpu.freq_ghz()),
        ),
        (
            "GPU L2".to_string(),
            format!("{} MB shared", gpu.l2_bytes() / (1024 * 1024)),
        ),
        (
            "GDDR bandwidth".to_string(),
            format!("{:.0} GB/s", gpu.dram_bandwidth() / 1e9),
        ),
        (
            "PCIe bandwidth".to_string(),
            format!("{:.0} GB/s effective", gpu.pcie_bandwidth() / 1e9),
        ),
    ];
    Table3 { rows }
}

/// Table IV: the feature list with the measured value range of each feature
/// across the 91-run corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// `(feature, description, min, max)` rows.
    pub rows: Vec<(String, String, f64, f64)>,
}

impl Table4 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "num".into(),
            "feature".into(),
            "min".into(),
            "max".into(),
            "description".into(),
        ]);
        for (i, (name, desc, min, max)) in self.rows.iter().enumerate() {
            table.row(vec![
                (i + 1).to_string(),
                name.clone(),
                format!("{min:.4}"),
                format!("{max:.4}"),
                desc.clone(),
            ]);
        }
        format!("Table IV: list of features\n{}", table.render())
    }
}

const fn feature_description(f: Feature) -> &'static str {
    match f {
        Feature::CpuTime => "Execution time of the benchmark on a CPU (s)",
        Feature::GpuTime => "Execution time of the benchmark on a GPU (s)",
        Feature::MemRd => "% of memory-read instructions",
        Feature::MemWr => "% of memory-write instructions",
        Feature::Ctrl => "% of control/branch instructions",
        Feature::Arith => "% of arithmetic instructions",
        Feature::Fp => "% of floating point instructions",
        Feature::Stack => "% of stack push/pop instructions",
        Feature::Shift => "% of multiply/shift operations",
        Feature::StringOp => "% of string operations",
        Feature::Sse => "% of SSE instructions",
        Feature::Fairness => "Fairness of concurrent multi-application execution",
    }
}

/// Builds Table IV with measured ranges over the corpus.
pub fn table4(ctx: &Context) -> Table4 {
    let rows = Feature::ALL
        .iter()
        .map(|&f| {
            let mut min = f64::INFINITY;
            let mut max = f64::NEG_INFINITY;
            for m in ctx.records() {
                for slot in 0..2 {
                    let v = m.raw_value(f, slot);
                    min = min.min(v);
                    max = max.max(v);
                }
            }
            (
                f.name().to_string(),
                feature_description(f).to_string(),
                min,
                max,
            )
        })
        .collect();
    Table4 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_lists_every_benchmark_with_positive_times() {
        let t = table2(Context::shared());
        assert_eq!(t.rows.len(), 9);
        for (name, _, instr, cpu, gpu) in &t.rows {
            assert!(*instr > 0, "{name}");
            assert!(*cpu > 0.0 && *gpu > 0.0, "{name}");
        }
    }

    #[test]
    fn table3_matches_paper_headline_numbers() {
        let t = table3(Context::shared());
        let get = |k: &str| {
            t.rows
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        assert!(get("# of cores").contains("24"));
        assert!(get("CUDA cores").contains("2560"));
        assert!(get("Frequency").contains("2.3"));
    }

    #[test]
    fn table4_has_twelve_features_with_sane_ranges() {
        let t = table4(Context::shared());
        assert_eq!(t.rows.len(), 12);
        for (name, _, min, max) in &t.rows {
            assert!(min <= max, "{name}");
            assert!(min.is_finite() && max.is_finite(), "{name}");
        }
        // Fairness stays in (0, 1].
        let fairness = t.rows.iter().find(|(n, ..)| n == "fairness").unwrap();
        assert!(fairness.2 > 0.0 && fairness.3 <= 1.0);
    }

    #[test]
    fn renders_are_nonempty() {
        let ctx = Context::shared();
        assert!(table2(ctx).render().contains("SIFT"));
        assert!(table3(ctx).render().contains("Tesla T4"));
        assert!(table4(ctx).render().contains("fairness"));
    }
}
