//! Reproduction harness for every table and figure in the paper's
//! evaluation.
//!
//! Each experiment is a function that computes the figure's underlying data
//! series and returns a structured, serializable result with a plain-text
//! rendering (the paper's plots are bar/radar charts of exactly these
//! numbers). The `repro` binary exposes one subcommand per artifact.
//!
//! | Module | Artifacts |
//! |---|---|
//! | [`scaling`] | Figs. 1-3: CPU/GPU performance vs. instance count |
//! | [`accuracy`] | Fig. 4 (LOOCV) and Fig. 5 (related-work comparison) |
//! | [`sensitivity`] | Figs. 6-9: per-feature ablations |
//! | [`paths`] | Figs. 10-12: decision-path analysis |
//! | [`tables`] | Tables II-IV: benchmarks, machine configuration, features |
//! | [`extensions`] | Studies beyond the paper: temporal vs spatial multiplexing, n-application bags, model comparison |
//! | [`bench`] | `repro bench`: pipeline throughput harness (training, LOOCV, batch inference) |
//! | [`soak`] | `repro soak`: deterministic chaos soak of the serving stack (fault storm + hedging clients + conservation invariants) |
//!
//! # Example
//!
//! ```no_run
//! use bagpred_experiments::{accuracy, Context};
//!
//! let ctx = Context::shared();
//! let fig4 = accuracy::figure4(ctx);
//! println!("{}", fig4.render());
//! assert!(fig4.mean_error_percent < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod bench;
mod context;
pub mod extensions;
pub mod paths;
mod render;
pub mod scaling;
pub mod sensitivity;
pub mod servebench;
pub mod soak;
pub mod tables;

pub use context::Context;
pub use render::TextTable;
