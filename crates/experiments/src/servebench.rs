//! Serving-layer benchmark: binary-vs-text protocol overhead,
//! shard-isolation tail latency, and the outcome-report roundtrip.
//!
//! Four measurements, all feeding `BENCH_pipeline.json` through
//! [`crate::bench`]:
//!
//! * **Protocol codec cost** — the per-request work that is purely
//!   protocol: parse a `predict` request and format the reply, on the
//!   text dialect (tokenizing + shortest-roundtrip float rendering)
//!   versus the binary framing (length-prefixed decode + encode of raw
//!   `f64` bits). No sockets, no queueing — this isolates exactly what
//!   the framing change buys, and is the number `scripts/verify.sh`
//!   gates (binary must beat text by at least 1.5x).
//! * **End-to-end request latency** — one client, real TCP loopback,
//!   text versus negotiated binary. Informational: loopback wall time
//!   is dominated by syscalls and scheduling, so the codec win shrinks
//!   into noise here; recorded to keep the comparison honest.
//! * **Shard isolation p99** — eight concurrent clients, two models,
//!   one model deliberately slowed through the existing
//!   `slow_predict` fault site. The fast model's p99 is measured three
//!   ways: sharded with no slow peer (baseline), sharded next to the
//!   slow peer (must hold near the baseline — per-model queues and
//!   workers absorb the interference), and unsharded next to the slow
//!   peer (the shared FIFO queue lets the slow model's jobs stall
//!   everyone — the regression the sharded engine exists to prevent).
//! * **Outcome-report roundtrip** — what closing the loop costs a
//!   binary client per prediction: one `Outcome` frame out, one
//!   matched/orphaned reply back, over the same loopback TCP path.
//! * **Hedge tail-latency shoot-out** — eight clients on one model
//!   whose predicts occasionally stall through `slow_predict`; p99
//!   with hedging off versus on. The improvement ratio is the number
//!   `scripts/verify.sh` gates (hedged p99 must be at least 2x better).
//! * **Cancel roundtrip** — mean latency of one `cancel id=<req>`
//!   frame and its `ok cancel=late` reply, the fixed cost a hedging
//!   client pays to tell the server the loser is moot.

use bagpred_core::Platforms;
use bagpred_obs::LogHistogram;
use bagpred_serve::frame::{self, Frame, Payload};
use bagpred_serve::protocol::{format_outcome, parse_request_options};
use bagpred_serve::{
    bootstrap, Client, ClientConfig, FaultPlan, ModelRegistry, PredictionService, Priority, Reply,
    Server, ServiceConfig,
};
use bagpred_workloads::{Benchmark, Workload};
use std::hint::black_box;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The serve-layer measurements merged into the pipeline report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeBench {
    /// Per-request protocol cost, text dialect (parse + format), ns.
    pub text_protocol_ns_per_request: f64,
    /// Per-request protocol cost, binary framing (decode + encode), ns.
    pub binary_protocol_ns_per_request: f64,
    /// `text_protocol_ns_per_request / binary_protocol_ns_per_request`.
    pub protocol_speedup: f64,
    /// End-to-end loopback request latency, text client, ns.
    pub text_ns_per_request: f64,
    /// End-to-end loopback request latency, negotiated binary client, ns.
    pub binary_ns_per_request: f64,
    /// Fast-model p99 with per-model shards and no slow peer, us.
    pub isolation_baseline_p99_us: f64,
    /// Fast-model p99 with per-model shards next to a slowed peer, us.
    pub isolation_sharded_p99_us: f64,
    /// Fast-model p99 on the shared single queue next to the same
    /// slowed peer, us.
    pub isolation_unsharded_p99_us: f64,
    /// Mean latency of closing the loop on one prediction — a binary
    /// client's `Outcome` frame and its matched/orphaned reply over
    /// loopback TCP, us.
    pub obs_outcome_roundtrip_us: f64,
    /// p99 latency against a 2%-stalled model, hedging off, us.
    pub hedge_unhedged_p99_us: f64,
    /// p99 latency against the same stalled model, hedging on, us.
    pub hedge_hedged_p99_us: f64,
    /// `hedge_unhedged_p99_us / hedge_hedged_p99_us`.
    pub hedge_p99_improvement: f64,
    /// Mean latency of one late `cancel` frame and its reply over
    /// loopback TCP, us.
    pub cancel_roundtrip_us: f64,
}

/// Runs all three serve measurements. Training happens once (the same
/// pair + n-bag registry `repro serve` boots with) and is excluded from
/// every timed region.
pub fn run(smoke: bool) -> ServeBench {
    let platforms = Platforms::paper();
    let registry = bootstrap::default_registry(&platforms);

    let codec_rounds = if smoke { 20_000 } else { 100_000 };
    let (text_protocol_ns, binary_protocol_ns) = protocol_ns(codec_rounds);

    let e2e_requests = if smoke { 300 } else { 1_500 };
    let text_ns = end_to_end_ns(&registry, false, e2e_requests);
    let binary_ns = end_to_end_ns(&registry, true, e2e_requests);

    let isolation_requests = if smoke { 40 } else { 200 };
    let baseline = isolation_p99_us(&registry, true, false, isolation_requests);
    let sharded = isolation_p99_us(&registry, true, true, isolation_requests);
    let unsharded = isolation_p99_us(&registry, false, true, isolation_requests);

    let outcome_reports = if smoke { 200 } else { 1_000 };
    let outcome_roundtrip = outcome_roundtrip_us(&registry, outcome_reports);

    let hedge_requests = if smoke { 40 } else { 150 };
    let unhedged_p99 = hedge_p99_us(&registry, false, hedge_requests);
    let hedged_p99 = hedge_p99_us(&registry, true, hedge_requests);

    let cancel_reports = if smoke { 200 } else { 1_000 };
    let cancel_roundtrip = cancel_roundtrip_us(&registry, cancel_reports);

    ServeBench {
        text_protocol_ns_per_request: text_protocol_ns,
        binary_protocol_ns_per_request: binary_protocol_ns,
        protocol_speedup: text_protocol_ns / binary_protocol_ns.max(f64::MIN_POSITIVE),
        text_ns_per_request: text_ns,
        binary_ns_per_request: binary_ns,
        isolation_baseline_p99_us: baseline,
        isolation_sharded_p99_us: sharded,
        isolation_unsharded_p99_us: unsharded,
        obs_outcome_roundtrip_us: outcome_roundtrip,
        hedge_unhedged_p99_us: unhedged_p99,
        hedge_hedged_p99_us: hedged_p99,
        hedge_p99_improvement: unhedged_p99 / hedged_p99.max(f64::MIN_POSITIVE),
        cancel_roundtrip_us: cancel_roundtrip,
    }
}

fn pair_apps() -> Vec<Workload> {
    vec![
        Workload::new(Benchmark::Sift, 20),
        Workload::new(Benchmark::Knn, 40),
    ]
}

/// Times the pure codec work per request on both dialects: what the
/// server spends parsing one `predict` and rendering its reply, with no
/// socket or engine in the loop. Best-of-5 over `rounds` iterations.
fn protocol_ns(rounds: usize) -> (f64, f64) {
    let line = "predict model=pair-tree SIFT@20+KNN@40";
    let outcome = Ok(Reply::Prediction {
        model: "pair-tree".to_string(),
        predicted_s: 1.234_567_890_123_4,
    });
    let request_bytes = frame::encode(&Frame::new(
        42,
        Payload::Predict {
            model: Some("pair-tree".to_string()),
            apps: pair_apps(),
            deadline: None,
            priority: Priority::Normal,
            hedge_of: None,
        },
    ));
    let reply_frame = Frame::new(
        42,
        Payload::Prediction {
            model: "pair-tree".to_string(),
            predicted_s: 1.234_567_890_123_4,
        },
    );

    let mut text_best = Duration::MAX;
    let mut binary_best = Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        for _ in 0..rounds {
            black_box(parse_request_options(black_box(line)).expect("request parses"));
            black_box(format_outcome(black_box(&outcome)));
        }
        text_best = text_best.min(start.elapsed());

        let start = Instant::now();
        for _ in 0..rounds {
            black_box(frame::decode(black_box(&request_bytes)).expect("frame decodes"));
            black_box(frame::encode(black_box(&reply_frame)));
        }
        binary_best = binary_best.min(start.elapsed());
    }
    (
        text_best.as_nanos() as f64 / rounds.max(1) as f64,
        binary_best.as_nanos() as f64 / rounds.max(1) as f64,
    )
}

/// Mean end-to-end latency of one synchronous client over TCP loopback.
fn end_to_end_ns(registry: &Arc<ModelRegistry>, binary: bool, requests: usize) -> f64 {
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig::default(),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bench server binds");
    let mut client = Client::with_config(
        server.local_addr(),
        ClientConfig {
            prefer_binary: binary,
            ..ClientConfig::default()
        },
    );
    let line = "predict SIFT@20+KNN@40";
    for _ in 0..20 {
        client.request(line).expect("warmup request");
    }
    assert_eq!(
        client.is_binary(),
        Some(binary),
        "negotiation must land on the dialect under test"
    );
    let start = Instant::now();
    for _ in 0..requests.max(1) {
        black_box(client.request(line).expect("bench request"));
    }
    let per_request = start.elapsed().as_nanos() as f64 / requests.max(1) as f64;
    drop(client);
    server.shutdown();
    service.shutdown();
    per_request
}

/// Mean latency of closing the loop on one prediction: a binary client
/// sends an `Outcome` frame (8 payload bytes, joined by its own request
/// id) and waits for the matched/orphaned reply. The prediction that
/// creates the join key runs outside the timed region, so this measures
/// exactly what outcome feedback adds per request.
fn outcome_roundtrip_us(registry: &Arc<ModelRegistry>, reports: usize) -> f64 {
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig::default(),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bench server binds");
    let mut client = Client::new(server.local_addr());
    let line = "predict SIFT@20+KNN@40";
    for _ in 0..20 {
        client.request(line).expect("warmup request");
        let id = client.last_request_id().expect("warmup request ran");
        client.report_outcome(id, 1_000).expect("warmup report");
    }
    assert_eq!(
        client.is_binary(),
        Some(true),
        "outcome frames need the binary dialect"
    );
    let mut total = Duration::ZERO;
    for _ in 0..reports.max(1) {
        client.request(line).expect("bench request");
        let id = client.last_request_id().expect("a request just ran");
        let start = Instant::now();
        let reply = client.report_outcome(id, 1_000).expect("bench report");
        total += start.elapsed();
        assert!(reply.starts_with("ok outcome="), "{reply}");
    }
    drop(client);
    server.shutdown();
    service.shutdown();
    total.as_nanos() as f64 / 1e3 / reports.max(1) as f64
}

/// Fast-model p99 under mixed-model concurrency: eight clients, half
/// hammering the (possibly slowed) pair model, half the n-bag model;
/// only the fast half's latencies are recorded.
fn isolation_p99_us(
    registry: &Arc<ModelRegistry>,
    sharded: bool,
    slow: bool,
    requests_per_client: usize,
) -> f64 {
    let faults = if slow {
        // Every pair-tree predict sleeps 3ms: long enough to occupy a
        // worker visibly, short enough that the whole sweep stays fast.
        FaultPlan::parse("slow_predict:model=pair-tree:count=1000000:ms=3").expect("fault parses")
    } else {
        FaultPlan::none()
    };
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig {
            sharded,
            faults: Arc::new(faults),
            ..ServiceConfig::default()
        },
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bench server binds");
    let addr = server.local_addr();
    let fast_latencies = LogHistogram::new();
    std::thread::scope(|scope| {
        for i in 0..8 {
            let is_fast = i % 2 == 1;
            let hist = &fast_latencies;
            scope.spawn(move || {
                let mut client = Client::new(addr);
                let line = if is_fast {
                    "predict model=nbag-tree SIFT@20+KNN@40"
                } else {
                    "predict model=pair-tree SIFT@20+KNN@40"
                };
                for _ in 0..requests_per_client {
                    let start = Instant::now();
                    let reply = client.request(line).expect("isolation request");
                    assert!(reply.starts_with("ok "), "{reply}");
                    if is_fast {
                        hist.record_duration(start.elapsed());
                    }
                }
            });
        }
    });
    server.shutdown();
    service.shutdown();
    fast_latencies.snapshot().quantile(0.99) as f64
}

/// p99 latency of eight paced clients on one model while 2% of its
/// predicts stall for 50ms, with hedging off or on.
///
/// Every knob here keeps the stalls *rare and isolated*, because that
/// is the regime hedging is for — and because `every=N` couples the
/// fault rate to the request rate. At full closed-loop speed (~100µs
/// roundtrips) a 1-in-N stall fires every few ms of aggregate wall
/// time, overlapping stalls convoy across the shard's workers,
/// innocent requests queue for tens of ms, the queueing samples drag
/// every client's rolling p95 up to the stall itself, and a hedge
/// either never arms or queues behind the very stalls it is trying to
/// dodge — measured improvement ~1.0x. Three knobs hold the scenario
/// in the intended regime. Think time (8ms per client) bounds the
/// call rate, so `every=60` lands one 50ms stall roughly every 60ms
/// of wall time instead of every few ms. Sixteen workers keep a free
/// worker available even when a burst of stalls overlaps — the bench
/// measures the hedge policy, not worker capacity. `batch_size: 1`
/// keeps a stall from delaying a whole dequeued group, which would
/// multiply the slow fraction past the client's p95 rank (disarming
/// the adaptive timer) and stall hedges batched with a doomed
/// primary. The stall is long (`ms=50`) so the hedge stays decisive
/// even though the client's read timeout — and so its effective hedge
/// delay — is floored by the kernel's SO_RCVTIMEO granularity (a
/// scheduler tick, up to ~10ms): a hedge fired 10ms in still beats
/// the stalled primary by 40ms.
fn hedge_p99_us(registry: &Arc<ModelRegistry>, hedged: bool, requests_per_client: usize) -> f64 {
    let faults = FaultPlan::parse("slow_predict:model=pair-tree:every=60:ms=50:count=1000000")
        .expect("fault parses");
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig {
            faults: Arc::new(faults),
            workers: 16,
            batch_size: 1,
            ..ServiceConfig::default()
        },
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bench server binds");
    let addr = server.local_addr();
    let latencies = LogHistogram::new();
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let hist = &latencies;
            scope.spawn(move || {
                let mut client = Client::with_config(
                    addr,
                    ClientConfig {
                        hedge: hedged,
                        hedge_min_samples: 10,
                        ..ClientConfig::default()
                    },
                );
                let line = "predict model=pair-tree SIFT@20+KNN@40";
                // Seed the p95 estimator outside the timed region so the
                // hedged run starts with an armed timer; paced like the
                // timed loop so a warmup stall burst cannot poison it.
                for _ in 0..12 {
                    std::thread::sleep(Duration::from_millis(8));
                    client.request(line).expect("hedge warmup");
                }
                for _ in 0..requests_per_client {
                    // Think time: open-loop pacing so stall arrivals
                    // stay sparse relative to their 50ms duration.
                    std::thread::sleep(Duration::from_millis(8));
                    let start = Instant::now();
                    let reply = client.request(line).expect("hedge request");
                    assert!(reply.starts_with("ok "), "{reply}");
                    hist.record_duration(start.elapsed());
                }
            });
        }
    });
    server.shutdown();
    service.shutdown();
    latencies.snapshot().quantile(0.99) as f64
}

/// Mean latency of one late cancel: a binary client repeatedly cancels
/// an id that already completed, timing the `cancel` frame and its
/// `ok cancel=late` reply. The completed-id path is stateless on the
/// server, so the loop measures a stable fixed cost rather than
/// mutating the cancel registry.
fn cancel_roundtrip_us(registry: &Arc<ModelRegistry>, cancels: usize) -> f64 {
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig::default(),
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("bench server binds");
    let mut client = Client::new(server.local_addr());
    let line = "predict SIFT@20+KNN@40";
    for _ in 0..20 {
        client.request(line).expect("warmup request");
    }
    assert_eq!(
        client.is_binary(),
        Some(true),
        "cancel frames need the binary dialect"
    );
    let id = client.last_request_id().expect("a request just ran");
    let mut total = Duration::ZERO;
    for _ in 0..cancels.max(1) {
        let start = Instant::now();
        let reply = client.cancel(id).expect("bench cancel");
        total += start.elapsed();
        assert_eq!(reply, "ok cancel=late", "completed ids always answer late");
    }
    drop(client);
    server.shutdown();
    service.shutdown();
    total.as_nanos() as f64 / 1e3 / cancels.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_codec_bench_is_positive_and_binary_wins() {
        let (text_ns, binary_ns) = protocol_ns(2_000);
        assert!(text_ns > 0.0 && text_ns.is_finite());
        assert!(binary_ns > 0.0 && binary_ns.is_finite());
        // The full 1.5x acceptance gate runs in scripts/verify.sh over
        // the smoke report; here we only require the direction.
        assert!(
            binary_ns < text_ns,
            "binary codec ({binary_ns:.1} ns) must beat text ({text_ns:.1} ns)"
        );
    }
}
