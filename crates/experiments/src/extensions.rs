//! Extension experiments beyond the paper's evaluation.
//!
//! Studies the paper motivates but does not run:
//!
//! * [`temporal_vs_spatial`] — §II discusses time multiplexing as the
//!   alternative to MPS; this quantifies both on the same bags.
//! * [`nbag_scaling`] — §VII names prediction for more than two
//!   applications an open problem; this evaluates the order-statistic
//!   aggregation predictor on bags of 2-4.
//! * [`model_comparison`] — §V-D reports SVR an order of magnitude worse
//!   than the tree; this measures tree, random forest, SVR and linear
//!   regression under the same LOOCV protocol.
//! * [`noise_robustness`] — how the predictor degrades when every time
//!   measurement carries testbed-style run-to-run noise.
//! * [`benchmark_similarity`] — the MICA-style similarity matrix over the
//!   suite's instruction mixes.
//! * [`dynamic_release`] — how much the steady-state bag model overstates
//!   makespans compared to phase-based resource release.
//! * [`thread_sensitivity`] — execution time across a CPU thread ladder.
//! * [`fleet_capacity`] — the fleet simulator's capacity-planning sweep
//!   with the optimality-gap table (see `bagpred_fleet`).
//! * [`online_observability`] — the closed loop: the LOOCV stream
//!   replayed through the serving stack's online residual tracker, a
//!   deterministic drift drill against perturbed ground truth, and a
//!   live server/client loop that flips the `bagpred_model_drifting`
//!   exposition gauge.

use crate::context::Context;
use crate::render::TextTable;
use bagpred_core::nbag::{nbag_corpus, NBagMeasurement, NBagPredictor};
use bagpred_core::{FeatureSet, ModelKind, Platforms, Predictor};
use bagpred_obs::{PageHinkley, ResidualWindow};
use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One benchmark's spatial-vs-temporal comparison (2-way homogeneous bag).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiplexRow {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Per-app slowdown under MPS spatial sharing.
    pub spatial_slowdown: f64,
    /// Mean turnaround slowdown under 1 ms round-robin time slicing.
    pub temporal_slowdown: f64,
}

/// Extension 1: spatial (MPS) vs. temporal multiplexing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TemporalVsSpatial {
    /// Per-benchmark rows.
    pub rows: Vec<MultiplexRow>,
}

impl TemporalVsSpatial {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "benchmark".into(),
            "spatial (MPS) slowdown".into(),
            "temporal slowdown".into(),
            "better".into(),
        ]);
        for r in &self.rows {
            table.row(vec![
                r.benchmark.name().into(),
                format!("{:.2}x", r.spatial_slowdown),
                format!("{:.2}x", r.temporal_slowdown),
                if r.spatial_slowdown <= r.temporal_slowdown {
                    "spatial".into()
                } else {
                    "temporal".into()
                },
            ]);
        }
        format!(
            "Extension 1: spatial (MPS) vs temporal multiplexing, 2-way \
             homogeneous bags\n{}",
            table.render()
        )
    }
}

/// Runs extension 1 with a 1 ms scheduling quantum.
pub fn temporal_vs_spatial(ctx: &Context) -> TemporalVsSpatial {
    let gpu = ctx.platforms().gpu();
    let rows = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let solo = gpu.simulate(&profile).time_s;
            let spatial = gpu.simulate_bag(&[profile.clone(), profile.clone()]);
            let temporal = gpu.simulate_time_sliced(&[profile.clone(), profile], 1e-3);
            MultiplexRow {
                benchmark: bench,
                spatial_slowdown: spatial.per_app()[0].time_s / solo,
                temporal_slowdown: temporal.mean_slowdown(&[solo, solo]),
            }
        })
        .collect();
    TemporalVsSpatial { rows }
}

/// Extension 2: n-bag prediction accuracy per bag size.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NBagScaling {
    /// `(bag size, mean LOOCV relative error %, points)` rows.
    pub per_size: Vec<(usize, f64, usize)>,
    /// Mean LOOCV error over the whole mixed-size corpus.
    pub overall_percent: f64,
}

impl NBagScaling {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "bag size".into(),
            "rel. error %".into(),
            "test points".into(),
        ]);
        for (n, e, pts) in &self.per_size {
            table.row(vec![n.to_string(), format!("{e:.2}"), pts.to_string()]);
        }
        format!(
            "Extension 2: n-application bag prediction (order-statistic \
             aggregation)\n{}\noverall LOOCV mean: {:.2}%\n",
            table.render(),
            self.overall_percent
        )
    }
}

/// Runs extension 2 on a mixed-size corpus (bags of 2..=4).
pub fn nbag_scaling() -> NBagScaling {
    let platforms = Platforms::paper();
    let records: Vec<NBagMeasurement> = nbag_corpus(24)
        .into_iter()
        .map(|bag| NBagMeasurement::collect(bag, &platforms))
        .collect();

    // Pooled LOOCV predictions, tagged with bag size.
    let mut errors_by_size: Vec<(usize, f64)> = Vec::new();
    let mut predictor = NBagPredictor::new();
    for bench in Benchmark::ALL {
        let (test, train): (Vec<_>, Vec<_>) = records
            .iter()
            .cloned()
            .partition(|m| m.bag().involves(bench));
        if test.is_empty() || train.is_empty() {
            continue;
        }
        predictor.train(&train);
        for m in &test {
            let predicted = predictor.predict(m);
            let truth = m.bag_gpu_time_s();
            errors_by_size.push((m.bag().len(), ((truth - predicted) / truth).abs() * 100.0));
        }
    }

    let per_size = (2..=4usize)
        .map(|n| {
            let errs: Vec<f64> = errors_by_size
                .iter()
                .filter(|(size, _)| *size == n)
                .map(|(_, e)| *e)
                .collect();
            let mean = errs.iter().sum::<f64>() / errs.len().max(1) as f64;
            (n, mean, errs.len())
        })
        .collect();
    let overall_percent =
        errors_by_size.iter().map(|(_, e)| e).sum::<f64>() / errors_by_size.len().max(1) as f64;
    NBagScaling {
        per_size,
        overall_percent,
    }
}

/// Extension 3: regression-model comparison under the paper's LOOCV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelComparison {
    /// `(model name, mean LOOCV relative error %)` rows.
    pub rows: Vec<(String, f64)>,
}

impl ModelComparison {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["model".into(), "LOOCV error %".into()]);
        for (name, e) in &self.rows {
            table.row(vec![name.clone(), format!("{e:.2}")]);
        }
        format!(
            "Extension 3: regression-model comparison (full feature set)\n{}",
            table.render()
        )
    }

    /// Error of one model by name.
    pub fn error_of(&self, name: &str) -> Option<f64> {
        self.rows.iter().find(|(n, _)| n == name).map(|(_, e)| *e)
    }
}

/// Runs extension 3.
pub fn model_comparison(ctx: &Context) -> ModelComparison {
    let rows = [
        (ModelKind::DecisionTree, "decision tree"),
        (ModelKind::RandomForest, "random forest"),
        (ModelKind::Svr, "SVR (RBF)"),
        (ModelKind::Linear, "linear regression"),
    ]
    .into_iter()
    .map(|(kind, name)| {
        let mut p = Predictor::new(FeatureSet::full()).with_model(kind);
        let err = p.loocv_by_benchmark(ctx.records()).mean_error_percent();
        (name.to_string(), err)
    })
    .collect();
    ModelComparison { rows }
}

/// Extension 4: robustness of the predictor to measurement noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseRobustness {
    /// `(noise sigma, mean LOOCV relative error %)` rows.
    pub rows: Vec<(f64, f64)>,
}

impl NoiseRobustness {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["noise sigma".into(), "LOOCV error %".into()]);
        for (sigma, e) in &self.rows {
            table.row(vec![format!("{:.0}%", sigma * 100.0), format!("{e:.2}")]);
        }
        format!(
            "Extension 4: predictor robustness to measurement noise \
             (full feature set)\n{}",
            table.render()
        )
    }
}

/// Runs extension 4: re-evaluates the full-feature predictor with
/// multiplicative measurement noise injected into every time measurement —
/// the run-to-run variance a physical testbed (like the paper's) exhibits.
pub fn noise_robustness(ctx: &Context) -> NoiseRobustness {
    let rows = [0.0, 0.02, 0.05, 0.10]
        .into_iter()
        .map(|sigma| {
            let noisy: Vec<_> = ctx
                .records()
                .iter()
                .enumerate()
                .map(|(i, m)| m.with_noise(i as u64, sigma))
                .collect();
            let mut p = Predictor::new(FeatureSet::full());
            let err = p.loocv_by_benchmark(&noisy).mean_error_percent();
            (sigma, err)
        })
        .collect();
    NoiseRobustness { rows }
}

/// Extension 5: MICA-style benchmark similarity from instruction mixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityMatrix {
    /// Benchmark names, in matrix order.
    pub benchmarks: Vec<String>,
    /// `matrix[i][j]` = Manhattan distance between mixes, in percentage
    /// points (0 = identical, up to 200).
    pub matrix: Vec<Vec<f64>>,
}

impl SimilarityMatrix {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut header = vec!["".to_string()];
        header.extend(self.benchmarks.iter().cloned());
        let mut table = TextTable::new(header);
        for (i, row) in self.matrix.iter().enumerate() {
            let mut cells = vec![self.benchmarks[i].clone()];
            cells.extend(row.iter().map(|d| format!("{d:.0}")));
            table.row(cells);
        }
        format!(
            "Extension 5: benchmark similarity (Manhattan distance between \
             instruction mixes, MICA-style)\n{}",
            table.render()
        )
    }

    /// The most similar distinct pair.
    pub fn closest_pair(&self) -> (usize, usize, f64) {
        let mut best = (0, 0, f64::INFINITY);
        for i in 0..self.matrix.len() {
            for j in i + 1..self.matrix.len() {
                if self.matrix[i][j] < best.2 {
                    best = (i, j, self.matrix[i][j]);
                }
            }
        }
        best
    }
}

/// Runs extension 5 at the standard batch size.
pub fn benchmark_similarity(_ctx: &Context) -> SimilarityMatrix {
    let mixes: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| Workload::new(b, STANDARD_BATCH).profile().mix())
        .collect();
    let matrix = mixes
        .iter()
        .map(|a| mixes.iter().map(|b| a.manhattan_distance(b)).collect())
        .collect();
    SimilarityMatrix {
        benchmarks: Benchmark::ALL
            .iter()
            .map(|b| b.name().to_string())
            .collect(),
        matrix,
    }
}

/// Extension 6: the effect of dynamic resource release on bag makespans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicRelease {
    /// `(bag label, static makespan s, dynamic makespan s)` rows over
    /// heterogeneous standard-batch pairs.
    pub rows: Vec<(String, f64, f64)>,
}

impl DynamicRelease {
    /// Renders as a text table (largest savings first, top 12).
    pub fn render(&self) -> String {
        let mut rows = self.rows.clone();
        rows.sort_by(|a, b| {
            let sa = 1.0 - a.2 / a.1;
            let sb = 1.0 - b.2 / b.1;
            sb.total_cmp(&sa)
        });
        let mut table = TextTable::new(vec![
            "bag".into(),
            "static makespan".into(),
            "dynamic makespan".into(),
            "saving".into(),
        ]);
        for (label, st, dy) in rows.iter().take(12) {
            table.row(vec![
                label.clone(),
                format!("{:.2} ms", st * 1e3),
                format!("{:.2} ms", dy * 1e3),
                format!("{:.1}%", (1.0 - dy / st) * 100.0),
            ]);
        }
        format!(
            "Extension 6: steady-state vs dynamic-release bag model \
             (top 12 savings of {} heterogeneous pairs)\n{}",
            self.rows.len(),
            table.render()
        )
    }

    /// Mean relative saving of the dynamic model across all pairs.
    pub fn mean_saving(&self) -> f64 {
        let total: f64 = self.rows.iter().map(|(_, s, d)| 1.0 - d / s).sum();
        total / self.rows.len().max(1) as f64
    }
}

/// Runs extension 6 over every heterogeneous benchmark pair.
pub fn dynamic_release(ctx: &Context) -> DynamicRelease {
    let gpu = ctx.platforms().gpu();
    let mut rows = Vec::new();
    for (i, &a) in Benchmark::ALL.iter().enumerate() {
        for &b in &Benchmark::ALL[i + 1..] {
            let pa = Workload::new(a, STANDARD_BATCH).profile();
            let pb = Workload::new(b, STANDARD_BATCH).profile();
            let static_ms = gpu.simulate_bag(&[pa.clone(), pb.clone()]).makespan_s();
            let dynamic_ms = gpu.simulate_bag_dynamic(&[pa, pb]).makespan_s;
            rows.push((format!("{a}+{b}"), static_ms, dynamic_ms));
        }
    }
    DynamicRelease { rows }
}

/// Extension 7: CPU thread-count sensitivity (the paper's second open
/// problem: §V-A1 fixes every application at its best thread count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThreadSensitivity {
    /// Thread counts swept.
    pub threads: Vec<u32>,
    /// `(benchmark, time at each thread count in seconds, best count)`.
    pub rows: Vec<(Benchmark, Vec<f64>, u32)>,
}

impl ThreadSensitivity {
    /// Renders as a text table (times normalized to each benchmark's best).
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        header.extend(self.threads.iter().map(|t| format!("t{t}")));
        header.push("best".into());
        let mut table = TextTable::new(header);
        for (bench, times, best) in &self.rows {
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let mut row = vec![bench.name().to_string()];
            row.extend(times.iter().map(|t| format!("{:.2}x", t / min)));
            row.push(best.to_string());
            table.row(row);
        }
        format!(
            "Extension 7: CPU thread-count sensitivity (execution time \
             relative to each benchmark's best configuration)\n{}",
            table.render()
        )
    }
}

/// Runs extension 7 over a thread ladder at the standard batch.
pub fn thread_sensitivity(ctx: &Context) -> ThreadSensitivity {
    let cpu = ctx.platforms().cpu();
    let threads: Vec<u32> = vec![1, 2, 4, 8, 16, 24, 48];
    let rows = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let times: Vec<f64> = threads
                .iter()
                .map(|&t| cpu.simulate(&profile, t).time_s)
                .collect();
            let best = threads[times
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)];
            (bench, times, best)
        })
        .collect();
    ThreadSensitivity { threads, rows }
}

/// Extension 8: fleet capacity planning.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCapacity {
    /// The full fleet report (cells per policy × k, gap table).
    pub report: bagpred_fleet::FleetReport,
}

impl FleetCapacity {
    /// Renders as text tables.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "policy".into(),
            "k".into(),
            "shed rate".into(),
            "p50 ms".into(),
            "p99 ms".into(),
            "packing".into(),
            "utilization".into(),
        ]);
        for c in &self.report.cells {
            table.row(vec![
                c.policy.into(),
                c.gpus.to_string(),
                format!("{:.4}", c.shed_rate),
                format!("{:.2}", c.p50_ms),
                format!("{:.2}", c.p99_ms),
                format!("{:.3}", c.packing_efficiency),
                format!("{:.3}", c.utilization),
            ]);
        }
        let mut gaps = TextTable::new(vec![
            "policy".into(),
            "mean gap %".into(),
            "max gap %".into(),
        ]);
        for row in &self.report.gaps {
            gaps.row(vec![
                row.policy.into(),
                format!("{:.2}", row.mean_percent),
                format!("{:.2}", row.max_percent),
            ]);
        }
        format!(
            "Extension 8: fleet capacity planning ({} diurnal arrivals, \
             policies × fleet sizes)\n{}\nOptimality gap vs exhaustive \
             optimum on small instances\n{}",
            self.report.arrivals,
            table.render(),
            gaps.render()
        )
    }
}

/// Runs extension 8: a short diurnal trace swept over fleet sizes, plus
/// the optimality-gap study. Trains its own serving models (the fleet
/// stack predicts through the serve layer, not the raw predictor).
pub fn fleet_capacity() -> FleetCapacity {
    let cfg = bagpred_fleet::FleetConfig {
        arrivals: bagpred_fleet::ArrivalConfig {
            duration_s: 20.0,
            ..bagpred_fleet::ArrivalConfig::default()
        },
        ..bagpred_fleet::FleetConfig::default()
    };
    let report = bagpred_fleet::run(&cfg).expect("default fleet config is valid");
    FleetCapacity { report }
}

/// Extension 9, live half: what the serving stack reported when a real
/// client closed the loop over the wire with regressed outcomes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LiveDrift {
    /// Whether `bagpred_model_drifting` flipped to 1 in the exposition.
    pub drift_flagged: bool,
    /// Outcome reports the client sent before the flag flipped.
    pub outcomes: u64,
    /// The model the drill regressed (and the alarm named).
    pub model: String,
}

/// Extension 9: closed-loop accuracy observability.
///
/// The offline half replays the pooled LOOCV prediction stream through
/// a [`ResidualWindow`] — the same tracker the server feeds from
/// `observe` outcome reports — so the online MAPE can be compared
/// against the exact offline computation. The drift drill then extends
/// the stream with ground truth perturbed by a fixed factor and records
/// the exact sample at which the Page-Hinkley detector (at the serving
/// defaults) fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineObservability {
    /// Held-out points in the pooled LOOCV stream (folds overlap on
    /// heterogeneous bags, so this exceeds the 91-run corpus).
    pub points: usize,
    /// Pooled per-point MAPE computed offline in exact `f64` arithmetic.
    pub offline_mape_percent: f64,
    /// The same stream through the tracker's microsecond + milli-percent
    /// quantization.
    pub online_mape_percent: f64,
    /// The tracker's EWMA MAPE after the clean replay.
    pub ewma_mape_percent: f64,
    /// The tracker's signed bias after the clean replay, µs.
    pub bias_us: f64,
    /// Fig. 4's macro mean (mean of per-benchmark means), for context.
    pub macro_mean_percent: f64,
    /// The paper's reported Fig. 4 mean.
    pub paper_mean_percent: f64,
    /// 1-based index of the first perturbed sample in the drift drill.
    pub drill_onset: usize,
    /// Factor applied to ground truth from `drill_onset` onward.
    pub drill_factor: f64,
    /// 1-based sample at which the detector fired, `None` if it never
    /// did (the reproduction test asserts it fires past the onset).
    pub drill_fire_index: Option<usize>,
    /// Serving-default Page-Hinkley tolerance fed to the drill.
    pub drift_delta: f64,
    /// Serving-default Page-Hinkley threshold fed to the drill.
    pub drift_lambda: f64,
    /// The live server/client drill; `None` when only the deterministic
    /// offline half ran.
    pub live: Option<LiveDrift>,
}

impl OnlineObservability {
    /// Renders as a text table plus the drill narratives.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["metric".into(), "value".into()]);
        table.row(vec![
            "LOOCV points replayed".into(),
            self.points.to_string(),
        ]);
        table.row(vec![
            "offline pooled MAPE".into(),
            format!("{:.3}%", self.offline_mape_percent),
        ]);
        table.row(vec![
            "online MAPE (ResidualWindow)".into(),
            format!("{:.3}%", self.online_mape_percent),
        ]);
        table.row(vec![
            "online EWMA MAPE".into(),
            format!("{:.3}%", self.ewma_mape_percent),
        ]);
        table.row(vec![
            "online bias".into(),
            format!("{:+.0} us", self.bias_us),
        ]);
        table.row(vec![
            "Fig. 4 macro mean".into(),
            format!(
                "{:.2}%  (paper: {:.0}%)",
                self.macro_mean_percent, self.paper_mean_percent
            ),
        ]);
        let mut out = format!(
            "Extension 9: closed-loop accuracy observability (online residual \
             tracking)\n{}",
            table.render()
        );
        match self.drill_fire_index {
            Some(fired) => out.push_str(&format!(
                "\ndrift drill: ground truth x{:.1} from sample {}; Page-Hinkley \
                 (delta={}, lambda={}) fired at sample {} — {} perturbed outcome(s)\n",
                self.drill_factor,
                self.drill_onset,
                self.drift_delta,
                self.drift_lambda,
                fired,
                fired.saturating_sub(self.drill_onset - 1),
            )),
            None => out.push_str(&format!(
                "\ndrift drill: ground truth x{:.1} from sample {}; detector never \
                 fired\n",
                self.drill_factor, self.drill_onset
            )),
        }
        if let Some(live) = &self.live {
            out.push_str(&format!(
                "live loop: binary client reported {} outcome(s); \
                 bagpred_model_drifting{{model=\"{}\"}} {} in the exposition\n",
                live.outcomes,
                live.model,
                if live.drift_flagged {
                    "flipped to 1"
                } else {
                    "stayed 0"
                },
            ));
        }
        out
    }
}

/// Mirrors the engine's prediction-recording quantization
/// (`predicted_micros`): whole microseconds, clamped to at least 1.
fn micros(seconds: f64) -> u64 {
    let us = (seconds * 1e6).round();
    if us.is_finite() && us >= 1.0 {
        us.min(u64::MAX as f64) as u64
    } else {
        1
    }
}

/// The pooled LOOCV prediction stream: `(predicted_s, truth_s)` per
/// held-out point. Folds are interleaved round-robin — served traffic
/// arrives mixed across benchmarks, not sorted by fold, and a
/// fold-sorted replay would hand the change detector artificial regime
/// shifts at every fold boundary. Fully deterministic.
fn loocv_stream(ctx: &Context) -> Vec<(f64, f64)> {
    let mut folds: Vec<Vec<(f64, f64)>> = Vec::new();
    for &bench in Benchmark::ALL.iter() {
        let (test, train): (Vec<_>, Vec<_>) = ctx
            .records()
            .iter()
            .cloned()
            .partition(|m| m.bag().involves(bench));
        if test.is_empty() || train.is_empty() {
            continue;
        }
        let mut fold = Predictor::new(FeatureSet::full());
        fold.train(&train);
        folds.push(
            test.iter()
                .zip(fold.predict_batch(&test))
                .map(|(m, predicted)| (predicted, m.bag_gpu_time_s()))
                .collect(),
        );
    }
    let mut stream = Vec::new();
    let longest = folds.iter().map(Vec::len).max().unwrap_or(0);
    for i in 0..longest {
        for fold in &folds {
            if let Some(&pair) = fold.get(i) {
                stream.push(pair);
            }
        }
    }
    stream
}

/// How many perturbed samples the drift drill appends.
const DRILL_SAMPLES: usize = 30;
/// Ground-truth perturbation factor: co-runs suddenly take twice as
/// long as the regime the model was trained on.
const DRILL_FACTOR: f64 = 2.0;

/// Runs extension 9's deterministic offline half: clean replay, then
/// the perturbed-truth drift drill. No sockets, no wall clock.
pub fn online_observability(ctx: &Context) -> OnlineObservability {
    let stream = loocv_stream(ctx);

    // Clean replay: online tracker vs exact offline arithmetic.
    let window = ResidualWindow::new();
    let mut offline_sum = 0.0;
    for &(predicted, truth) in &stream {
        offline_sum += ((predicted - truth) / truth).abs() * 100.0;
        window.observe(micros(predicted), micros(truth));
    }

    // Drift drill: same stream (the detector learns the healthy error
    // regime), then ground truth shifts by DRILL_FACTOR — the kind of
    // silent regression outcome feedback exists to catch.
    let defaults = bagpred_serve::ServiceConfig::default();
    let mut detector = PageHinkley::new(defaults.drift_delta, defaults.drift_lambda);
    let drill = ResidualWindow::new();
    let mut fire_index = None;
    let mut sample = 0usize;
    for &(predicted, truth) in &stream {
        sample += 1;
        let ape = drill.observe(micros(predicted), micros(truth));
        if detector.observe(ape) && fire_index.is_none() {
            fire_index = Some(sample);
        }
    }
    let onset = sample + 1;
    for &(predicted, truth) in stream.iter().take(DRILL_SAMPLES) {
        sample += 1;
        let ape = drill.observe(micros(predicted), micros(truth * DRILL_FACTOR));
        if detector.observe(ape) && fire_index.is_none() {
            fire_index = Some(sample);
        }
    }

    let snapshot = window.snapshot();
    let fig4 = crate::accuracy::figure4(ctx);
    OnlineObservability {
        points: stream.len(),
        offline_mape_percent: offline_sum / stream.len().max(1) as f64,
        online_mape_percent: snapshot.online_mape_percent,
        ewma_mape_percent: snapshot.ewma_mape_percent,
        bias_us: snapshot.bias_us,
        macro_mean_percent: fig4.mean_error_percent,
        paper_mean_percent: fig4.paper_mean_error_percent,
        drill_onset: onset,
        drill_factor: DRILL_FACTOR,
        drill_fire_index: fire_index,
        drift_delta: defaults.drift_delta,
        drift_lambda: defaults.drift_lambda,
        live: None,
    }
}

/// Runs extension 9's live half: a real server on an ephemeral port, a
/// binary client predicting and reporting outcomes that come back 2x
/// slower than predicted, until the advisory drift gauge flips in the
/// Prometheus exposition.
pub fn live_drift() -> LiveDrift {
    use bagpred_serve::{bootstrap, Client, PredictionService, Reply, Request, Server};

    let platforms = Platforms::paper();
    let registry = bootstrap::default_registry(&platforms);
    let service =
        PredictionService::start(registry, platforms, bagpred_serve::ServiceConfig::default());
    let mut server =
        Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds an ephemeral port");
    let mut client = Client::new(server.local_addr());

    let model = "pair-tree".to_string();
    let predict = |client: &mut Client| -> (u64, u64) {
        let reply = client
            .request("predict SIFT@20+KNN@40")
            .expect("server is up");
        let predicted_s: f64 = reply
            .split("predicted_s=")
            .nth(1)
            .and_then(|v| v.split_whitespace().next())
            .and_then(|v| v.parse().ok())
            .expect("prediction reply carries predicted_s");
        let id = client.last_request_id().expect("a request just ran");
        (id, micros(predicted_s))
    };
    let drifting = |service: &PredictionService| -> bool {
        let Ok(Reply::Metrics(expo)) = service.call(Request::Metrics) else {
            panic!("metrics always renders");
        };
        expo.lines().any(|line| {
            line.starts_with("bagpred_model_drifting{")
                && line.contains(&model)
                && line.trim_end().ends_with(" 1")
        })
    };

    // Healthy phase: actuals equal the prediction, teaching the
    // detector the zero-error regime.
    let mut outcomes = 0u64;
    for _ in 0..8 {
        let (id, predicted_us) = predict(&mut client);
        client.report_outcome(id, predicted_us).expect("reports");
        outcomes += 1;
    }
    // Regression phase: co-runs now take twice as long as predicted
    // (100% APE per outcome); the alarm should latch within a few.
    let mut drift_flagged = false;
    for _ in 0..32 {
        let (id, predicted_us) = predict(&mut client);
        client
            .report_outcome(id, predicted_us.saturating_mul(2))
            .expect("reports");
        outcomes += 1;
        if drifting(&service) {
            drift_flagged = true;
            break;
        }
    }

    server.shutdown();
    service.shutdown();
    LiveDrift {
        drift_flagged,
        outcomes,
        model,
    }
}

/// Runs the full extension 9 artifact: offline replay + drift drill,
/// then the live server loop.
pub fn online_observability_live(ctx: &Context) -> OnlineObservability {
    let mut ext = online_observability(ctx);
    ext.live = Some(live_drift());
    ext
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_multiplexing_schemes_are_destructive() {
        // Neither scheme reaches ideal 2x-free sharing; both slow each app.
        let ext = temporal_vs_spatial(Context::shared());
        assert_eq!(ext.rows.len(), 9);
        for r in &ext.rows {
            assert!(r.spatial_slowdown > 1.0, "{}", r.benchmark);
            assert!(r.temporal_slowdown > 1.0, "{}", r.benchmark);
        }
    }

    #[test]
    fn temporal_is_serialization_bound_and_spatial_varies() {
        // Round-robin pins every 2-way bag near the 2x serialization bound
        // (switch overheads are small at a 1 ms quantum), while MPS spatial
        // sharing ranges from below 2x (interference-light apps win) to well
        // above it (interference-heavy apps lose) — destructive interference
        // can make time-slicing the better scheme, which is exactly the
        // paper's §II complaint about MPS.
        let ext = temporal_vs_spatial(Context::shared());
        for r in &ext.rows {
            assert!(
                (1.8..2.3).contains(&r.temporal_slowdown),
                "{}: temporal {:.2}",
                r.benchmark,
                r.temporal_slowdown
            );
        }
        let spatial_wins = ext
            .rows
            .iter()
            .filter(|r| r.spatial_slowdown < r.temporal_slowdown)
            .count();
        assert!(
            (1..=8).contains(&spatial_wins),
            "both schemes should win somewhere: spatial {spatial_wins}/9"
        );
        // Interference-heavy benchmarks (large working sets / bandwidth
        // hunger) must be the ones where spatial loses badly.
        let worst = ext
            .rows
            .iter()
            .max_by(|a, b| a.spatial_slowdown.total_cmp(&b.spatial_slowdown))
            .unwrap();
        assert!(
            worst.spatial_slowdown > 2.5,
            "worst {:.2}",
            worst.spatial_slowdown
        );
    }

    #[test]
    fn noise_degrades_error_gracefully() {
        let ext = noise_robustness(Context::shared());
        assert_eq!(ext.rows.len(), 4);
        let clean = ext.rows[0].1;
        let worst = ext.rows.last().unwrap().1;
        // 10% measurement noise should not blow the predictor up — the
        // error floor just rises toward the noise level.
        assert!(
            worst < 3.0 * clean + 15.0,
            "clean {clean:.1} worst {worst:.1}"
        );
        // The zero-noise row must match the deterministic Fig. 4 result.
        let fig4 = crate::accuracy::figure4(Context::shared());
        assert!((clean - fig4.mean_error_percent).abs() < 1e-9);
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_zero_diagonal() {
        let ext = benchmark_similarity(Context::shared());
        let n = ext.benchmarks.len();
        assert_eq!(n, 9);
        for i in 0..n {
            assert!(ext.matrix[i][i] < 1e-9);
            for j in 0..n {
                assert!((ext.matrix[i][j] - ext.matrix[j][i]).abs() < 1e-9);
                assert!(ext.matrix[i][j] <= 200.0 + 1e-9);
            }
        }
    }

    #[test]
    fn objrec_is_most_similar_to_hog() {
        // ObjRec is HoG feature extraction + classification, so its mix must
        // sit closest to HoG's among all pairs involving ObjRec.
        let ext = benchmark_similarity(Context::shared());
        let objrec = ext.benchmarks.iter().position(|b| b == "OBJREC").unwrap();
        let hog = ext.benchmarks.iter().position(|b| b == "HoG").unwrap();
        for (j, name) in ext.benchmarks.iter().enumerate() {
            if j != objrec && j != hog {
                assert!(
                    ext.matrix[objrec][hog] <= ext.matrix[objrec][j],
                    "OBJREC closer to {name} than to HoG"
                );
            }
        }
    }

    #[test]
    fn dynamic_release_never_hurts_and_helps_asymmetric_pairs() {
        let ext = dynamic_release(Context::shared());
        assert_eq!(ext.rows.len(), 36);
        for (label, st, dy) in &ext.rows {
            assert!(
                dy <= &(st * (1.0 + 1e-9)),
                "{label}: dynamic {dy} > static {st}"
            );
        }
        // Asymmetric pairs save substantially on average.
        assert!(
            ext.mean_saving() > 0.05,
            "mean saving {:.1}%",
            ext.mean_saving() * 100.0
        );
    }

    #[test]
    fn thread_sensitivity_best_is_never_one_thread() {
        // Every benchmark parallelizes at least somewhat; the best config
        // always uses multiple threads, and single-threaded runs are
        // substantially slower.
        let ext = thread_sensitivity(Context::shared());
        assert_eq!(ext.rows.len(), 9);
        for (bench, times, best) in &ext.rows {
            assert!(*best > 1, "{bench}: best config is single-threaded");
            let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
            assert!(times[0] > 1.5 * min, "{bench}: 1 thread not much slower");
            // Times are finite and positive throughout the ladder.
            for t in times {
                assert!(t.is_finite() && *t > 0.0, "{bench}");
            }
        }
    }

    #[test]
    fn model_comparison_matches_paper_section_vd() {
        // §V-D: SVR was ~10x worse than the decision tree; linear regression
        // is unsuitable. The tree(-based) models must win clearly.
        let cmp = model_comparison(Context::shared());
        let tree = cmp.error_of("decision tree").unwrap();
        let svr = cmp.error_of("SVR (RBF)").unwrap();
        let linear = cmp.error_of("linear regression").unwrap();
        assert!(svr > 2.0 * tree, "SVR {svr:.1} vs tree {tree:.1}");
        assert!(linear > tree, "linear {linear:.1} vs tree {tree:.1}");
    }

    #[test]
    fn online_mape_matches_offline_loocv_within_quantization() {
        let ext = online_observability(Context::shared());
        // Folds overlap on heterogeneous bags, so the pooled stream
        // exceeds the 91-run corpus.
        assert!(ext.points > 91, "pooled {} points", ext.points);
        // The tracker quantizes predictions to whole microseconds and
        // each sample's percent error to milli-percent; on the corpus's
        // millisecond-scale GPU times that bounds the pooled divergence
        // far below 0.05 percentage points (the documented tolerance).
        assert!(
            (ext.online_mape_percent - ext.offline_mape_percent).abs() < 0.05,
            "online {:.4}% vs offline {:.4}%",
            ext.online_mape_percent,
            ext.offline_mape_percent
        );
        assert!(ext.ewma_mape_percent.is_finite() && ext.ewma_mape_percent >= 0.0);
        // The clean replay's macro mean is the Fig. 4 headline.
        let fig4 = crate::accuracy::figure4(Context::shared());
        assert!((ext.macro_mean_percent - fig4.mean_error_percent).abs() < 1e-9);
    }

    #[test]
    fn drift_drill_fires_deterministically_after_the_perturbation() {
        let a = online_observability(Context::shared());
        let b = online_observability(Context::shared());
        // Pure replay: the fire point is exact and identical run to run.
        assert_eq!(a.drill_fire_index, b.drill_fire_index);
        assert_eq!(
            a.online_mape_percent.to_bits(),
            b.online_mape_percent.to_bits()
        );
        let fired = a
            .drill_fire_index
            .expect("a 2x ground-truth shift must fire the detector");
        assert!(
            fired >= a.drill_onset,
            "detector fired at {fired}, inside the clean stream (onset {})",
            a.drill_onset
        );
        assert!(
            fired < a.drill_onset + DRILL_SAMPLES,
            "detector too slow: fired at {fired}, onset {}",
            a.drill_onset
        );
        assert!(a.render().contains("fired at sample"));
    }

    #[test]
    fn live_loop_flips_the_drifting_gauge_in_the_exposition() {
        let live = live_drift();
        assert!(
            live.drift_flagged,
            "gauge never flipped after {} outcomes",
            live.outcomes
        );
        // The healthy phase alone (8 accurate outcomes) must not trip
        // the alarm; at least one regressed outcome has to land first.
        assert!(live.outcomes > 8, "flagged after only {}", live.outcomes);
    }
}
