//! Figure 4 (LOOCV accuracy) and Figure 5 (comparison with related work).

use crate::context::Context;
use crate::render::TextTable;
use bagpred_core::{schemes, FeatureSet, Predictor};
use bagpred_workloads::Benchmark;
use serde::{Deserialize, Serialize};

/// Fig. 4: leave-one-benchmark-out cross-validation with the full feature
/// set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure4 {
    /// `(benchmark, relative error %, held-out points)` per LOOCV round.
    pub per_benchmark: Vec<(Benchmark, f64, usize)>,
    /// Mean of the per-benchmark errors — the paper reports 9%.
    pub mean_error_percent: f64,
    /// The paper's reported mean, for the side-by-side.
    pub paper_mean_error_percent: f64,
}

impl Figure4 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "left-out benchmark".into(),
            "rel. error %".into(),
            "test points".into(),
        ]);
        for (b, e, n) in &self.per_benchmark {
            table.row(vec![b.name().into(), format!("{e:.2}"), n.to_string()]);
        }
        format!(
            "Figure 4: LOOCV relative error (full feature set)\n{}\nmean: {:.2}%  (paper: {:.0}%)\n",
            table.render(),
            self.mean_error_percent,
            self.paper_mean_error_percent
        )
    }
}

/// Runs the paper's Fig. 4 experiment.
pub fn figure4(ctx: &Context) -> Figure4 {
    let mut predictor = Predictor::new(FeatureSet::full());
    let report = predictor.loocv_by_benchmark(ctx.records());
    Figure4 {
        per_benchmark: report.per_benchmark().to_vec(),
        mean_error_percent: report.mean_error_percent(),
        paper_mean_error_percent: 9.0,
    }
}

/// One scheme's measured-vs-paper error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemeError {
    /// Scheme name.
    pub scheme: String,
    /// Our measured LOOCV relative error, %.
    pub measured_percent: f64,
    /// The paper's reported error, % (when the figure labels one).
    pub paper_percent: Option<f64>,
}

/// Fig. 5: the four feature schemes compared against related work.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure5 {
    /// The four bars, in the paper's order.
    pub schemes: Vec<SchemeError>,
}

impl Figure5 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table =
            TextTable::new(vec!["scheme".into(), "measured %".into(), "paper %".into()]);
        for s in &self.schemes {
            table.row(vec![
                s.scheme.clone(),
                format!("{:.2}", s.measured_percent),
                s.paper_percent.map_or("-".into(), |p| format!("{p:.2}")),
            ]);
        }
        format!(
            "Figure 5: comparison with related-work feature sets (LOOCV)\n{}",
            table.render()
        )
    }
}

/// Evaluates a scheme with the paper's cross-validation protocol.
pub(crate) fn evaluate_scheme(ctx: &Context, scheme: &FeatureSet) -> f64 {
    let mut predictor = Predictor::new(scheme.clone());
    predictor
        .loocv_by_benchmark(ctx.records())
        .mean_error_percent()
}

/// Runs the paper's Fig. 5 experiment.
pub fn figure5(ctx: &Context) -> Figure5 {
    let schemes = schemes::figure5()
        .into_iter()
        .map(|ps| SchemeError {
            measured_percent: evaluate_scheme(ctx, &ps.scheme),
            scheme: ps.scheme.name().to_string(),
            paper_percent: ps.paper_error_percent,
        })
        .collect();
    Figure5 { schemes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_covers_all_benchmarks() {
        let fig = figure4(Context::shared());
        assert_eq!(fig.per_benchmark.len(), 9);
        let held_out: usize = fig.per_benchmark.iter().map(|(_, _, n)| n).sum();
        // Every bag involves 1 or 2 benchmarks; the rounds overlap on
        // heterogeneous bags, so the pooled count exceeds 91.
        assert!(held_out > 91);
    }

    #[test]
    fn figure4_error_is_far_below_insmix_baselines() {
        // The reproduction criterion: the full feature set must land in the
        // same error regime as the paper (single-digit to low-double-digit),
        // an order of magnitude below the instruction-mix-only baseline.
        let fig = figure4(Context::shared());
        assert!(
            fig.mean_error_percent < 30.0,
            "full-feature LOOCV too weak: {:.1}%",
            fig.mean_error_percent
        );
    }

    #[test]
    fn figure5_ordering_matches_paper() {
        // insmix > insmix+CPU > insmix+CPU+fairness > full: each added
        // feature group reduces the error, and the full set is an order of
        // magnitude better than instruction mix alone.
        let fig = figure5(Context::shared());
        assert_eq!(fig.schemes.len(), 4);
        let e: Vec<f64> = fig.schemes.iter().map(|s| s.measured_percent).collect();
        assert!(e[0] > e[1], "insmix {:.1} vs +CPU {:.1}", e[0], e[1]);
        assert!(e[1] > e[3], "+CPU {:.1} vs full {:.1}", e[1], e[3]);
        assert!(e[2] > e[3], "+fairness {:.1} vs full {:.1}", e[2], e[3]);
        assert!(
            e[0] > 5.0 * e[3],
            "full must be ~an order of magnitude better: insmix {:.1} vs full {:.1}",
            e[0],
            e[3]
        );
    }

    #[test]
    fn renders_include_paper_reference() {
        let fig = figure4(Context::shared());
        assert!(fig.render().contains("paper"));
    }
}
