//! Figures 10-12: analysis of the decision paths (§VI-C).
//!
//! The paper's argument for decision trees is that the learned model can be
//! read: for every test point one can list which features gate its
//! prediction. Fig. 10 reports the percentage of test points whose path
//! uses each feature, Fig. 11 the per-path usage frequencies (a radar
//! plot), and Fig. 12 a per-point heat map of usage counts.

use crate::context::Context;
use crate::render::TextTable;
use bagpred_core::{DecisionPathReport, FeatureSet, Predictor};
use serde::{Deserialize, Serialize};

/// Fig. 10: feature presence across test-point decision paths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure10 {
    /// `(feature name, % of test points whose path uses it)`.
    pub presence: Vec<(String, f64)>,
}

impl Figure10 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["feature".into(), "% of test points".into()]);
        for (name, pct) in &self.presence {
            table.row(vec![name.clone(), format!("{pct:.1}")]);
        }
        format!(
            "Figure 10: percentage of test points containing a feature in \
             their decision path\n{}",
            table.render()
        )
    }
}

/// Fig. 11: per-feature usage frequency along decision paths (radar data).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure11 {
    /// `(feature name, mean uses per path, max uses in any path)`.
    pub frequency: Vec<(String, f64, usize)>,
}

impl Figure11 {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "feature".into(),
            "mean uses/path".into(),
            "max uses".into(),
        ]);
        for (name, mean, max) in &self.frequency {
            table.row(vec![name.clone(), format!("{mean:.2}"), max.to_string()]);
        }
        format!(
            "Figure 11: frequency of each feature in test-point decision \
             paths (radar-plot data)\n{}",
            table.render()
        )
    }
}

/// Fig. 12: the per-test-point feature-usage heat map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure12 {
    /// Feature names, in column order.
    pub features: Vec<String>,
    /// `(test point label, usage count per feature)` rows.
    pub rows: Vec<(String, Vec<usize>)>,
}

impl Figure12 {
    /// Renders the first `limit` rows as a text table (the paper, too,
    /// shows a snapshot).
    pub fn render_snapshot(&self, limit: usize) -> String {
        let mut header = vec!["test point".to_string()];
        header.extend(self.features.iter().cloned());
        let mut table = TextTable::new(header);
        for (i, (_, counts)) in self.rows.iter().take(limit).enumerate() {
            let mut row = vec![format!("t{}", i + 1)];
            row.extend(counts.iter().map(usize::to_string));
            table.row(row);
        }
        format!(
            "Figure 12: feature-usage heat map over test points \
             (showing {} of {})\n{}",
            limit.min(self.rows.len()),
            self.rows.len(),
            table.render()
        )
    }
}

/// Runs the pooled-LOOCV decision-path analysis behind Figs. 10-12.
fn analyze(ctx: &Context) -> DecisionPathReport {
    let mut predictor = Predictor::new(FeatureSet::full());
    DecisionPathReport::collect(&mut predictor, ctx.records())
}

/// Fig. 10 data.
pub fn figure10(ctx: &Context) -> Figure10 {
    let report = analyze(ctx);
    Figure10 {
        presence: report
            .usage()
            .iter()
            .map(|u| (u.feature.name().to_string(), u.presence_percent))
            .collect(),
    }
}

/// Fig. 11 data.
pub fn figure11(ctx: &Context) -> Figure11 {
    let report = analyze(ctx);
    Figure11 {
        frequency: report
            .usage()
            .iter()
            .map(|u| (u.feature.name().to_string(), u.mean_uses, u.max_uses))
            .collect(),
    }
}

/// Fig. 12 data.
pub fn figure12(ctx: &Context) -> Figure12 {
    let report = analyze(ctx);
    Figure12 {
        features: report
            .features()
            .iter()
            .map(|f| f.name().to_string())
            .collect(),
        rows: report.heatmap().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_core::Feature;

    fn presence_of(fig: &Figure10, feature: Feature) -> f64 {
        fig.presence
            .iter()
            .find(|(n, _)| n == feature.name())
            .map(|(_, p)| *p)
            .expect("feature present in report")
    }

    #[test]
    fn gpu_time_gates_nearly_every_path() {
        // The paper's Fig. 10: GPU time occurs in 100% of test points.
        let fig = figure10(Context::shared());
        let gpu = presence_of(&fig, Feature::GpuTime);
        assert!(gpu > 90.0, "GPU presence {gpu:.1}%");
    }

    #[test]
    fn gpu_time_outranks_every_other_feature() {
        let fig = figure10(Context::shared());
        let gpu = presence_of(&fig, Feature::GpuTime);
        for (name, pct) in &fig.presence {
            if name != Feature::GpuTime.name() {
                assert!(gpu >= *pct, "{name} ({pct:.1}%) outranks GPU ({gpu:.1}%)");
            }
        }
    }

    #[test]
    fn fairness_contributes_to_paths() {
        // The paper reports fairness in ~65% of decision paths. Our
        // deterministic substrate lets GPU/CPU time features purify nodes
        // more often than the paper's noisy measurements did, so fairness
        // gates fewer paths here — but it must contribute a clearly
        // non-trivial share (see EXPERIMENTS.md for the deviation note).
        let fig = figure10(Context::shared());
        let fairness = presence_of(&fig, Feature::Fairness);
        assert!(fairness > 8.0, "fairness presence {fairness:.1}%");
    }

    #[test]
    fn gpu_mean_usage_is_highest() {
        // Fig. 11: the radar plot peaks on GPU time (used 5-6 times/path).
        let fig = figure11(Context::shared());
        let gpu = fig.frequency.iter().find(|(n, _, _)| n == "GPU").unwrap().1;
        for (name, mean, _) in &fig.frequency {
            if name != "GPU" {
                assert!(gpu >= *mean, "{name} used more than GPU per path");
            }
        }
        assert!(gpu >= 1.5, "GPU mean uses {gpu:.2}");
    }

    #[test]
    fn heatmap_rows_match_feature_columns() {
        let fig = figure12(Context::shared());
        assert_eq!(fig.features.len(), 12);
        for (label, counts) in &fig.rows {
            assert_eq!(counts.len(), 12, "row {label}");
        }
        let snapshot = fig.render_snapshot(26);
        assert!(snapshot.contains("t26") || fig.rows.len() < 26);
    }
}
