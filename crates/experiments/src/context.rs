//! Shared experiment context: the measured corpus and platforms.

use bagpred_core::{Corpus, Measurement, Platforms};
use std::sync::OnceLock;

/// Everything the experiments need, measured once per process.
///
/// Building the context profiles all 45 workloads (9 benchmarks × 5 batch
/// sizes) and measures the 91-bag corpus; it takes a few seconds and is
/// shared behind [`Context::shared`].
#[derive(Debug)]
pub struct Context {
    platforms: Platforms,
    records: Vec<Measurement>,
}

impl Context {
    /// Builds a fresh context (prefer [`Context::shared`]).
    pub fn build() -> Self {
        let platforms = Platforms::paper();
        let records = Corpus::paper().measure_on(&platforms);
        Self { platforms, records }
    }

    /// The process-wide shared context.
    pub fn shared() -> &'static Context {
        static CONTEXT: OnceLock<Context> = OnceLock::new();
        CONTEXT.get_or_init(Context::build)
    }

    /// The simulated machines (Table III).
    pub fn platforms(&self) -> &Platforms {
        &self.platforms
    }

    /// The measured 91-run corpus.
    pub fn records(&self) -> &[Measurement] {
        &self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_context_is_reused() {
        let a = Context::shared() as *const Context;
        let b = Context::shared() as *const Context;
        assert_eq!(a, b);
    }

    #[test]
    fn context_has_full_corpus() {
        assert_eq!(Context::shared().records().len(), 91);
    }
}
