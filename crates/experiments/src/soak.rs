//! Deterministic chaos soak: a live server under a multi-site fault
//! storm, hammered by hedging clients, with conservation invariants
//! checked after the storm drains.
//!
//! The harness composes the serving stack's existing fault sites
//! (`slow_predict`, `worker_panic`, `cancel_race`, `drop_reply`,
//! `dup_reply`) against a real TCP server and a fleet of hedging
//! binary clients that mix priority classes and sprinkle explicit
//! cancels. Individual latencies, hedge counts, and cancel verdicts
//! are timing-dependent and therefore *not* reproducible — what IS
//! deterministic is the work: with no deadlines and generous retry
//! budgets, every request eventually succeeds, so the reply ledger is
//! a pure function of the seed and the config. The digest line
//! ([`SoakReport::digest`]) contains only those deterministic
//! quantities plus the invariant verdict; `scripts/verify.sh` runs the
//! soak twice at the same seed and compares digests byte for byte.
//!
//! The invariants are conservation laws, not point predictions:
//!
//! * `received == succeeded + failed + 1` — after a clean drain the
//!   only request in flight is the stats request reading the snapshot,
//!   so every request the engine accepted was answered.
//! * every shard queue is empty — no stuck jobs behind a dead worker.
//! * `enqueued <= served + shed` per shard — dequeue-dropped work
//!   (cancelled, expired) is shed, never silently vanished.
//! * cancel counters bracket the cancel commands the clients actually
//!   sent (explicit ones plus one quiet cancel per fired hedge).
//! * `hedge_deduped <= hedges fired` — the engine never deduplicates
//!   a pair it was not told about.

use bagpred_core::Platforms;
use bagpred_serve::{
    bootstrap, Client, ClientConfig, FaultPlan, ModelRegistry, PredictionService, Reply, Request,
    Server, ServiceConfig,
};
use bagpred_trace::SplitMix64;
use std::sync::Arc;
use std::time::Duration;

/// Schema tag leading every digest line.
pub const SCHEMA: &str = "bagpred-soak-v1";

/// Shape of one soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakConfig {
    /// Seed for every client's workload/priority stream.
    pub seed: u64,
    /// Concurrent hedging clients.
    pub clients: usize,
    /// Predict requests per client.
    pub requests_per_client: usize,
    /// Marks the report (and shrinks nothing by itself — the smoke
    /// constructor picks the small numbers).
    pub smoke: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            clients: 8,
            requests_per_client: 150,
            smoke: false,
        }
    }
}

impl SoakConfig {
    /// The short configuration `scripts/verify.sh` runs twice.
    pub fn smoke() -> Self {
        Self {
            clients: 4,
            requests_per_client: 25,
            smoke: true,
            ..Self::default()
        }
    }
}

/// What one client thread saw.
#[derive(Debug, Clone, Copy, Default)]
struct ClientTally {
    ok_replies: u64,
    hedges_fired: u64,
    hedge_wins: u64,
    retries: u64,
    cancels_sent: u64,
    cancel_late: u64,
}

/// The post-storm ledger: client-side tallies, the engine's own stats,
/// and the invariant verdicts.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The config that ran.
    pub config: SoakConfig,
    /// `ok` predict replies across all clients — deterministic:
    /// `clients * requests_per_client`, or an invariant failed.
    pub ok_replies: u64,
    /// Explicit `cancel` commands sent (deterministic: every 7th
    /// request per client).
    pub explicit_cancels: u64,
    /// Hedges fired across all clients (timing-dependent).
    pub hedges_fired: u64,
    /// Hedge attempts that beat their primary (timing-dependent).
    pub hedge_wins: u64,
    /// Client-side retries (timing-dependent).
    pub retries: u64,
    /// Faults the armed plan actually injected.
    pub faults_injected: u64,
    /// Server-side counters after the drain: requests the engine
    /// accepted, answered ok, answered err.
    pub received: u64,
    /// See [`Self::received`].
    pub succeeded: u64,
    /// See [`Self::received`].
    pub failed: u64,
    /// Requests dropped at dequeue by a cancel.
    pub cancelled: u64,
    /// Cancel commands that arrived after their target completed.
    pub cancel_late: u64,
    /// Hedge-pair duplicates deduplicated out of per-model stats.
    pub hedge_deduped: u64,
    /// Invariant violations; empty means the storm conserved.
    pub violations: Vec<String>,
}

impl SoakReport {
    /// True when every invariant held.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The bit-stable line: only seed-determined quantities and the
    /// invariant verdict. Two runs at the same seed must produce the
    /// same bytes; timing-dependent counters (hedges, cancels, retries)
    /// are asserted as inequalities in the invariants instead.
    pub fn digest(&self) -> String {
        format!(
            "{SCHEMA} seed={} clients={} requests={} ok_replies={} explicit_cancels={} \
             invariants={}",
            self.config.seed,
            self.config.clients,
            self.config.requests_per_client,
            self.ok_replies,
            self.explicit_cancels,
            if self.passed() { "pass" } else { "FAIL" },
        )
    }

    /// Human-readable summary, digest last.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos soak: {} clients x {} requests (seed {}{})\n",
            self.config.clients,
            self.config.requests_per_client,
            self.config.seed,
            if self.config.smoke { ", smoke" } else { "" },
        ));
        out.push_str(&format!(
            "  client side: {} ok replies, {} hedges fired ({} won), {} retries, \
             {} explicit cancels\n",
            self.ok_replies,
            self.hedges_fired,
            self.hedge_wins,
            self.retries,
            self.explicit_cancels,
        ));
        out.push_str(&format!(
            "  server side: received={} succeeded={} failed={} cancelled={} cancel_late={} \
             hedge_deduped={} faults_injected={}\n",
            self.received,
            self.succeeded,
            self.failed,
            self.cancelled,
            self.cancel_late,
            self.hedge_deduped,
            self.faults_injected,
        ));
        if self.passed() {
            out.push_str("  invariants: all hold\n");
        } else {
            for violation in &self.violations {
                out.push_str(&format!("  INVARIANT VIOLATED: {violation}\n"));
            }
        }
        out.push_str(&self.digest());
        out.push('\n');
        out
    }
}

/// The storm: every robustness-relevant fault site armed at once.
/// Counts are finite so the run converges; `slow_predict` stays rare
/// (the hedge estimator must keep a fast p95) and shorter than the
/// client io timeout.
fn storm() -> FaultPlan {
    FaultPlan::parse(
        "slow_predict:model=pair-tree:every=15:ms=25:count=1000000;\
         worker_panic:count=2;\
         cancel_race:ms=1:count=10;\
         drop_reply:every=41:count=4;\
         dup_reply:every=29:count=6",
    )
    .expect("storm spec parses")
}

/// Two-app bags the clients rotate through — all valid for both the
/// pair and n-bag models, varied so the feature cache sees traffic.
const BAGS: [&str; 4] = [
    "SIFT@20+KNN@40",
    "FAST@10+SVM@20",
    "SIFT@40+ORB@10",
    "KNN@20+FAST@40",
];

const MODELS: [&str; 2] = ["pair-tree", "nbag-tree"];
const PRIOS: [&str; 3] = ["high", "normal", "low"];

/// Runs the soak against an already-trained registry.
pub fn run_with(registry: &Arc<ModelRegistry>, cfg: &SoakConfig) -> SoakReport {
    let service = PredictionService::start(
        Arc::clone(registry),
        Platforms::paper(),
        ServiceConfig {
            faults: Arc::new(storm()),
            // `worker_panic` must not escalate into quarantine: an
            // `err unavailable` is not retryable and would break the
            // every-request-succeeds determinism the digest relies on.
            quarantine_threshold: 0,
            ..ServiceConfig::default()
        },
    );
    let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("soak server binds");
    let addr = server.local_addr();

    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients)
            .map(|i| {
                let seed = cfg
                    .seed
                    .wrapping_add(i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let requests = cfg.requests_per_client;
                scope.spawn(move || client_loop(addr, seed, requests))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client"))
            .collect()
    });

    // Clients are gone and the listener is down, but hedge losers may
    // still be draining through the queues — poll until the engine
    // settles. A settled snapshot has exactly one request in flight:
    // the stats request taking it (counted `received` at enqueue, but
    // `succeeded` only after its own snapshot).
    server.shutdown();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let stats = loop {
        let Ok(Reply::Stats(stats)) = service.call(Request::Stats { model: None }) else {
            panic!("stats must answer after the storm");
        };
        let m = &stats.metrics;
        let settled = stats.queue_depth == 0 && m.received == m.succeeded + m.failed + 1;
        if settled || std::time::Instant::now() >= deadline {
            break stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    service.shutdown();

    let ok_replies: u64 = tallies.iter().map(|t| t.ok_replies).sum();
    let hedges_fired: u64 = tallies.iter().map(|t| t.hedges_fired).sum();
    let hedge_wins: u64 = tallies.iter().map(|t| t.hedge_wins).sum();
    let retries: u64 = tallies.iter().map(|t| t.retries).sum();
    let explicit_cancels: u64 = tallies.iter().map(|t| t.cancels_sent).sum();
    let cancel_late: u64 = tallies.iter().map(|t| t.cancel_late).sum();

    let mut violations = Vec::new();
    let mut check = |ok: bool, law: String| {
        if !ok {
            violations.push(law);
        }
    };

    let m = &stats.metrics;
    check(
        m.received == m.succeeded + m.failed + 1,
        format!(
            "received = succeeded + failed + the in-flight stats request: {} != {} + {} + 1",
            m.received, m.succeeded, m.failed
        ),
    );
    check(
        stats.queue_depth == 0,
        format!("clean drain: {} jobs still queued", stats.queue_depth),
    );
    for shard in &stats.shards {
        check(
            shard.queue_depth == 0,
            format!("shard {} drained: depth {}", shard.name, shard.queue_depth),
        );
        check(
            shard.enqueued <= shard.served + shard.shed,
            format!(
                "shard {} conserves: enqueued {} > served {} + shed {}",
                shard.name, shard.enqueued, shard.served, shard.shed
            ),
        );
    }
    let expected = (cfg.clients * cfg.requests_per_client) as u64;
    check(
        ok_replies == expected,
        format!("every request answers ok: {ok_replies} != {expected}"),
    );
    check(
        m.succeeded >= ok_replies,
        format!(
            "server ok count covers client ok count: {} < {ok_replies}",
            m.succeeded
        ),
    );
    // Every cancel command was either explicit or the quiet one a
    // resolved hedge pair fires at its loser; the server counters can
    // only bracket them because a cancel that races a worker's pickup
    // is absorbed without touching either counter.
    check(
        stats.cancelled + stats.cancel_late <= explicit_cancels + hedges_fired,
        format!(
            "cancel counters bracket commands: {} + {} > {explicit_cancels} + {hedges_fired}",
            stats.cancelled, stats.cancel_late
        ),
    );
    check(
        stats.cancel_late >= cancel_late,
        format!(
            "every client-observed late cancel is counted: {} < {cancel_late}",
            stats.cancel_late
        ),
    );
    check(
        stats.hedge_deduped <= hedges_fired,
        format!(
            "dedup never exceeds hedges fired: {} > {hedges_fired}",
            stats.hedge_deduped
        ),
    );
    check(
        hedge_wins <= hedges_fired,
        format!("wins never exceed hedges fired: {hedge_wins} > {hedges_fired}"),
    );

    SoakReport {
        config: cfg.clone(),
        ok_replies,
        explicit_cancels,
        hedges_fired,
        hedge_wins,
        retries,
        faults_injected: stats.faults_injected,
        received: m.received,
        succeeded: m.succeeded,
        failed: m.failed,
        cancelled: stats.cancelled,
        cancel_late: stats.cancel_late,
        hedge_deduped: stats.hedge_deduped,
        violations,
    }
}

/// Trains the default registry, then [`run_with`].
pub fn run(cfg: &SoakConfig) -> SoakReport {
    let registry = bootstrap::default_registry(&Platforms::paper());
    run_with(&registry, cfg)
}

/// One hedging client's request stream: seeded model/bag/priority
/// choices, no deadlines (every request must eventually succeed), an
/// explicit cancel of the previous request every 7th iteration.
fn client_loop(addr: std::net::SocketAddr, seed: u64, requests: usize) -> ClientTally {
    let mut rng = SplitMix64::new(seed);
    let mut client = Client::with_config(
        addr,
        ClientConfig {
            hedge: true,
            hedge_min_samples: 5,
            max_attempts: 8,
            // Long enough that a 25ms `slow_predict` stall never trips
            // it, short enough that the rare double-drop (primary and
            // hedge replies both eaten) retries quickly.
            io_timeout: Duration::from_millis(1000),
            jitter_seed: seed,
            ..ClientConfig::default()
        },
    );
    let mut tally = ClientTally::default();
    for n in 0..requests {
        let model = MODELS[rng.next_below(MODELS.len() as u64) as usize];
        let bag = BAGS[rng.next_below(BAGS.len() as u64) as usize];
        let prio = PRIOS[rng.next_below(PRIOS.len() as u64) as usize];
        let line = format!("predict model={model} prio={prio} {bag}");
        let reply = client.request(&line).expect("soak request");
        assert!(reply.starts_with("ok "), "soak request failed: {reply}");
        tally.ok_replies += 1;
        if n % 7 == 6 {
            let id = client.last_request_id().expect("a request just ran");
            tally.cancels_sent += 1;
            // A `drop_reply` fault can eat the cancel's ack; the send
            // still happened (and was likely processed), so the attempt
            // counts and only the verdict tally goes unobserved. The
            // dead socket reconnects on the next request.
            match client.cancel(id) {
                Ok(verdict) => match verdict.as_str() {
                    "ok cancel=pending" => {}
                    "ok cancel=late" => tally.cancel_late += 1,
                    other => panic!("unexpected cancel verdict: {other}"),
                },
                Err(bagpred_serve::ClientError::Io(_)) => {}
                Err(other) => panic!("soak cancel: {other:?}"),
            }
        }
    }
    tally.hedges_fired = client.hedges_fired();
    tally.hedge_wins = client.hedge_wins();
    tally.retries = client.retries();
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soak_holds_invariants_and_digest_is_deterministic() {
        let registry = bootstrap::default_registry(&Platforms::paper());
        let cfg = SoakConfig::smoke();
        let first = run_with(&registry, &cfg);
        assert!(first.passed(), "{:?}", first.violations);
        assert_eq!(
            first.ok_replies,
            (cfg.clients * cfg.requests_per_client) as u64
        );
        // Every client cancels every 7th request, deterministically.
        assert_eq!(
            first.explicit_cancels,
            (cfg.clients * (cfg.requests_per_client / 7)) as u64
        );
        let second = run_with(&registry, &cfg);
        assert!(second.passed(), "{:?}", second.violations);
        assert_eq!(first.digest(), second.digest());
        // A different seed keeps the same deterministic totals but is
        // a different digest line.
        let other = run_with(
            &registry,
            &SoakConfig {
                seed: 43,
                ..cfg.clone()
            },
        );
        assert!(other.passed(), "{:?}", other.violations);
        assert_ne!(first.digest(), other.digest());
    }
}
