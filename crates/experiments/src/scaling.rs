//! Figures 1-3: performance under homogeneous multi-application concurrency.
//!
//! The paper's motivation section runs 1-4 instances of every benchmark on
//! the CPU and the GPU and plots per-benchmark performance normalized to the
//! single-instance run. The headline observations these figures carry:
//!
//! 1. GPU performance falls monotonically as instances are added;
//! 2. CPU performance degrades far less (and non-monotonically for some
//!    benchmarks);
//! 3. single-instance GPU performance beats the CPU for most benchmarks —
//!    with exceptions (FAST, ORB, SVM) — and the advantage erodes with
//!    concurrency.

use crate::context::Context;
use crate::render::TextTable;
use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use serde::{Deserialize, Serialize};

/// Instance counts swept by Figs. 1-3.
pub const INSTANCE_COUNTS: [usize; 4] = [1, 2, 3, 4];

/// One benchmark's normalized-performance series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingSeries {
    /// The benchmark.
    pub benchmark: Benchmark,
    /// Normalized performance at each of [`INSTANCE_COUNTS`] instances
    /// (1.0 at one instance by construction).
    pub normalized_perf: Vec<f64>,
}

/// A whole figure: one series per benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingFigure {
    /// Which artifact this is ("Figure 1" …).
    pub title: String,
    /// Per-benchmark series.
    pub series: Vec<ScalingSeries>,
}

impl ScalingFigure {
    /// Renders the figure as a text table (benchmarks × instance counts).
    pub fn render(&self) -> String {
        let mut header = vec!["benchmark".to_string()];
        for n in INSTANCE_COUNTS {
            header.push(format!("x{n}"));
        }
        let mut table = TextTable::new(header);
        for s in &self.series {
            let mut row = vec![s.benchmark.name().to_string()];
            for v in &s.normalized_perf {
                row.push(format!("{v:.3}"));
            }
            table.row(row);
        }
        format!("{}\n{}", self.title, table.render())
    }

    /// The series for one benchmark.
    pub fn series_for(&self, benchmark: Benchmark) -> Option<&ScalingSeries> {
        self.series.iter().find(|s| s.benchmark == benchmark)
    }
}

/// Per-instance CPU performance, normalized to one instance (Fig. 1).
///
/// Performance is the reciprocal of per-instance execution time (the
/// paper's definition); `n` co-running instances are simulated as an
/// `n`-way share of the server.
pub fn figure1(ctx: &Context) -> ScalingFigure {
    let cpu = ctx.platforms().cpu();
    let series = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let solo = cpu.simulate_best(&profile).time_s;
            let normalized_perf = INSTANCE_COUNTS
                .iter()
                .map(|&n| {
                    let shared = cpu.simulate_shared(&vec![profile.clone(); n]);
                    solo / shared[0].time_s
                })
                .collect();
            ScalingSeries {
                benchmark: bench,
                normalized_perf,
            }
        })
        .collect();
    ScalingFigure {
        title: "Figure 1: CPU performance with multi-application concurrency \
                (normalized to 1 instance)"
            .to_string(),
        series,
    }
}

/// Per-instance GPU performance, normalized to one instance (Fig. 2).
pub fn figure2(ctx: &Context) -> ScalingFigure {
    let gpu = ctx.platforms().gpu();
    let series = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let solo = gpu.simulate(&profile).time_s;
            let normalized_perf = INSTANCE_COUNTS
                .iter()
                .map(|&n| {
                    let bag = gpu.simulate_bag(&vec![profile.clone(); n]);
                    solo / bag.per_app()[0].time_s
                })
                .collect();
            ScalingSeries {
                benchmark: bench,
                normalized_perf,
            }
        })
        .collect();
    ScalingFigure {
        title: "Figure 2: GPU performance with multi-application concurrency \
                (normalized to 1 instance)"
            .to_string(),
        series,
    }
}

/// GPU/CPU performance ratio at each instance count (Fig. 3).
///
/// Values above 1 mean the GPU outperforms the CPU at that concurrency.
pub fn figure3(ctx: &Context) -> ScalingFigure {
    let cpu = ctx.platforms().cpu();
    let gpu = ctx.platforms().gpu();
    let series = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let profile = Workload::new(bench, STANDARD_BATCH).profile();
            let normalized_perf = INSTANCE_COUNTS
                .iter()
                .map(|&n| {
                    let (cpu_time, gpu_time) = if n == 1 {
                        (
                            cpu.simulate_best(&profile).time_s,
                            gpu.simulate(&profile).time_s,
                        )
                    } else {
                        (
                            cpu.simulate_shared(&vec![profile.clone(); n])[0].time_s,
                            gpu.simulate_bag(&vec![profile.clone(); n]).per_app()[0].time_s,
                        )
                    };
                    cpu_time / gpu_time
                })
                .collect();
            ScalingSeries {
                benchmark: bench,
                normalized_perf,
            }
        })
        .collect();
    ScalingFigure {
        title: "Figure 3: GPU / CPU performance with multi-application concurrency".to_string(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_performance_falls_monotonically() {
        // The paper's central motivation (Fig. 2).
        let fig = figure2(Context::shared());
        for s in &fig.series {
            assert!((s.normalized_perf[0] - 1.0).abs() < 1e-9);
            for w in s.normalized_perf.windows(2) {
                assert!(
                    w[1] < w[0],
                    "{}: GPU perf must fall with instances: {:?}",
                    s.benchmark,
                    s.normalized_perf
                );
            }
        }
    }

    #[test]
    fn cpu_degrades_less_than_gpu() {
        // Fig. 1 vs Fig. 2: at 4 instances, the CPU retains more of its
        // single-instance performance than the GPU for most benchmarks.
        let ctx = Context::shared();
        let cpu = figure1(ctx);
        let gpu = figure2(ctx);
        let better = Benchmark::ALL
            .iter()
            .filter(|&&b| {
                let c = cpu.series_for(b).unwrap().normalized_perf[3];
                let g = gpu.series_for(b).unwrap().normalized_perf[3];
                c > g
            })
            .count();
        assert!(better >= 6, "CPU should degrade less for most: {better}/9");
    }

    #[test]
    fn figure3_exceptions_match_paper() {
        // Single-instance GPU beats CPU except FAST, ORB, SVM (§IV-C).
        let fig = figure3(Context::shared());
        for s in &fig.series {
            let single = s.normalized_perf[0];
            let expect_cpu_win = matches!(
                s.benchmark,
                Benchmark::Fast | Benchmark::Orb | Benchmark::Svm
            );
            if expect_cpu_win {
                assert!(
                    single < 1.0,
                    "{} should favor CPU: {single:.2}",
                    s.benchmark
                );
            } else {
                assert!(
                    single > 1.0,
                    "{} should favor GPU: {single:.2}",
                    s.benchmark
                );
            }
        }
    }

    #[test]
    fn render_contains_all_benchmarks() {
        let fig = figure1(Context::shared());
        let text = fig.render();
        for b in Benchmark::ALL {
            assert!(text.contains(b.name()), "missing {b}");
        }
    }
}
