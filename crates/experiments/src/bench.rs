//! In-tree benchmark harness for the training + inference pipeline.
//!
//! `repro bench` times the stages the flattened-tree and parallel-training
//! work targets:
//!
//! * corpus measurement, serial vs. parallel ([`bagpred_core::parallel`]);
//! * cold model training (tree and forest);
//! * leave-one-benchmark-out cross-validation, serial vs. parallel;
//! * single-record `predict` vs. flattened `predict_batch` on a large
//!   cycled batch (tree and forest).
//!
//! Every run of every stage is also recorded into the serving layer's
//! lock-free [`LogHistogram`] — the report's `stage_*` keys give p50/p95/max
//! per phase (including individual LOOCV folds via
//! [`Predictor::loocv_fold`]) — and `obs_batch_overhead_percent` measures
//! what that instrumentation costs on the batch-predict path (gated < 5%
//! by `scripts/verify.sh`).
//!
//! The report is written as `BENCH_pipeline.json` (hand-formatted — the
//! offline build carries no JSON dependency) so `scripts/verify.sh` can
//! smoke-run the harness and fail on large throughput regressions against
//! the committed baseline. Wall-clock numbers depend on the machine and
//! `BAGPRED_THREADS`; the per-record nanosecond rates are the stable
//! regression signal, so only `*_ns_per_record` keys are compared.

use bagpred_core::{
    parallel, Bag, Corpus, FeatureSet, Measurement, ModelKind, Platforms, Predictor,
};
use bagpred_ml::{FlatForest, FlatTree};
use bagpred_obs::{LogHistogram, ResidualWindow};
use bagpred_workloads::{Benchmark, Workload};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Schema tag embedded in (and required of) every report.
pub const SCHEMA: &str = "bagpred-bench-v1";

/// The report keys compared against a baseline. Wall-clock stage times
/// vary with corpus size and thread count; these per-record rates do not.
/// The two `serve_*_protocol_*` keys are the serving front-end's codec
/// cost per request (no sockets in the loop), so they are as stable as
/// the predict rates.
pub const RATE_KEYS: [&str; 8] = [
    "tree_single_ns_per_record",
    "tree_batch_ns_per_record",
    "forest_single_ns_per_record",
    "forest_batch_ns_per_record",
    "flat_simd_tree_ns_per_record",
    "flat_simd_forest_ns_per_record",
    "serve_text_protocol_ns_per_request",
    "serve_binary_protocol_ns_per_request",
];

/// Harness knobs.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOptions {
    /// Shrinks the corpus, batch and repetition counts so the harness
    /// finishes in seconds — the mode `scripts/verify.sh` runs.
    pub smoke: bool,
}

/// Every measured number, plus the context needed to interpret it.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// True when produced by a smoke run (smaller corpus and batch — the
    /// `*_ms` stage times are not comparable with a full run's).
    pub smoke: bool,
    /// Worker threads the parallel stages used
    /// ([`parallel::configured_threads`]). Speedups can only materialize
    /// when this exceeds 1 — record it so results are honest on any host.
    pub threads: usize,
    /// Bags in the measured corpus.
    pub corpus_bags: usize,
    /// Records in the cycled prediction batch.
    pub batch_records: usize,
    /// Corpus measurement wall time, one worker, milliseconds.
    pub corpus_measure_serial_ms: f64,
    /// Corpus measurement wall time, `threads` workers, milliseconds.
    pub corpus_measure_parallel_ms: f64,
    /// Cold decision-tree training, milliseconds.
    pub train_tree_ms: f64,
    /// Cold random-forest training, milliseconds.
    pub train_forest_ms: f64,
    /// Leave-one-benchmark-out CV wall time, one worker, milliseconds.
    pub loocv_serial_ms: f64,
    /// Leave-one-benchmark-out CV wall time, `threads` workers, ms.
    pub loocv_parallel_ms: f64,
    /// `loocv_serial_ms / loocv_parallel_ms`.
    pub loocv_speedup: f64,
    /// Per-record `predict` cost, boxed tree walk, nanoseconds.
    pub tree_single_ns_per_record: f64,
    /// Per-record `predict_batch` cost, flattened tree walk, nanoseconds.
    pub tree_batch_ns_per_record: f64,
    /// `tree_single_ns_per_record / tree_batch_ns_per_record`.
    pub tree_batch_speedup: f64,
    /// Per-record `predict` cost, boxed forest walk, nanoseconds.
    pub forest_single_ns_per_record: f64,
    /// Per-record `predict_batch` cost, flattened forest walk, ns.
    pub forest_batch_ns_per_record: f64,
    /// `forest_single_ns_per_record / forest_batch_ns_per_record`.
    pub forest_batch_speedup: f64,
    /// Per-record cost of the scalar pre-order strided walk
    /// ([`FlatTree::predict_strided_preorder`]) — the committed batch
    /// baseline the chunked level-order walk is gated against.
    pub flat_simd_tree_preorder_ns_per_record: f64,
    /// Per-record cost of the chunked level-order strided walk
    /// ([`FlatTree::predict_strided`], [`bagpred_ml::LANES`]
    /// records in flight).
    pub flat_simd_tree_ns_per_record: f64,
    /// `flat_simd_tree_preorder / flat_simd_tree` — both measured this
    /// run, on this machine, over the identical buffer.
    pub flat_simd_tree_speedup: f64,
    /// Per-record cost of the forest's tree-major pre-order strided walk
    /// ([`FlatForest::predict_strided_preorder`]).
    pub flat_simd_forest_preorder_ns_per_record: f64,
    /// Per-record cost of the forest's chunk-major level-order strided
    /// walk ([`FlatForest::predict_strided`]). `scripts/verify.sh` gates
    /// the speedup over the pre-order walk at ≥ 2x.
    pub flat_simd_forest_ns_per_record: f64,
    /// `flat_simd_forest_preorder / flat_simd_forest`.
    pub flat_simd_forest_speedup: f64,
    /// Per-record cost of the forest's f32-quantized chunked walk
    /// ([`FlatForest::predict_strided_quantized`]).
    pub flat_simd_forest_quantized_ns_per_record: f64,
    /// Per-phase timing breakdown: every run of every stage recorded
    /// through the same [`LogHistogram`] the serving layer uses, stable
    /// order.
    pub stages: Vec<StageStat>,
    /// Wall-clock cost of recording one histogram sample per
    /// `predict_batch` call, as a percentage of the uninstrumented loop
    /// (clamped at 0 — noise can make the instrumented loop *faster*).
    /// `scripts/verify.sh` gates this below 5%.
    pub obs_batch_overhead_percent: f64,
    /// Per-sample cost of [`ResidualWindow::observe`] — the work the
    /// engine adds to every matched outcome report: APE arithmetic plus
    /// a handful of relaxed atomic updates and two histogram records.
    pub obs_outcome_record_ns: f64,
    /// The serving layer's protocol and isolation measurements
    /// ([`crate::servebench`]): binary-vs-text codec cost (gated at
    /// 1.5x by `scripts/verify.sh`), end-to-end loopback latency, and
    /// the fast model's p99 next to a deliberately slowed peer with and
    /// without per-model sharding.
    pub serve: crate::servebench::ServeBench,
}

/// One row of the per-phase breakdown: nearest-rank quantiles (see
/// [`bagpred_obs::HistogramSnapshot::quantile`]) of every recorded run
/// of the phase, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageStat {
    /// Phase name (`snake_case`, used in JSON keys as `stage_<name>_*`).
    pub name: &'static str,
    /// Runs recorded.
    pub samples: u64,
    /// Median run, microseconds (at log2 bucket resolution).
    pub p50_us: u64,
    /// 95th-percentile run, microseconds (at log2 bucket resolution).
    pub p95_us: u64,
    /// Slowest run, microseconds (exact).
    pub max_us: u64,
}

impl StageStat {
    fn of(name: &'static str, hist: &LogHistogram) -> Self {
        let snap = hist.snapshot();
        Self {
            name,
            samples: snap.count,
            p50_us: snap.quantile(0.50),
            p95_us: snap.quantile(0.95),
            max_us: snap.max,
        }
    }
}

/// Runs `f` `runs` times and returns the best (minimum) wall time — the
/// standard way to suppress scheduler noise for a deterministic
/// workload — additionally recording every run (not just the best) into
/// `hist`: the per-phase breakdown sees the spread, the headline number
/// stays the noise-suppressed minimum.
fn time_best_recorded<R>(runs: usize, hist: &LogHistogram, mut f: impl FnMut() -> R) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..runs.max(1) {
        let start = Instant::now();
        black_box(f());
        let elapsed = start.elapsed();
        hist.record_duration(elapsed);
        best = best.min(elapsed);
    }
    best
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns_per_record(d: Duration, records: usize) -> f64 {
    d.as_nanos() as f64 / records.max(1) as f64
}

/// The corpus the harness measures: the paper's 91 bags, or a reduced
/// deterministic corpus with the same structure in smoke mode.
fn bench_corpus(smoke: bool) -> Corpus {
    if !smoke {
        return Corpus::paper();
    }
    let mut bags = Vec::new();
    for bench in Benchmark::ALL {
        for batch in [2usize, 4] {
            bags.push(Bag::homogeneous(Workload::new(bench, batch)));
        }
    }
    for (i, &a) in Benchmark::ALL.iter().enumerate() {
        let b = Benchmark::ALL[(i + 1) % Benchmark::ALL.len()];
        bags.push(Bag::pair(Workload::new(a, 2), Workload::new(b, 2)));
    }
    Corpus::custom(bags)
}

/// Runs the full harness and returns the report.
pub fn run(options: &BenchOptions) -> BenchReport {
    let smoke = options.smoke;
    let platforms = Platforms::paper();
    let corpus = bench_corpus(smoke);
    let threads = parallel::configured_threads();
    let (measure_runs, train_runs, predict_runs) = if smoke { (1, 2, 3) } else { (2, 3, 7) };
    let batch_records = if smoke { 256 } else { 1000 };

    // Per-phase histograms: the same lock-free type the serving layer
    // records request latencies into, so offline and online breakdowns
    // read identically.
    let measure_hist = LogHistogram::new();
    let train_tree_hist = LogHistogram::new();
    let train_forest_hist = LogHistogram::new();
    let loocv_hist = LogHistogram::new();
    let loocv_fold_hist = LogHistogram::new();
    let predict_single_hist = LogHistogram::new();
    let predict_batch_hist = LogHistogram::new();

    let corpus_measure_serial = time_best_recorded(measure_runs, &measure_hist, || {
        corpus.measure_on_threads(&platforms, 1)
    });
    let corpus_measure_parallel = time_best_recorded(measure_runs, &measure_hist, || {
        corpus.measure_on_threads(&platforms, threads)
    });
    let records = corpus.measure_on(&platforms);

    let train_tree = time_best_recorded(train_runs, &train_tree_hist, || {
        let mut p = Predictor::new(FeatureSet::full());
        p.train(&records);
        p
    });
    let train_forest = time_best_recorded(train_runs, &train_forest_hist, || {
        let mut p = Predictor::new(FeatureSet::full()).with_model(ModelKind::RandomForest);
        p.train(&records);
        p
    });

    let mut probe = Predictor::new(FeatureSet::full());
    // Each fold timed individually first — the per-fold histogram is the
    // number a capacity planner wants (folds are the unit the parallel
    // LOOCV schedules) — then the full serial/parallel sweeps.
    for bench in Benchmark::ALL {
        let start = Instant::now();
        if black_box(probe.loocv_fold(&records, bench)).is_some() {
            loocv_fold_hist.record_duration(start.elapsed());
        }
    }
    let loocv_runs = if smoke { 1 } else { 3 };
    let loocv_serial = time_best_recorded(loocv_runs, &loocv_hist, || {
        probe.loocv_by_benchmark_threads(&records, 1)
    });
    let loocv_parallel = time_best_recorded(loocv_runs, &loocv_hist, || {
        probe.loocv_by_benchmark_threads(&records, threads)
    });

    // The cycled batch: the corpus repeated up to `batch_records` rows —
    // the shape an online service's drained queue hands `predict_batch`.
    let batch: Vec<Measurement> = (0..batch_records)
        .map(|i| records[i % records.len()].clone())
        .collect();

    let mut tree = Predictor::new(FeatureSet::full());
    tree.train(&records);
    let mut forest = Predictor::new(FeatureSet::full()).with_model(ModelKind::RandomForest);
    forest.train(&records);

    // Equivalence guard: the two paths must agree bit-for-bit before
    // their relative speed means anything.
    for (p, label) in [(&tree, "tree"), (&forest, "forest")] {
        let batched = p.predict_batch(&batch);
        for (m, y) in batch.iter().zip(&batched) {
            assert_eq!(
                y.to_bits(),
                p.predict(m).to_bits(),
                "{label} batch/single mismatch on {}",
                m.bag().label()
            );
        }
    }

    let tree_single = time_best_recorded(predict_runs, &predict_single_hist, || {
        batch.iter().map(|m| tree.predict(m)).sum::<f64>()
    });
    let tree_batch = time_best_recorded(predict_runs, &predict_batch_hist, || {
        tree.predict_batch(&batch)
    });
    let forest_single = time_best_recorded(predict_runs, &predict_single_hist, || {
        batch.iter().map(|m| forest.predict(m)).sum::<f64>()
    });
    let forest_batch = time_best_recorded(predict_runs, &predict_batch_hist, || {
        forest.predict_batch(&batch)
    });

    // Flat-traversal shoot-out: the same fitted models compiled to flat
    // form, walked over one full-width strided buffer — the scalar
    // pre-order baseline against the chunked level-order walk (and the
    // forest's f32-quantized lane). Both sides of each speedup are
    // measured in this run on this machine, so the ratio is meaningful
    // even where absolute rates are not.
    let flat_tree =
        FlatTree::from_tree(tree.tree().expect("tree predictor")).expect("trained tree compiles");
    let flat_forest = FlatForest::from_forest(forest.forest().expect("forest predictor"))
        .expect("trained forest compiles");
    let full = tree.materialize(&records);
    let width = full.n_features();
    let mut flat_buf: Vec<f64> = Vec::with_capacity(batch_records * width);
    for i in 0..batch_records {
        flat_buf.extend_from_slice(full.samples()[i % full.samples().len()].features());
    }
    // Deterministic sub-ppm jitter makes every repeated row distinct: a
    // cycled 91-row corpus lets the branch predictor memorize the scalar
    // walk's routing, flattering the branchy baseline in a way no
    // production batch (fleet draws, LOOCV folds, drained serve queues)
    // ever would. Both walks see the same jittered buffer, so the
    // bit-identity guard and the speedup ratio stay apples-to-apples.
    for (i, x) in flat_buf.iter_mut().enumerate() {
        let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
        *x *= 1.0 + (h as f64 - 8_388_608.0) * 1e-9;
    }
    // Equivalence guard before timing, same as the predictor paths.
    {
        let mut level = Vec::new();
        let mut preorder = Vec::new();
        flat_tree.predict_strided(&flat_buf, width, &mut level);
        flat_tree.predict_strided_preorder(&flat_buf, width, &mut preorder);
        assert_eq!(level.len(), preorder.len());
        for (l, p) in level.iter().zip(&preorder) {
            assert_eq!(l.to_bits(), p.to_bits(), "tree level/preorder mismatch");
        }
        level.clear();
        preorder.clear();
        flat_forest.predict_strided(&flat_buf, width, &mut level);
        flat_forest.predict_strided_preorder(&flat_buf, width, &mut preorder);
        for (l, p) in level.iter().zip(&preorder) {
            assert_eq!(l.to_bits(), p.to_bits(), "forest level/preorder mismatch");
        }
    }
    let mut scratch: Vec<f64> = Vec::with_capacity(batch_records);
    let flat_tree_preorder = time_best_recorded(predict_runs, &predict_batch_hist, || {
        scratch.clear();
        flat_tree.predict_strided_preorder(&flat_buf, width, &mut scratch);
        scratch.last().copied()
    });
    let flat_tree_level = time_best_recorded(predict_runs, &predict_batch_hist, || {
        scratch.clear();
        flat_tree.predict_strided(&flat_buf, width, &mut scratch);
        scratch.last().copied()
    });
    let flat_forest_preorder = time_best_recorded(predict_runs, &predict_batch_hist, || {
        scratch.clear();
        flat_forest.predict_strided_preorder(&flat_buf, width, &mut scratch);
        scratch.last().copied()
    });
    let flat_forest_level = time_best_recorded(predict_runs, &predict_batch_hist, || {
        scratch.clear();
        flat_forest.predict_strided(&flat_buf, width, &mut scratch);
        scratch.last().copied()
    });
    let flat_forest_quantized = time_best_recorded(predict_runs, &predict_batch_hist, || {
        scratch.clear();
        flat_forest.predict_strided_quantized(&flat_buf, width, &mut scratch);
        scratch.last().copied()
    });

    let obs_batch_overhead_percent = obs_overhead(&tree, &batch, 400);
    let obs_outcome_record = obs_outcome_record_ns(if smoke { 200_000 } else { 1_000_000 });
    let serve = crate::servebench::run(smoke);

    let tree_single_ns = ns_per_record(tree_single, batch_records);
    let tree_batch_ns = ns_per_record(tree_batch, batch_records);
    let forest_single_ns = ns_per_record(forest_single, batch_records);
    let forest_batch_ns = ns_per_record(forest_batch, batch_records);
    let flat_tree_preorder_ns = ns_per_record(flat_tree_preorder, batch_records);
    let flat_tree_level_ns = ns_per_record(flat_tree_level, batch_records);
    let flat_forest_preorder_ns = ns_per_record(flat_forest_preorder, batch_records);
    let flat_forest_level_ns = ns_per_record(flat_forest_level, batch_records);

    BenchReport {
        smoke,
        threads,
        corpus_bags: corpus.bags().len(),
        batch_records,
        corpus_measure_serial_ms: ms(corpus_measure_serial),
        corpus_measure_parallel_ms: ms(corpus_measure_parallel),
        train_tree_ms: ms(train_tree),
        train_forest_ms: ms(train_forest),
        loocv_serial_ms: ms(loocv_serial),
        loocv_parallel_ms: ms(loocv_parallel),
        loocv_speedup: ms(loocv_serial) / ms(loocv_parallel).max(f64::MIN_POSITIVE),
        tree_single_ns_per_record: tree_single_ns,
        tree_batch_ns_per_record: tree_batch_ns,
        tree_batch_speedup: tree_single_ns / tree_batch_ns.max(f64::MIN_POSITIVE),
        forest_single_ns_per_record: forest_single_ns,
        forest_batch_ns_per_record: forest_batch_ns,
        forest_batch_speedup: forest_single_ns / forest_batch_ns.max(f64::MIN_POSITIVE),
        flat_simd_tree_preorder_ns_per_record: flat_tree_preorder_ns,
        flat_simd_tree_ns_per_record: flat_tree_level_ns,
        flat_simd_tree_speedup: flat_tree_preorder_ns / flat_tree_level_ns.max(f64::MIN_POSITIVE),
        flat_simd_forest_preorder_ns_per_record: flat_forest_preorder_ns,
        flat_simd_forest_ns_per_record: flat_forest_level_ns,
        flat_simd_forest_speedup: flat_forest_preorder_ns
            / flat_forest_level_ns.max(f64::MIN_POSITIVE),
        flat_simd_forest_quantized_ns_per_record: ns_per_record(
            flat_forest_quantized,
            batch_records,
        ),
        stages: vec![
            StageStat::of("measure_corpus", &measure_hist),
            StageStat::of("train_tree", &train_tree_hist),
            StageStat::of("train_forest", &train_forest_hist),
            StageStat::of("loocv", &loocv_hist),
            StageStat::of("loocv_fold", &loocv_fold_hist),
            StageStat::of("predict_single", &predict_single_hist),
            StageStat::of("predict_batch", &predict_batch_hist),
        ],
        obs_batch_overhead_percent,
        obs_outcome_record_ns: obs_outcome_record,
        serve,
    }
}

/// Per-sample cost of the outcome tracker's hot path: one
/// [`ResidualWindow::observe`] with varying predicted/actual pairs (so
/// the APE arithmetic, EWMA CAS loop and both histogram records all see
/// realistic, branch-unfriendly inputs). Best-of-5 over `rounds`.
fn obs_outcome_record_ns(rounds: usize) -> f64 {
    let window = ResidualWindow::new();
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        for i in 0..rounds {
            let predicted = 1_000 + ((i as u64).wrapping_mul(0x9e37_79b9) >> 16) % 100_000;
            let actual = 1_000 + ((i as u64).wrapping_mul(0x85eb_ca6b) >> 16) % 100_000;
            black_box(window.observe(black_box(predicted), black_box(actual)));
        }
        best = best.min(start.elapsed());
    }
    best.as_nanos() as f64 / rounds.max(1) as f64
}

/// Measures what one histogram sample per `predict_batch` call costs.
/// Both loops time every call (the serving engine stamps `Trace` marks
/// whether or not histograms exist — spans also feed slow-request
/// capture), so the marginal cost under test is exactly the
/// [`LogHistogram`] record: a relaxed `fetch_add` plus min/max updates.
/// The statistic is built for a noisy single-CPU host: each trial runs
/// the two loops back to back (alternating which goes first, so neither
/// side systematically inherits a warmer cache or a pending scheduler
/// tick) and contributes one instrumented/plain *ratio*; the reported
/// overhead is the median ratio over all trials. Each loop runs long
/// enough (hundreds of rounds, milliseconds of wall time) that a noise
/// burst tends to span both loops of a pair and cancel in the ratio; a
/// burst that doesn't produces one outlier ratio, which the median
/// discards — a minimum-of-N over separately-timed sides needs just one
/// burst-free loop per side and still read tens of percent of phantom
/// overhead here. Clamped at 0: the record path costs nanoseconds
/// against a multi-microsecond batch, so residual noise can still make
/// the instrumented loop come out faster.
fn obs_overhead(tree: &Predictor, batch: &[Measurement], rounds: usize) -> f64 {
    const TRIALS: usize = 21;
    let hist = LogHistogram::new();
    let plain_loop = || {
        let start = Instant::now();
        for _ in 0..rounds {
            let t = Instant::now();
            black_box(tree.predict_batch(batch));
            black_box(t.elapsed());
        }
        start.elapsed()
    };
    let instrumented_loop = || {
        let start = Instant::now();
        for _ in 0..rounds {
            let t = Instant::now();
            black_box(tree.predict_batch(batch));
            hist.record_duration(t.elapsed());
        }
        start.elapsed()
    };
    let mut ratios = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let (plain, instrumented) = if trial % 2 == 0 {
            let p = plain_loop();
            let i = instrumented_loop();
            (p, i)
        } else {
            let i = instrumented_loop();
            let p = plain_loop();
            (p, i)
        };
        ratios.push(instrumented.as_secs_f64() / plain.as_secs_f64().max(f64::MIN_POSITIVE));
    }
    assert!(
        hist.count() >= (rounds * TRIALS) as u64,
        "histogram saw every batch"
    );
    ratios.sort_by(f64::total_cmp);
    ((ratios[TRIALS / 2] - 1.0) * 100.0).max(0.0)
}

impl BenchReport {
    /// The report as pretty-printed JSON (hand-formatted; stable key
    /// order).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str(&format!("  \"smoke\": {},\n", self.smoke));
        let numbers: [(&str, f64); 23] = [
            ("threads", self.threads as f64),
            ("corpus_bags", self.corpus_bags as f64),
            ("batch_records", self.batch_records as f64),
            ("corpus_measure_serial_ms", self.corpus_measure_serial_ms),
            (
                "corpus_measure_parallel_ms",
                self.corpus_measure_parallel_ms,
            ),
            ("train_tree_ms", self.train_tree_ms),
            ("train_forest_ms", self.train_forest_ms),
            ("loocv_serial_ms", self.loocv_serial_ms),
            ("loocv_parallel_ms", self.loocv_parallel_ms),
            ("loocv_speedup", self.loocv_speedup),
            ("tree_single_ns_per_record", self.tree_single_ns_per_record),
            ("tree_batch_ns_per_record", self.tree_batch_ns_per_record),
            ("tree_batch_speedup", self.tree_batch_speedup),
            (
                "forest_single_ns_per_record",
                self.forest_single_ns_per_record,
            ),
            (
                "forest_batch_ns_per_record",
                self.forest_batch_ns_per_record,
            ),
            ("forest_batch_speedup", self.forest_batch_speedup),
            (
                "flat_simd_tree_preorder_ns_per_record",
                self.flat_simd_tree_preorder_ns_per_record,
            ),
            (
                "flat_simd_tree_ns_per_record",
                self.flat_simd_tree_ns_per_record,
            ),
            ("flat_simd_tree_speedup", self.flat_simd_tree_speedup),
            (
                "flat_simd_forest_preorder_ns_per_record",
                self.flat_simd_forest_preorder_ns_per_record,
            ),
            (
                "flat_simd_forest_ns_per_record",
                self.flat_simd_forest_ns_per_record,
            ),
            ("flat_simd_forest_speedup", self.flat_simd_forest_speedup),
            (
                "flat_simd_forest_quantized_ns_per_record",
                self.flat_simd_forest_quantized_ns_per_record,
            ),
        ];
        for (key, value) in numbers.iter() {
            if key.starts_with("threads")
                || key.starts_with("corpus_bags")
                || key.starts_with("batch_records")
            {
                out.push_str(&format!("  \"{key}\": {},\n", *value as u64));
            } else {
                out.push_str(&format!("  \"{key}\": {value:.3},\n"));
            }
        }
        for stage in &self.stages {
            let name = stage.name;
            out.push_str(&format!(
                "  \"stage_{name}_samples\": {},\n  \"stage_{name}_p50_us\": {},\n  \
                 \"stage_{name}_p95_us\": {},\n  \"stage_{name}_max_us\": {},\n",
                stage.samples, stage.p50_us, stage.p95_us, stage.max_us,
            ));
        }
        let serve_keys: [(&str, f64); 13] = [
            (
                "serve_text_protocol_ns_per_request",
                self.serve.text_protocol_ns_per_request,
            ),
            (
                "serve_binary_protocol_ns_per_request",
                self.serve.binary_protocol_ns_per_request,
            ),
            ("serve_protocol_speedup", self.serve.protocol_speedup),
            ("serve_text_ns_per_request", self.serve.text_ns_per_request),
            (
                "serve_binary_ns_per_request",
                self.serve.binary_ns_per_request,
            ),
            (
                "serve_isolation_baseline_p99_us",
                self.serve.isolation_baseline_p99_us,
            ),
            (
                "serve_isolation_sharded_p99_us",
                self.serve.isolation_sharded_p99_us,
            ),
            (
                "serve_isolation_unsharded_p99_us",
                self.serve.isolation_unsharded_p99_us,
            ),
            (
                "serve_obs_outcome_roundtrip_us",
                self.serve.obs_outcome_roundtrip_us,
            ),
            (
                "serve_hedge_unhedged_p99_us",
                self.serve.hedge_unhedged_p99_us,
            ),
            ("serve_hedge_hedged_p99_us", self.serve.hedge_hedged_p99_us),
            (
                "serve_hedge_p99_improvement",
                self.serve.hedge_p99_improvement,
            ),
            ("serve_cancel_roundtrip_us", self.serve.cancel_roundtrip_us),
        ];
        for (key, value) in serve_keys.iter() {
            out.push_str(&format!("  \"{key}\": {value:.3},\n"));
        }
        out.push_str(&format!(
            "  \"obs_outcome_record_ns\": {:.3},\n",
            self.obs_outcome_record_ns
        ));
        out.push_str(&format!(
            "  \"obs_batch_overhead_percent\": {:.3}\n",
            self.obs_batch_overhead_percent
        ));
        out.push_str("}\n");
        out
    }

    /// A human-readable summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Pipeline benchmark ({} corpus: {} bags, batch: {} records, {} thread(s))\n",
            if self.smoke { "smoke" } else { "paper" },
            self.corpus_bags,
            self.batch_records,
            self.threads,
        ));
        out.push_str(&format!(
            "  corpus measure    serial {:>9.1} ms   parallel {:>9.1} ms\n",
            self.corpus_measure_serial_ms, self.corpus_measure_parallel_ms
        ));
        out.push_str(&format!(
            "  cold train        tree   {:>9.1} ms   forest   {:>9.1} ms\n",
            self.train_tree_ms, self.train_forest_ms
        ));
        out.push_str(&format!(
            "  LOOCV             serial {:>9.1} ms   parallel {:>9.1} ms   speedup {:>5.2}x\n",
            self.loocv_serial_ms, self.loocv_parallel_ms, self.loocv_speedup
        ));
        out.push_str(&format!(
            "  tree predict      single {:>9.1} ns/rec  batch {:>9.1} ns/rec  speedup {:>5.2}x\n",
            self.tree_single_ns_per_record, self.tree_batch_ns_per_record, self.tree_batch_speedup
        ));
        out.push_str(&format!(
            "  forest predict    single {:>9.1} ns/rec  batch {:>9.1} ns/rec  speedup {:>5.2}x\n",
            self.forest_single_ns_per_record,
            self.forest_batch_ns_per_record,
            self.forest_batch_speedup
        ));
        out.push_str(&format!(
            "  flat tree strided preorder {:>5.1} ns/rec  chunked {:>7.1} ns/rec  speedup {:>5.2}x\n",
            self.flat_simd_tree_preorder_ns_per_record,
            self.flat_simd_tree_ns_per_record,
            self.flat_simd_tree_speedup
        ));
        out.push_str(&format!(
            "  flat forest strided preorder {:>3.1} ns/rec  chunked {:>7.1} ns/rec  speedup {:>5.2}x  (f32 lane {:.1} ns/rec)\n",
            self.flat_simd_forest_preorder_ns_per_record,
            self.flat_simd_forest_ns_per_record,
            self.flat_simd_forest_speedup,
            self.flat_simd_forest_quantized_ns_per_record
        ));
        out.push_str("  stage breakdown (all runs, us):\n");
        for stage in &self.stages {
            out.push_str(&format!(
                "    {:<16} n={:<3} p50 {:>10}  p95 {:>10}  max {:>10}\n",
                stage.name, stage.samples, stage.p50_us, stage.p95_us, stage.max_us,
            ));
        }
        out.push_str(&format!(
            "  histogram overhead on predict_batch: {:.2}%\n",
            self.obs_batch_overhead_percent
        ));
        out.push_str(&format!(
            "  outcome tracker   record {:>9.1} ns/sample  report roundtrip {:>7.1} us (loopback TCP)\n",
            self.obs_outcome_record_ns, self.serve.obs_outcome_roundtrip_us,
        ));
        out.push_str(&format!(
            "  serve protocol    text   {:>9.1} ns/req  binary {:>8.1} ns/req  speedup {:>5.2}x\n",
            self.serve.text_protocol_ns_per_request,
            self.serve.binary_protocol_ns_per_request,
            self.serve.protocol_speedup,
        ));
        out.push_str(&format!(
            "  serve end-to-end  text   {:>9.1} ns/req  binary {:>8.1} ns/req (loopback TCP)\n",
            self.serve.text_ns_per_request, self.serve.binary_ns_per_request,
        ));
        out.push_str(&format!(
            "  serve isolation   fast-model p99: baseline {} us, sharded+slow-peer {} us, \
             unsharded+slow-peer {} us\n",
            self.serve.isolation_baseline_p99_us,
            self.serve.isolation_sharded_p99_us,
            self.serve.isolation_unsharded_p99_us,
        ));
        out.push_str(&format!(
            "  serve hedging     stalled-model p99: unhedged {} us, hedged {} us \
             (improvement {:.2}x); cancel roundtrip {:.1} us\n",
            self.serve.hedge_unhedged_p99_us,
            self.serve.hedge_hedged_p99_us,
            self.serve.hedge_p99_improvement,
            self.serve.cancel_roundtrip_us,
        ));
        out
    }
}

/// Extracts the numeric value of `"key": <number>` from a JSON text.
/// Minimal by design: the harness only reads back files it wrote itself.
pub fn json_number(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text[at..].trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Compares a fresh report against a committed baseline JSON, returning
/// one message per rate key that regressed by more than `max_ratio`
/// (e.g. `2.0` = twice as slow). An unreadable or schema-mismatched
/// baseline is itself reported.
pub fn regressions(report: &BenchReport, baseline_json: &str, max_ratio: f64) -> Vec<String> {
    if !baseline_json.contains(SCHEMA) {
        return vec![format!("baseline is not a {SCHEMA} report")];
    }
    let current = report.to_json();
    let mut out = Vec::new();
    for key in RATE_KEYS {
        let Some(base) = json_number(baseline_json, key) else {
            out.push(format!("baseline is missing `{key}`"));
            continue;
        };
        let now = json_number(&current, key).expect("own report carries every rate key");
        if base > 0.0 && now > base * max_ratio {
            out.push(format!(
                "{key} regressed: {now:.1} ns vs baseline {base:.1} ns (> {max_ratio}x)"
            ));
        }
    }
    out
}

/// Merges a fleet report (`bagpred-fleet-v1`) into a pipeline report
/// (`bagpred-bench-v1`) for combined `--json` output: every fleet key is
/// prefixed `fleet_`, so the two schemas coexist without clobbering each
/// other — and since [`regressions`] only reads [`RATE_KEYS`], the
/// regression gate is unaffected by the merge.
///
/// # Errors
///
/// A message when either input lacks its schema tag or is not a
/// hand-formatted single-object report.
pub fn merge_fleet(pipeline_json: &str, fleet_json: &str) -> Result<String, String> {
    if !pipeline_json.contains(SCHEMA) {
        return Err(format!("pipeline report is not a {SCHEMA} report"));
    }
    if !fleet_json.contains("bagpred-fleet-v1") {
        return Err("fleet report is not a bagpred-fleet-v1 report".into());
    }
    let body = pipeline_json
        .trim_end()
        .strip_suffix('}')
        .ok_or("pipeline report does not end with `}`")?
        .trim_end();

    let mut out = String::from(body);
    out.push_str(",\n");
    let fleet_lines: Vec<&str> = fleet_json
        .lines()
        .filter(|line| {
            let t = line.trim();
            !t.is_empty() && t != "{" && t != "}"
        })
        .collect();
    if fleet_lines.is_empty() {
        return Err("fleet report carries no keys".into());
    }
    for (i, line) in fleet_lines.iter().enumerate() {
        let renamed = line
            .trim_start()
            .strip_prefix('"')
            .map(|rest| format!("  \"fleet_{rest}"))
            .ok_or_else(|| format!("unexpected fleet report line: {line}"))?;
        let renamed = renamed.trim_end().trim_end_matches(',');
        let sep = if i + 1 == fleet_lines.len() { "" } else { "," };
        out.push_str(&format!("{renamed}{sep}\n"));
    }
    out.push_str("}\n");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report() -> BenchReport {
        BenchReport {
            smoke: true,
            threads: 2,
            corpus_bags: 27,
            batch_records: 256,
            corpus_measure_serial_ms: 100.0,
            corpus_measure_parallel_ms: 60.0,
            train_tree_ms: 5.0,
            train_forest_ms: 50.0,
            loocv_serial_ms: 80.0,
            loocv_parallel_ms: 45.0,
            loocv_speedup: 80.0 / 45.0,
            tree_single_ns_per_record: 400.0,
            tree_batch_ns_per_record: 80.0,
            tree_batch_speedup: 5.0,
            forest_single_ns_per_record: 9000.0,
            forest_batch_ns_per_record: 1000.0,
            forest_batch_speedup: 9.0,
            flat_simd_tree_preorder_ns_per_record: 30.0,
            flat_simd_tree_ns_per_record: 10.0,
            flat_simd_tree_speedup: 3.0,
            flat_simd_forest_preorder_ns_per_record: 300.0,
            flat_simd_forest_ns_per_record: 100.0,
            flat_simd_forest_speedup: 3.0,
            flat_simd_forest_quantized_ns_per_record: 90.0,
            stages: vec![StageStat {
                name: "loocv_fold",
                samples: 9,
                p50_us: 1023,
                p95_us: 2047,
                max_us: 1800,
            }],
            obs_batch_overhead_percent: 0.4,
            obs_outcome_record_ns: 45.0,
            serve: crate::servebench::ServeBench {
                text_protocol_ns_per_request: 900.0,
                binary_protocol_ns_per_request: 300.0,
                protocol_speedup: 3.0,
                text_ns_per_request: 60_000.0,
                binary_ns_per_request: 55_000.0,
                isolation_baseline_p99_us: 250.0,
                isolation_sharded_p99_us: 400.0,
                isolation_unsharded_p99_us: 6000.0,
                obs_outcome_roundtrip_us: 70.0,
                hedge_unhedged_p99_us: 50_000.0,
                hedge_hedged_p99_us: 10_000.0,
                hedge_p99_improvement: 5.0,
                cancel_roundtrip_us: 65.0,
            },
        }
    }

    #[test]
    fn json_roundtrips_every_numeric_key() {
        let report = fake_report();
        let json = report.to_json();
        assert!(json.contains(SCHEMA));
        assert_eq!(json_number(&json, "threads"), Some(2.0));
        assert_eq!(json_number(&json, "batch_records"), Some(256.0));
        assert_eq!(json_number(&json, "tree_batch_ns_per_record"), Some(80.0));
        assert_eq!(
            json_number(&json, "flat_simd_tree_ns_per_record"),
            Some(10.0)
        );
        assert_eq!(json_number(&json, "flat_simd_forest_speedup"), Some(3.0));
        assert_eq!(
            json_number(&json, "flat_simd_forest_quantized_ns_per_record"),
            Some(90.0)
        );
        assert_eq!(
            json_number(&json, "forest_single_ns_per_record"),
            Some(9000.0)
        );
        assert_eq!(json_number(&json, "stage_loocv_fold_samples"), Some(9.0));
        assert_eq!(json_number(&json, "stage_loocv_fold_p95_us"), Some(2047.0));
        assert_eq!(json_number(&json, "obs_batch_overhead_percent"), Some(0.4));
        assert_eq!(
            json_number(&json, "serve_text_protocol_ns_per_request"),
            Some(900.0)
        );
        assert_eq!(
            json_number(&json, "serve_binary_protocol_ns_per_request"),
            Some(300.0)
        );
        assert_eq!(json_number(&json, "serve_protocol_speedup"), Some(3.0));
        assert_eq!(
            json_number(&json, "serve_isolation_unsharded_p99_us"),
            Some(6000.0)
        );
        assert_eq!(
            json_number(&json, "serve_obs_outcome_roundtrip_us"),
            Some(70.0)
        );
        assert_eq!(
            json_number(&json, "serve_hedge_unhedged_p99_us"),
            Some(50_000.0)
        );
        assert_eq!(
            json_number(&json, "serve_hedge_hedged_p99_us"),
            Some(10_000.0)
        );
        assert_eq!(json_number(&json, "serve_hedge_p99_improvement"), Some(5.0));
        assert_eq!(json_number(&json, "serve_cancel_roundtrip_us"), Some(65.0));
        assert_eq!(json_number(&json, "obs_outcome_record_ns"), Some(45.0));
        assert_eq!(json_number(&json, "no_such_key"), None);
    }

    #[test]
    fn regression_gate_fires_only_past_the_ratio() {
        let report = fake_report();
        let baseline = report.to_json();
        assert!(regressions(&report, &baseline, 2.0).is_empty());

        let mut slower = fake_report();
        slower.tree_batch_ns_per_record = 999.0; // > 2x of 80
        let complaints = regressions(&slower, &baseline, 2.0);
        assert_eq!(complaints.len(), 1);
        assert!(complaints[0].contains("tree_batch_ns_per_record"));

        let mut slightly_slower = fake_report();
        slightly_slower.tree_batch_ns_per_record = 120.0; // < 2x
        assert!(regressions(&slightly_slower, &baseline, 2.0).is_empty());

        // The serve codec rates are gated like the predict rates.
        let mut slower_codec = fake_report();
        slower_codec.serve.binary_protocol_ns_per_request = 1200.0; // > 2x of 300
        let complaints = regressions(&slower_codec, &baseline, 2.0);
        assert_eq!(complaints.len(), 1);
        assert!(complaints[0].contains("serve_binary_protocol_ns_per_request"));
    }

    #[test]
    fn bad_baselines_are_reported_not_ignored() {
        let report = fake_report();
        let complaints = regressions(&report, "{}", 2.0);
        assert_eq!(complaints.len(), 1);
        assert!(complaints[0].contains("not a"));
    }

    #[test]
    fn smoke_run_produces_a_complete_positive_report() {
        let report = run(&BenchOptions { smoke: true });
        assert!(report.smoke);
        assert!(report.threads >= 1);
        assert_eq!(report.batch_records, 256);
        assert!(report.corpus_bags >= 18);
        for value in [
            report.corpus_measure_serial_ms,
            report.corpus_measure_parallel_ms,
            report.train_tree_ms,
            report.train_forest_ms,
            report.loocv_serial_ms,
            report.loocv_parallel_ms,
            report.tree_single_ns_per_record,
            report.tree_batch_ns_per_record,
            report.forest_single_ns_per_record,
            report.forest_batch_ns_per_record,
            report.flat_simd_tree_preorder_ns_per_record,
            report.flat_simd_tree_ns_per_record,
            report.flat_simd_forest_preorder_ns_per_record,
            report.flat_simd_forest_ns_per_record,
            report.flat_simd_forest_quantized_ns_per_record,
        ] {
            assert!(value > 0.0 && value.is_finite(), "{report:?}");
        }
        // The chunked level-order walk must beat the scalar pre-order
        // walk even under smoke noise; the full ≥2x acceptance threshold
        // is gated by scripts/verify.sh on the forest speedup.
        assert!(report.flat_simd_forest_speedup > 1.0, "{report:?}");
        // The flattened batch walk must never be slower than per-record
        // dispatch; the full acceptance threshold is checked on the real
        // (non-smoke) run committed as BENCH_pipeline.json.
        assert!(report.tree_batch_speedup > 1.0, "{report:?}");
        assert!(report.forest_batch_speedup > 1.0, "{report:?}");

        // Every phase recorded at least one run, and the loocv_fold
        // histogram saw exactly one run per benchmark.
        assert_eq!(report.stages.len(), 7);
        for stage in &report.stages {
            assert!(stage.samples > 0, "{stage:?}");
            assert!(stage.p50_us <= stage.p95_us, "{stage:?}");
        }
        let folds = report
            .stages
            .iter()
            .find(|s| s.name == "loocv_fold")
            .expect("has fold stage");
        assert_eq!(folds.samples, Benchmark::ALL.len() as u64);
        assert!(
            report.obs_batch_overhead_percent.is_finite()
                && report.obs_batch_overhead_percent >= 0.0,
            "{report:?}"
        );
        assert!(
            report.obs_outcome_record_ns > 0.0 && report.obs_outcome_record_ns.is_finite(),
            "{report:?}"
        );
        assert!(
            report.serve.obs_outcome_roundtrip_us > 0.0
                && report.serve.obs_outcome_roundtrip_us.is_finite(),
            "{report:?}"
        );

        let rendered = report.render();
        assert!(rendered.contains("LOOCV"));
        assert!(rendered.contains("loocv_fold"));
        assert!(rendered.contains("histogram overhead"));
        assert!(rendered.contains("outcome tracker"));
    }

    fn fake_fleet_json() -> String {
        "{\n  \"schema\": \"bagpred-fleet-v1\",\n  \"seed\": 42,\n  \
         \"gpu_sweep\": [1, 2],\n  \"ffd_k1_shed_rate\": 0.125,\n  \
         \"ffd_gap_max_percent\": 3.000\n}\n"
            .to_string()
    }

    #[test]
    fn merge_fleet_prefixes_keys_and_preserves_rate_keys() {
        let pipeline = fake_report().to_json();
        let merged = merge_fleet(&pipeline, &fake_fleet_json()).expect("merges");
        assert!(merged.contains("\"fleet_schema\": \"bagpred-fleet-v1\""));
        assert!(merged.contains("\"fleet_ffd_k1_shed_rate\": 0.125"));
        assert!(merged.contains("\"fleet_gpu_sweep\": [1, 2]"));
        assert_eq!(json_number(&merged, "fleet_ffd_gap_max_percent"), Some(3.0));
        for key in RATE_KEYS {
            assert_eq!(
                json_number(&merged, key),
                json_number(&pipeline, key),
                "{key} must survive the merge unchanged"
            );
        }
        assert!(merged.ends_with("}\n"));
        assert_eq!(merged.matches('{').count(), 1);
        assert_eq!(merged.matches('}').count(), 1);
        // The merged text is still a valid regression baseline.
        assert!(regressions(&fake_report(), &merged, 2.0).is_empty());
    }

    #[test]
    fn merge_fleet_rejects_schema_mismatches() {
        let pipeline = fake_report().to_json();
        assert!(merge_fleet("{}", &fake_fleet_json()).is_err());
        assert!(merge_fleet(&pipeline, "{}").is_err());
        // Arguments swapped: both sides fail their schema check.
        assert!(merge_fleet(&fake_fleet_json(), &pipeline).is_err());
    }
}
