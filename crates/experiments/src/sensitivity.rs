//! Figures 6-9: sensitivity of the prediction error to each feature group.
//!
//! Each figure takes a set of base feature schemes and re-evaluates them
//! with one feature group added: CPU time (Fig. 6), GPU time (Fig. 7), the
//! instruction mix (Fig. 8), and fairness (Fig. 9).

use crate::accuracy::{evaluate_scheme, SchemeError};
use crate::context::Context;
use crate::render::TextTable;
use bagpred_core::schemes::{self, PaperScheme};
use serde::{Deserialize, Serialize};

/// One before/after ablation pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPair {
    /// The base scheme's errors.
    pub base: SchemeError,
    /// The extended scheme's errors.
    pub extended: SchemeError,
}

impl AblationPair {
    /// Change in measured error when the feature is added (negative =
    /// improvement).
    pub fn measured_delta(&self) -> f64 {
        self.extended.measured_percent - self.base.measured_percent
    }
}

/// A sensitivity figure: several ablation pairs around one feature group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityFigure {
    /// Artifact title.
    pub title: String,
    /// The pairs, in the paper's x-axis order.
    pub pairs: Vec<AblationPair>,
}

impl SensitivityFigure {
    /// Renders as a text table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "base scheme".into(),
            "base %".into(),
            "(paper)".into(),
            "extended scheme".into(),
            "ext %".into(),
            "(paper)".into(),
        ]);
        let paper = |p: Option<f64>| p.map_or("-".into(), |v| format!("{v:.1}"));
        for p in &self.pairs {
            table.row(vec![
                p.base.scheme.clone(),
                format!("{:.2}", p.base.measured_percent),
                paper(p.base.paper_percent),
                p.extended.scheme.clone(),
                format!("{:.2}", p.extended.measured_percent),
                paper(p.extended.paper_percent),
            ]);
        }
        format!("{}\n{}", self.title, table.render())
    }

    /// Number of pairs where adding the feature reduced the error.
    pub fn improvements(&self) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.measured_delta() < 0.0)
            .count()
    }
}

fn run_pairs(
    ctx: &Context,
    title: &str,
    pairs: Vec<(PaperScheme, PaperScheme)>,
) -> SensitivityFigure {
    let pairs = pairs
        .into_iter()
        .map(|(base, extended)| AblationPair {
            base: SchemeError {
                measured_percent: evaluate_scheme(ctx, &base.scheme),
                scheme: base.scheme.name().to_string(),
                paper_percent: base.paper_error_percent,
            },
            extended: SchemeError {
                measured_percent: evaluate_scheme(ctx, &extended.scheme),
                scheme: extended.scheme.name().to_string(),
                paper_percent: extended.paper_error_percent,
            },
        })
        .collect();
    SensitivityFigure {
        title: title.to_string(),
        pairs,
    }
}

/// Fig. 6: effect of adding CPU time to five base schemes.
pub fn figure6(ctx: &Context) -> SensitivityFigure {
    run_pairs(
        ctx,
        "Figure 6: effect of CPU time on the prediction error",
        schemes::figure6(),
    )
}

/// Fig. 7: effect of adding GPU time to five base schemes.
pub fn figure7(ctx: &Context) -> SensitivityFigure {
    run_pairs(
        ctx,
        "Figure 7: effect of GPU time on the prediction error",
        schemes::figure7(),
    )
}

/// Fig. 8: effect of adding the instruction mix to four base schemes.
pub fn figure8(ctx: &Context) -> SensitivityFigure {
    run_pairs(
        ctx,
        "Figure 8: effect of the instruction mix on the prediction error",
        schemes::figure8(),
    )
}

/// Fig. 9: effect of adding fairness to four base schemes.
pub fn figure9(ctx: &Context) -> SensitivityFigure {
    run_pairs(
        ctx,
        "Figure 9: effect of fairness on the prediction error",
        schemes::figure9(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_time_helps_most_schemes() {
        // The paper: "for any feature combination, the prediction error
        // decreases with the introduction of CPU time".
        let fig = figure6(Context::shared());
        assert_eq!(fig.pairs.len(), 5);
        assert!(
            fig.improvements() >= 4,
            "CPU time should help at least 4/5 schemes: {}",
            fig.improvements()
        );
    }

    #[test]
    fn gpu_time_gives_the_largest_reductions() {
        // The paper: GPU time's effect is more pronounced than CPU time's.
        let ctx = Context::shared();
        let cpu = figure6(ctx);
        let gpu = figure7(ctx);
        // Compare the shared base: insmix -> +CPU vs insmix -> +GPU.
        let cpu_gain = -cpu.pairs[0].measured_delta();
        let gpu_gain = -gpu.pairs[0].measured_delta();
        assert!(
            gpu_gain > cpu_gain,
            "GPU gain {gpu_gain:.1} vs CPU gain {cpu_gain:.1}"
        );
        // GPU-extended schemes land in the low-error regime.
        let best = gpu
            .pairs
            .iter()
            .map(|p| p.extended.measured_percent)
            .fold(f64::INFINITY, f64::min);
        assert!(best < 30.0, "best GPU-extended scheme {best:.1}%");
    }

    #[test]
    fn fairness_rescues_time_less_schemes() {
        // The paper's Fig. 9 headline: fairness cuts the instruction-mix
        // scheme's error dramatically (144.6% -> 98.2%). We reproduce that
        // shape; for schemes already carrying time features our deterministic
        // targets leave fairness little residual to explain, so we require
        // the big win on the time-less scheme and no serious regressions.
        let fig = figure9(Context::shared());
        assert_eq!(fig.pairs.len(), 4);
        let insmix_pair = &fig.pairs[0];
        assert!(
            insmix_pair.extended.measured_percent < 0.7 * insmix_pair.base.measured_percent,
            "fairness must cut the insmix error strongly: {:.1}% -> {:.1}%",
            insmix_pair.base.measured_percent,
            insmix_pair.extended.measured_percent
        );
        for p in &fig.pairs {
            assert!(
                p.measured_delta() < 0.15 * p.base.measured_percent + 5.0,
                "fairness must not seriously degrade {}: {:+.1}",
                p.base.scheme,
                p.measured_delta()
            );
        }
    }

    #[test]
    fn insmix_is_not_harmful_with_cpu_time() {
        // Fig. 8's nuance: the mix helps alongside CPU time but has no
        // sizeable positive impact alongside GPU time.
        let fig = figure8(Context::shared());
        let with_cpu = &fig.pairs[1];
        assert!(
            with_cpu.measured_delta() < 10.0,
            "insmix should not hurt CPU-time schemes much: {:+.1}",
            with_cpu.measured_delta()
        );
    }

    #[test]
    fn render_lists_all_pairs() {
        let fig = figure6(Context::shared());
        let text = fig.render();
        for p in &fig.pairs {
            assert!(text.contains(&p.base.scheme));
        }
    }
}
