//! CLI behavior of the `repro` binary.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = repro().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
    assert!(stderr.contains("fig1"));
}

#[test]
fn help_flag_succeeds() {
    let out = repro().arg("--help").output().expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("artifacts:"));
}

#[test]
fn unknown_artifact_reports_error() {
    let out = repro().arg("fig99").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown artifact"), "{stderr}");
}

#[test]
fn table3_renders_quickly() {
    // table3 only dumps configuration: cheap enough for a CLI test.
    let out = repro().arg("table3").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Tesla T4"));
    assert!(stdout.contains("2560"));
}
