//! Computer-vision benchmark kernels for the `bagpred` workspace.
//!
//! The ISPASS 2020 paper evaluates its predictor on nine vision kernels
//! derived from the MEVBench and SD-VBS suites, implemented with OpenCV (CPU)
//! and CUDA (GPU): SIFT, SURF, FAST, ORB, HoG, SVM, KNN, ObjRec and FaceDet.
//! This crate provides genuine Rust implementations of all nine, operating on
//! deterministic synthetic images, with every inner loop instrumented through
//! [`bagpred_trace::Profiler`] so each run yields the dynamic
//! instruction-mix / memory / parallelism characterization
//! ([`bagpred_trace::KernelProfile`]) that the CPU and GPU timing models
//! consume.
//!
//! The kernels are simplified relative to production OpenCV (smaller images,
//! fewer pyramid octaves) but algorithmically faithful: FAST performs the
//! 16-pixel ring segment test, SIFT builds a difference-of-Gaussians pyramid,
//! FaceDet slides a Haar cascade over an integral image, SVM runs hinge-loss
//! training, and so on. What matters for the predictor is that each benchmark
//! has an *organically distinct* instruction mix and scaling character, which
//! real implementations provide and hand-tuned constants would not.
//!
//! # Example
//!
//! ```
//! use bagpred_workloads::{Benchmark, Workload};
//!
//! // The paper's standard input is a batch of 20 images.
//! let workload = Workload::new(Benchmark::Fast, 20);
//! let profile = workload.profile();
//! assert!(profile.total_instructions() > 0);
//! let mix = profile.mix();
//! assert!(mix.mem() > 0.0); // FAST reads pixel rings
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
mod facedet;
mod fast;
mod hog;
mod image;
mod knn;
mod objrec;
mod ops;
mod orb;
mod sift;
mod surf;
mod svm;
mod workload;

pub use benchmark::Benchmark;
pub use image::{GrayImage, ImageSynthesizer, IntegralImage};
pub use workload::{Workload, WorkloadOutput, BATCH_SIZES, STANDARD_BATCH};

pub use facedet::FaceDetOutput;
pub use fast::FastOutput;
pub use hog::HogOutput;
pub use knn::KnnOutput;
pub use objrec::ObjRecOutput;
pub use orb::OrbOutput;
pub use sift::SiftOutput;
pub use surf::SurfOutput;
pub use svm::SvmOutput;
