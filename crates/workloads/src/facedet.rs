//! FaceDet: Viola–Jones-style face detection with a Haar cascade.
//!
//! Slides a 24×24 window over the image at two scales and evaluates a
//! three-stage cascade of Haar-like rectangle features over the integral
//! image. Early stages are cheap and reject most windows; the data-dependent
//! early exit gives the benchmark its characteristic branchy, divergent
//! control flow.

use crate::image::{GrayImage, IntegralImage};
use crate::ops;
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Cascade window edge, in pixels.
const WINDOW: usize = 24;
/// Window stride (dense scan, as production cascades use).
const STRIDE: usize = 1;

/// A detected window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Detection {
    /// Left edge of the window.
    pub x: u16,
    /// Top edge of the window.
    pub y: u16,
    /// Window scale (1 = native resolution, 2 = half resolution).
    pub scale: u8,
}

/// Result of running FaceDet over a batch of images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaceDetOutput {
    /// Detections per image, in batch order.
    pub detections: Vec<Vec<Detection>>,
    /// Windows evaluated across the batch (cascade entries).
    pub windows_evaluated: u64,
    /// Windows rejected by the first stage.
    pub stage1_rejections: u64,
}

impl FaceDetOutput {
    /// Total detections across the batch.
    pub fn total_detections(&self) -> usize {
        self.detections.iter().map(Vec::len).sum()
    }
}

/// A two- or three-rectangle Haar feature within the 24×24 window,
/// expressed as (x, y, w, h) sub-boxes with +/- polarity.
struct HaarFeature {
    positive: &'static [(usize, usize, usize, usize)],
    negative: &'static [(usize, usize, usize, usize)],
    threshold: f64,
}

/// Stage 1: two cheap "dark band" features (eyes darker than cheeks).
const STAGE1: [HaarFeature; 2] = [
    HaarFeature {
        positive: &[(4, 12, 16, 6)],
        negative: &[(4, 4, 16, 6)],
        threshold: 8.0,
    },
    HaarFeature {
        positive: &[(2, 2, 20, 8)],
        negative: &[(2, 14, 20, 8)],
        threshold: -60.0,
    },
];

/// Stage 2: left/right symmetry features.
const STAGE2: [HaarFeature; 3] = [
    HaarFeature {
        positive: &[(2, 4, 8, 8)],
        negative: &[(14, 4, 8, 8)],
        threshold: -25.0,
    },
    HaarFeature {
        positive: &[(14, 4, 8, 8)],
        negative: &[(2, 4, 8, 8)],
        threshold: -25.0,
    },
    HaarFeature {
        positive: &[(8, 8, 8, 10)],
        negative: &[(0, 8, 4, 10), (20, 8, 4, 10)],
        threshold: -40.0,
    },
];

/// Stage 3: fine three-rectangle features (nose bridge brighter than eyes).
const STAGE3: [HaarFeature; 4] = [
    HaarFeature {
        positive: &[(9, 4, 6, 8)],
        negative: &[(3, 4, 6, 8)],
        threshold: -20.0,
    },
    HaarFeature {
        positive: &[(9, 4, 6, 8)],
        negative: &[(15, 4, 6, 8)],
        threshold: -20.0,
    },
    HaarFeature {
        positive: &[(6, 16, 12, 6)],
        negative: &[(6, 8, 12, 6)],
        threshold: -30.0,
    },
    HaarFeature {
        positive: &[(0, 0, 24, 24)],
        negative: &[],
        threshold: 40.0 * (WINDOW * WINDOW) as f64,
    },
];

fn eval_feature(
    integral: &IntegralImage,
    wx: usize,
    wy: usize,
    feature: &HaarFeature,
    prof: &mut Profiler,
) -> bool {
    let mut value = 0f64;
    for &(x, y, w, h) in feature.positive {
        value += ops::box_sum(integral, wx + x, wy + y, w, h, prof) as f64 / (w * h) as f64;
    }
    for &(x, y, w, h) in feature.negative {
        value -= ops::box_sum(integral, wx + x, wy + y, w, h, prof) as f64 / (w * h) as f64;
    }
    prof.count(
        InstrClass::Fp,
        (feature.positive.len() + feature.negative.len()) as u64 + 1,
    );
    prof.count(InstrClass::Control, 1);
    value > feature.threshold
}

fn run_cascade(
    integral: &IntegralImage,
    wx: usize,
    wy: usize,
    prof: &mut Profiler,
    stage1_rejections: &mut u64,
) -> bool {
    for f in &STAGE1 {
        if !eval_feature(integral, wx, wy, f, prof) {
            *stage1_rejections += 1;
            return false;
        }
    }
    for f in &STAGE2 {
        if !eval_feature(integral, wx, wy, f, prof) {
            return false;
        }
    }
    for f in &STAGE3 {
        if !eval_feature(integral, wx, wy, f, prof) {
            return false;
        }
    }
    true
}

fn detect_at_scale(
    img: &GrayImage,
    scale: u8,
    prof: &mut Profiler,
    windows: &mut u64,
    stage1_rejections: &mut u64,
) -> Vec<Detection> {
    let integral = ops::integral(img, prof);
    let mut detections = Vec::new();
    if img.width() < WINDOW || img.height() < WINDOW {
        return detections;
    }
    let mut wy = 0;
    while wy + WINDOW <= img.height() {
        let mut wx = 0;
        while wx + WINDOW <= img.width() {
            *windows += 1;
            if run_cascade(&integral, wx, wy, prof, stage1_rejections) {
                detections.push(Detection {
                    x: wx as u16,
                    y: wy as u16,
                    scale,
                });
                prof.count(InstrClass::Stack, 2);
                prof.write_bytes(6);
            }
            wx += STRIDE;
            prof.count(InstrClass::Control, 1);
        }
        wy += STRIDE;
    }
    detections
}

/// Runs the Haar cascade over every image at two scales.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> FaceDetOutput {
    let mut detections = Vec::with_capacity(images.len());
    let mut windows = 0u64;
    let mut stage1_rejections = 0u64;
    for img in images {
        let mut per_image = detect_at_scale(img, 1, prof, &mut windows, &mut stage1_rejections);
        let half = img.half();
        prof.read_bytes(img.len() as u64);
        prof.write_bytes((half.len()) as u64);
        prof.count(InstrClass::Alu, half.len() as u64 * 3);
        // Downsampled plane materializes via block writes.
        prof.count(InstrClass::StringOp, half.len() as u64 / 64);
        per_image.extend(detect_at_scale(
            &half,
            2,
            prof,
            &mut windows,
            &mut stage1_rejections,
        ));
        detections.push(per_image);
        prof.count(InstrClass::Stack, 4);
    }
    FaceDetOutput {
        detections,
        windows_evaluated: windows,
        stage1_rejections,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    /// Draws a crude "face": bright oval with two dark eyes and a dark mouth.
    fn face_image() -> GrayImage {
        let mut img = GrayImage::from_fn(64, 64, |_, _| 60);
        // Bright face region.
        for y in 16..44 {
            for x in 20..44 {
                img.set(x, y, 200);
            }
        }
        // Dark eyes (upper half darker on average than lower).
        for (ex, ey) in [(26usize, 24usize), (38, 24)] {
            for y in ey - 2..ey + 2 {
                for x in ex - 2..ex + 2 {
                    img.set(x, y, 20);
                }
            }
        }
        img
    }

    #[test]
    fn cascade_rejects_flat_windows() {
        let img = GrayImage::from_fn(64, 64, |_, _| 128);
        let mut prof = Profiler::new();
        let out = run_batch(std::slice::from_ref(&img), &mut prof);
        assert_eq!(out.total_detections(), 0);
        assert!(out.stage1_rejections > 0);
    }

    #[test]
    fn windows_counted() {
        let img = GrayImage::from_fn(64, 64, |_, _| 0);
        let mut prof = Profiler::new();
        let out = run_batch(std::slice::from_ref(&img), &mut prof);
        // 64x64, window 24, stride 1 -> 41x41 at scale 1 plus 9x9 at scale 2.
        assert_eq!(out.windows_evaluated, 41 * 41 + 9 * 9);
    }

    #[test]
    fn early_exit_saves_work() {
        // A flat image rejects everything at stage 1; a textured image pays
        // for deeper stages on some windows.
        let flat = GrayImage::from_fn(64, 64, |_, _| 128);
        let textured = face_image();
        let mut p_flat = Profiler::new();
        run_batch(std::slice::from_ref(&flat), &mut p_flat);
        let mut p_tex = Profiler::new();
        run_batch(std::slice::from_ref(&textured), &mut p_tex);
        assert!(p_tex.total() > p_flat.total());
    }

    #[test]
    fn synthetic_batch_runs_clean() {
        let batch = ImageSynthesizer::new(5).synthesize_batch(3);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        assert_eq!(out.detections.len(), 3);
        assert!(out.windows_evaluated > 0);
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(6).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
