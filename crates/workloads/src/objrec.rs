//! ObjRec: object recognition (feature extraction + classification).
//!
//! As in the paper's Table II, ObjRec is a composite pipeline: it extracts
//! HoG features from every image and classifies them with a linear SVM to
//! decide what object class a scene contains. The first half of the batch
//! trains the classifier; the second half is recognized.

use crate::hog;
use crate::image::GrayImage;
use crate::svm::{self, Sample};
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Result of running ObjRec over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjRecOutput {
    /// Number of training images.
    pub n_train: usize,
    /// Recognition decision per evaluation image, in {-1, +1}.
    pub decisions: Vec<f32>,
    /// Agreement with the structural label on the evaluation images.
    pub accuracy: f64,
}

/// Structural label for an image: does it contain a large bright object?
///
/// The synthesizer plants bright or dark rectangles; "bright object present"
/// is a deterministic, learnable property of the HoG + intensity signature.
fn object_label(img: &GrayImage, prof: &mut Profiler) -> f32 {
    let bright = img.pixels().iter().filter(|&&p| p > 220).count();
    prof.read_bytes(img.len() as u64);
    prof.count(InstrClass::Alu, img.len() as u64);
    prof.count(InstrClass::Control, img.height() as u64);
    if bright * 50 > img.len() {
        1.0
    } else {
        -1.0
    }
}

/// Reduces a HoG descriptor to a compact sample for the classifier: mean
/// block energy per cell row, capped at a fixed dimension.
fn hog_to_sample(desc: &hog::HogDescriptor, label: f32, prof: &mut Profiler) -> Sample {
    const DIM: usize = 24;
    let mut features = vec![0f32; DIM];
    for (i, chunk) in desc.features.chunks(4 * hog::BINS).enumerate() {
        let energy: f32 = chunk.iter().map(|v| v.abs()).sum();
        features[i % DIM] += energy;
    }
    features.push(1.0);
    let n = desc.features.len() as u64;
    prof.read_bytes(4 * n);
    prof.count(InstrClass::Sse, n);
    prof.write_bytes(4 * DIM as u64);
    Sample { features, label }
}

/// Runs the ObjRec benchmark over a batch of images.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> ObjRecOutput {
    // Stage 1: HoG feature extraction over the whole batch.
    let hogs = hog::run_batch(images, prof);

    // Stage 2: build labelled samples.
    let samples: Vec<Sample> = hogs
        .descriptors
        .iter()
        .zip(images.iter())
        .map(|(desc, img)| {
            let label = object_label(img, prof);
            hog_to_sample(desc, label, prof)
        })
        .collect();

    // Stage 3: train on the first half, recognize the second half.
    let split = (samples.len() / 2).max(1).min(samples.len());
    let (train_set, eval_set) = samples.split_at(split);
    let (w, b) = svm::train(train_set, prof);

    let mut decisions = Vec::with_capacity(eval_set.len());
    let mut correct = 0usize;
    for s in eval_set {
        let score: f32 = w
            .iter()
            .zip(&s.features)
            .map(|(wi, xi)| wi * xi)
            .sum::<f32>()
            + b;
        prof.count(InstrClass::Sse, w.len() as u64);
        prof.read_bytes(8 * w.len() as u64);
        prof.count(InstrClass::Control, 2);
        let decision = if score >= 0.0 { 1.0 } else { -1.0 };
        if decision == s.label {
            correct += 1;
        }
        decisions.push(decision);
    }
    let accuracy = if eval_set.is_empty() {
        0.0
    } else {
        correct as f64 / eval_set.len() as f64
    };
    ObjRecOutput {
        n_train: train_set.len(),
        decisions,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn labels_reflect_bright_objects() {
        let mut prof = Profiler::new();
        let bright = GrayImage::from_fn(32, 32, |x, y| if x > 8 && y > 8 { 255 } else { 0 });
        let dark = GrayImage::from_fn(32, 32, |_, _| 30);
        assert_eq!(object_label(&bright, &mut prof), 1.0);
        assert_eq!(object_label(&dark, &mut prof), -1.0);
    }

    #[test]
    fn pipeline_produces_decisions_for_eval_half() {
        let batch = ImageSynthesizer::new(1).synthesize_batch(6);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        assert_eq!(out.n_train, 3);
        assert_eq!(out.decisions.len(), 3);
    }

    #[test]
    fn decisions_are_binary() {
        let batch = ImageSynthesizer::new(2).synthesize_batch(4);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        for d in out.decisions {
            assert!(d == 1.0 || d == -1.0);
        }
    }

    #[test]
    fn composite_mix_includes_hog_and_svm_work() {
        let batch = ImageSynthesizer::new(3).synthesize_batch(2);
        let mut prof = Profiler::new();
        run_batch(&batch, &mut prof);
        let mix = prof.mix();
        // HoG contributes FP (atan2), SVM contributes SSE (dot products).
        assert!(mix.percent(InstrClass::Fp) > 0.0);
        assert!(mix.percent(InstrClass::Sse) > 0.0);
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(4).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
