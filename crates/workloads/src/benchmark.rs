//! The benchmark suite (the paper's Table II).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// One of the nine vision benchmarks the paper evaluates (Table II).
///
/// # Example
///
/// ```
/// use bagpred_workloads::Benchmark;
///
/// assert_eq!(Benchmark::ALL.len(), 9);
/// assert_eq!(Benchmark::Sift.name(), "SIFT");
/// assert_eq!("surf".parse::<Benchmark>().unwrap(), Benchmark::Surf);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Benchmark {
    /// FAST corner extraction.
    Fast,
    /// Histogram-of-oriented-gradients feature description.
    Hog,
    /// k-nearest-neighbor classification.
    Knn,
    /// Object recognition: feature extraction + classification.
    ObjRec,
    /// Oriented FAST + rotated BRIEF feature extraction and matching.
    Orb,
    /// Scale-invariant feature transform.
    Sift,
    /// Speeded-up robust features.
    Surf,
    /// Support-vector-machine training and prediction.
    Svm,
    /// Haar-cascade face detection.
    FaceDet,
}

impl Benchmark {
    /// All benchmarks, in the order the paper's figures list them.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Fast,
        Benchmark::Hog,
        Benchmark::Knn,
        Benchmark::ObjRec,
        Benchmark::Orb,
        Benchmark::Sift,
        Benchmark::Surf,
        Benchmark::Svm,
        Benchmark::FaceDet,
    ];

    /// Canonical display name, matching the paper's figure labels.
    pub const fn name(self) -> &'static str {
        match self {
            Benchmark::Fast => "FAST",
            Benchmark::Hog => "HoG",
            Benchmark::Knn => "KNN",
            Benchmark::ObjRec => "OBJREC",
            Benchmark::Orb => "ORB",
            Benchmark::Sift => "SIFT",
            Benchmark::Surf => "SURF",
            Benchmark::Svm => "SVM",
            Benchmark::FaceDet => "FACEDET",
        }
    }

    /// One-line description from the paper's Table II.
    pub const fn description(self) -> &'static str {
        match self {
            Benchmark::Fast => "Extracts corners from an image",
            Benchmark::Hog => {
                "Describes a feature by the number of gradients per orientation in a window"
            }
            Benchmark::Knn => "Classifies features with the nearest-neighbor algorithm",
            Benchmark::ObjRec => "Object recognition using feature extraction plus classification",
            Benchmark::Orb => "FAST detector plus BRIEF descriptor to extract and match features",
            Benchmark::Sift => {
                "Extracts features invariant to orientation, illumination and scaling"
            }
            Benchmark::Surf => "Feature extraction with scale invariance",
            Benchmark::Svm => "Trains a support vector machine and predicts feature classes",
            Benchmark::FaceDet => "Face detection based on the Haar cascade classifier",
        }
    }

    /// Deterministic base seed for this benchmark's input images.
    pub(crate) const fn seed(self) -> u64 {
        // Arbitrary fixed values; distinct so batches are decorrelated.
        match self {
            Benchmark::Fast => 0xFA57_0001,
            Benchmark::Hog => 0x0906_0002,
            Benchmark::Knn => 0x0411_0003,
            Benchmark::ObjRec => 0x0B1E_0004,
            Benchmark::Orb => 0x0A0B_0005,
            Benchmark::Sift => 0x51F7_0006,
            Benchmark::Surf => 0x50AF_0007,
            Benchmark::Svm => 0x5124_0008,
            Benchmark::FaceDet => 0xFACE_0009,
        }
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBenchmarkError {
    input: String,
}

impl fmt::Display for ParseBenchmarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown benchmark `{}`", self.input)
    }
}

impl std::error::Error for ParseBenchmarkError {}

impl FromStr for Benchmark {
    type Err = ParseBenchmarkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let lower = s.to_ascii_lowercase();
        Benchmark::ALL
            .into_iter()
            .find(|b| b.name().to_ascii_lowercase() == lower)
            .ok_or(ParseBenchmarkError {
                input: s.to_string(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn parse_roundtrips() {
        for b in Benchmark::ALL {
            assert_eq!(b.name().parse::<Benchmark>().unwrap(), b);
            assert_eq!(b.name().to_lowercase().parse::<Benchmark>().unwrap(), b);
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        let err = "resnet".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("resnet"));
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 9);
    }

    #[test]
    fn descriptions_are_nonempty() {
        for b in Benchmark::ALL {
            assert!(!b.description().is_empty());
        }
    }
}
