//! Workload definition, execution, and profile assembly.

use crate::benchmark::Benchmark;
use crate::image::ImageSynthesizer;
use crate::{facedet, fast, hog, knn, objrec, orb, sift, surf, svm};
use bagpred_trace::{KernelProfile, Profiler};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The five input batch sizes the paper uses to multiply data points
/// (§V-B: 20, 40, 80, 160 and 320 images per batch).
pub const BATCH_SIZES: [usize; 5] = [20, 40, 80, 160, 320];

/// The paper's standard input: a batch of 20 images.
pub const STANDARD_BATCH: usize = 20;

/// Bytes per synthesized image (64×64 grayscale).
const IMAGE_BYTES: u64 = 64 * 64;

/// Extrapolation factor from the 64×64 profiling images to the
/// full-resolution frames they stand in for (64 ≈ a 512×512 frame).
///
/// Kernels are *executed* on reduced images so that profiling a 320-image
/// batch takes milliseconds, and every extensive quantity of the measured
/// profile (instructions, traffic, width) is then scaled by this factor —
/// see [`bagpred_trace::KernelProfileBuilder::work_scale`]. Fixed per-stage
/// costs (kernel launches) are not scaled, which preserves the real
/// compute-to-overhead ratio of full-size runs.
const RESOLUTION_SCALE: f64 = 64.0;

/// A benchmark at a specific input batch size — the unit the predictor's
/// dataset is built from.
///
/// # Example
///
/// ```
/// use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
///
/// let w = Workload::new(Benchmark::Hog, STANDARD_BATCH);
/// assert_eq!(w.benchmark(), Benchmark::Hog);
/// let profile = w.profile();
/// assert!(profile.parallel_width() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Workload {
    benchmark: Benchmark,
    batch_size: usize,
}

/// The concrete result of executing a workload's kernel, by benchmark.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum WorkloadOutput {
    /// FAST corners.
    Fast(fast::FastOutput),
    /// HoG descriptors.
    Hog(hog::HogOutput),
    /// KNN classifications.
    Knn(knn::KnnOutput),
    /// Object-recognition decisions.
    ObjRec(objrec::ObjRecOutput),
    /// ORB keypoints.
    Orb(orb::OrbOutput),
    /// SIFT keypoints.
    Sift(sift::SiftOutput),
    /// SURF keypoints.
    Surf(surf::SurfOutput),
    /// SVM model and accuracy.
    Svm(svm::SvmOutput),
    /// Face detections.
    FaceDet(facedet::FaceDetOutput),
}

impl Workload {
    /// Creates a workload.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(benchmark: Benchmark, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            benchmark,
            batch_size,
        }
    }

    /// The benchmark this workload runs.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// Number of images per input batch.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Executes the kernel and returns both its dynamic profile and its
    /// concrete output. Always runs afresh; use [`profile`](Self::profile)
    /// when only the (cached) characterization is needed.
    pub fn run(&self) -> (KernelProfile, WorkloadOutput) {
        let images = ImageSynthesizer::new(self.benchmark.seed()).synthesize_batch(self.batch_size);
        let mut prof = Profiler::new();
        let n = self.batch_size as u64;

        // Per-benchmark structural characterization. The fraction-valued
        // constants (divergence, coalescing, parallel fraction) are
        // calibration inputs of the timing models — the role GPU analytical
        // models give to per-kernel parameters — chosen from the control/data
        // structure of each algorithm and documented in DESIGN.md.
        let (output, profile) = match self.benchmark {
            Benchmark::Fast => {
                let out = fast::run_batch(&images, &mut prof);
                let corners = out.total_corners() as u64;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(IMAGE_BYTES + corners * 8 / n.max(1))
                    .parallel_width(IMAGE_BYTES * n) // pixel-parallel
                    .parallel_fraction(0.995)
                    .branch_divergence(0.55) // ring early-exit
                    .coalescing(0.70)
                    .kernel_launches(2)
                    .transfer_bytes(IMAGE_BYTES * n + corners * 8)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("FAST profile must validate");
                (WorkloadOutput::Fast(out), profile)
            }
            Benchmark::Hog => {
                let out = hog::run_batch(&images, &mut prof);
                let feat_bytes = out
                    .descriptors
                    .iter()
                    .map(|d| d.features.len() as u64 * 4)
                    .sum::<u64>();
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(3 * 4 * IMAGE_BYTES) // per-image f32 planes
                    .parallel_width(IMAGE_BYTES * n)
                    .parallel_fraction(0.998)
                    .branch_divergence(0.08)
                    .coalescing(0.90)
                    .kernel_launches(4)
                    .transfer_bytes(IMAGE_BYTES * n + feat_bytes)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("HoG profile must validate");
                (WorkloadOutput::Hog(out), profile)
            }
            Benchmark::Knn => {
                let out = knn::run_batch(&images, &mut prof);
                let pairs = out.n_references as u64 * out.n_queries as u64;
                let sample_bytes = (out.n_references + out.n_queries) as u64 * 13 * 4;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(sample_bytes)
                    .parallel_width(pairs.max(1)) // all-pairs distance matrix
                    .parallel_fraction(0.999)
                    .branch_divergence(0.05)
                    .coalescing(0.85)
                    .kernel_launches(3)
                    .transfer_bytes(IMAGE_BYTES * n + sample_bytes)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("KNN profile must validate");
                (WorkloadOutput::Knn(out), profile)
            }
            Benchmark::ObjRec => {
                let out = objrec::run_batch(&images, &mut prof);
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(3 * 4 * IMAGE_BYTES)
                    .parallel_width(IMAGE_BYTES * n)
                    .parallel_fraction(0.995)
                    .branch_divergence(0.12)
                    .coalescing(0.85)
                    .kernel_launches(4 + 20) // HoG stages + SVM epochs
                    .transfer_bytes(IMAGE_BYTES * n + n * 100)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("ObjRec profile must validate");
                (WorkloadOutput::ObjRec(out), profile)
            }
            Benchmark::Orb => {
                let out = orb::run_batch(&images, &mut prof);
                let kps = out.total_keypoints() as u64;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(IMAGE_BYTES + kps * 40 / n.max(1))
                    .parallel_width((IMAGE_BYTES * n) / 2)
                    .parallel_fraction(0.985)
                    .branch_divergence(0.50)
                    .coalescing(0.45) // descriptor gathers
                    .kernel_launches(5)
                    .transfer_bytes(IMAGE_BYTES * n + kps * 40)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("ORB profile must validate");
                (WorkloadOutput::Orb(out), profile)
            }
            Benchmark::Sift => {
                let out = sift::run_batch(&images, &mut prof);
                let kps = out.total_keypoints() as u64;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(4 * IMAGE_BYTES * 8) // per-image pyramid planes
                    .parallel_width(IMAGE_BYTES * n * 6)
                    .parallel_fraction(0.995)
                    .branch_divergence(0.15)
                    .coalescing(0.92) // separable blurs stream
                    .kernel_launches(18)
                    .transfer_bytes(IMAGE_BYTES * n + kps * 520)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("SIFT profile must validate");
                (WorkloadOutput::Sift(out), profile)
            }
            Benchmark::Surf => {
                let out = surf::run_batch(&images, &mut prof);
                let kps = out.total_keypoints() as u64;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(8 * IMAGE_BYTES) // per-image integral tables
                    .parallel_width((IMAGE_BYTES * n * 3) / 4)
                    .parallel_fraction(0.995)
                    .branch_divergence(0.25)
                    .coalescing(0.60) // box-sum gathers
                    .kernel_launches(8)
                    .transfer_bytes(IMAGE_BYTES * n + kps * 264)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("SURF profile must validate");
                (WorkloadOutput::Surf(out), profile)
            }
            Benchmark::Svm => {
                let out = svm::run_batch(&images, &mut prof);
                let sample_bytes = out.n_samples as u64 * 13 * 4;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(sample_bytes)
                    // Only the samples are parallel; epochs serialize.
                    .parallel_width(out.n_samples as u64)
                    .parallel_fraction(0.85)
                    .branch_divergence(0.10)
                    .coalescing(0.95)
                    .kernel_launches(22) // extraction + one launch per epoch + predict
                    .transfer_bytes(IMAGE_BYTES * n + sample_bytes + 20 * 13 * 4)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("SVM profile must validate");
                (WorkloadOutput::Svm(out), profile)
            }
            Benchmark::FaceDet => {
                let out = facedet::run_batch(&images, &mut prof);
                // The 9-feature demonstration cascade stands in for a
                // production Viola-Jones cascade (hundreds of features across
                // ~20 stages): the dynamic work extrapolates 8x while the
                // working set — the per-image integral the cascade re-reads —
                // does not grow with cascade depth.
                prof.scale_by(8);
                let windows = out.windows_evaluated;
                let profile = KernelProfile::builder(prof)
                    .working_set_bytes(8 * IMAGE_BYTES)
                    .parallel_width(windows * 8) // window × feature parallel
                    .parallel_fraction(0.995)
                    .branch_divergence(0.65) // cascade early exit
                    .coalescing(0.50)
                    .kernel_launches(4)
                    .transfer_bytes(IMAGE_BYTES * n + out.total_detections() as u64 * 6)
                    .work_scale(RESOLUTION_SCALE)
                    .build()
                    .expect("FaceDet profile must validate");
                (WorkloadOutput::FaceDet(out), profile)
            }
        };
        (profile, output)
    }

    /// The dynamic profile of this workload, computed once per process and
    /// cached: workloads are pure functions of `(benchmark, batch_size)`.
    pub fn profile(&self) -> KernelProfile {
        static CACHE: OnceLock<Mutex<HashMap<(Benchmark, usize), KernelProfile>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache
            .lock()
            .expect("profile cache poisoned")
            .get(&(self.benchmark, self.batch_size))
        {
            return hit.clone();
        }
        let (profile, _) = self.run();
        cache
            .lock()
            .expect("profile cache poisoned")
            .insert((self.benchmark, self.batch_size), profile.clone());
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_trace::InstrClass;

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_rejected() {
        Workload::new(Benchmark::Fast, 0);
    }

    #[test]
    fn every_benchmark_profiles_cleanly() {
        for b in Benchmark::ALL {
            let w = Workload::new(b, 4);
            let profile = w.profile();
            assert!(profile.total_instructions() > 0, "{b}: empty profile");
            assert!(profile.parallel_width() > 0, "{b}: zero width");
            assert!(profile.transfer_bytes() > 0, "{b}: zero transfer");
            assert!(!profile.mix().is_empty(), "{b}: empty mix");
        }
    }

    #[test]
    fn profiles_are_cached_and_stable() {
        let w = Workload::new(Benchmark::Hog, 4);
        assert_eq!(w.profile(), w.profile());
    }

    #[test]
    fn work_grows_with_batch_size() {
        for b in Benchmark::ALL {
            let small = Workload::new(b, 2).profile();
            let large = Workload::new(b, 8).profile();
            assert!(
                large.total_instructions() > small.total_instructions(),
                "{b}: work must grow with batch"
            );
        }
    }

    #[test]
    fn mixes_are_benchmark_distinct() {
        // The predictor depends on benchmarks having different signatures.
        let sift = Workload::new(Benchmark::Sift, 2).profile().mix();
        let fast = Workload::new(Benchmark::Fast, 2).profile().mix();
        let diff: f64 = InstrClass::ALL
            .iter()
            .map(|&c| (sift.percent(c) - fast.percent(c)).abs())
            .sum();
        assert!(diff > 20.0, "SIFT vs FAST mixes too similar: {diff:.1}");
    }

    #[test]
    fn mix_is_scale_invariant_ish() {
        // Percentages barely move with batch size — the property that makes
        // insmix-only prediction fail in the paper.
        let small = Workload::new(Benchmark::Surf, 2).profile().mix();
        let large = Workload::new(Benchmark::Surf, 8).profile().mix();
        for c in InstrClass::ALL {
            assert!(
                (small.percent(c) - large.percent(c)).abs() < 6.0,
                "{c} moved too much with batch size"
            );
        }
    }

    #[test]
    fn svm_width_is_small_sift_width_is_large() {
        // The structural reason SVM is CPU-friendly and SIFT GPU-friendly.
        let svm = Workload::new(Benchmark::Svm, 4).profile();
        let sift = Workload::new(Benchmark::Sift, 4).profile();
        assert!(sift.parallel_width() > 100 * svm.parallel_width());
    }

    #[test]
    fn run_returns_matching_output_variant() {
        let (_, out) = Workload::new(Benchmark::Knn, 2).run();
        assert!(matches!(out, WorkloadOutput::Knn(_)));
        let (_, out) = Workload::new(Benchmark::FaceDet, 2).run();
        assert!(matches!(out, WorkloadOutput::FaceDet(_)));
    }
}
