//! Synthetic grayscale images and integral images.
//!
//! The paper feeds each benchmark batches of camera images. We have no image
//! corpus, so images are synthesized deterministically: a smooth illumination
//! gradient, band-limited texture, and a few high-contrast shapes (rectangles
//! and blobs) that give corner detectors, blob detectors and the Haar cascade
//! real structure to find. Every image is a pure function of its seed.

use bagpred_trace::SplitMix64;
use serde::{Deserialize, Serialize};

/// Default side length of synthesized images, in pixels.
///
/// Small enough that profiling a 320-image batch is fast, large enough that
/// multi-octave pyramids and 24×24 sliding windows are meaningful.
pub const DEFAULT_SIZE: usize = 64;

/// An 8-bit grayscale image.
///
/// # Example
///
/// ```
/// use bagpred_workloads::GrayImage;
///
/// let img = GrayImage::from_fn(8, 8, |x, y| (x * y) as u8);
/// assert_eq!(img.get(2, 3), 6);
/// assert_eq!(img.width(), 8);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates an all-black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Self {
            width,
            height,
            pixels: vec![0; width * height],
        }
    }

    /// Creates an image by evaluating `f(x, y)` at every pixel.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut img = Self::new(width, height);
        for y in 0..height {
            for x in 0..width {
                img.pixels[y * width + x] = f(x, y);
            }
        }
        img
    }

    /// Image width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        self.pixels[y * self.width + x] = value;
    }

    /// Pixel value with coordinates clamped to the image border.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }

    /// Raw pixel buffer in row-major order.
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Total number of pixels.
    pub fn len(&self) -> usize {
        self.pixels.len()
    }

    /// Always false: zero-sized images cannot be constructed.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Downsamples by a factor of two (2×2 box average), used by pyramids.
    ///
    /// The result has `max(1, w/2)` × `max(1, h/2)` pixels.
    pub fn half(&self) -> GrayImage {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        GrayImage::from_fn(nw, nh, |x, y| {
            let sx = (x * 2).min(self.width - 1);
            let sy = (y * 2).min(self.height - 1);
            let sx1 = (sx + 1).min(self.width - 1);
            let sy1 = (sy + 1).min(self.height - 1);
            let sum = self.get(sx, sy) as u16
                + self.get(sx1, sy) as u16
                + self.get(sx, sy1) as u16
                + self.get(sx1, sy1) as u16;
            (sum / 4) as u8
        })
    }
}

/// Deterministic synthesizer of structured grayscale images.
///
/// # Example
///
/// ```
/// use bagpred_workloads::ImageSynthesizer;
///
/// let a = ImageSynthesizer::new(7).synthesize();
/// let b = ImageSynthesizer::new(7).synthesize();
/// assert_eq!(a, b); // pure function of the seed
/// ```
#[derive(Debug, Clone)]
pub struct ImageSynthesizer {
    seed: u64,
    width: usize,
    height: usize,
}

impl ImageSynthesizer {
    /// Creates a synthesizer for [`DEFAULT_SIZE`]² images.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            width: DEFAULT_SIZE,
            height: DEFAULT_SIZE,
        }
    }

    /// Overrides the image dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn with_size(mut self, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        self.width = width;
        self.height = height;
        self
    }

    /// Generates the image for this synthesizer's seed.
    pub fn synthesize(&self) -> GrayImage {
        let mut rng = SplitMix64::new(self.seed ^ 0x1117_0b5e_55ed_c0de);
        let w = self.width;
        let h = self.height;

        // Smooth illumination gradient.
        let gx = rng.next_range(-0.8, 0.8);
        let gy = rng.next_range(-0.8, 0.8);
        let base = rng.next_range(80.0, 160.0);

        // Band-limited texture: a few random cosine plane waves.
        let n_waves = 3 + rng.next_below(3) as usize;
        let waves: Vec<(f64, f64, f64, f64)> = (0..n_waves)
            .map(|_| {
                (
                    rng.next_range(0.05, 0.35),                 // fx
                    rng.next_range(0.05, 0.35),                 // fy
                    rng.next_range(0.0, std::f64::consts::TAU), // phase
                    rng.next_range(4.0, 14.0),                  // amplitude
                )
            })
            .collect();

        let mut img = GrayImage::from_fn(w, h, |x, y| {
            let mut v = base + gx * x as f64 + gy * y as f64;
            for &(fx, fy, ph, amp) in &waves {
                v += amp * (fx * x as f64 + fy * y as f64 + ph).cos();
            }
            v.clamp(0.0, 255.0) as u8
        });

        // High-contrast rectangles: corner and edge structure.
        let n_rects = 2 + rng.next_below(3) as usize;
        for _ in 0..n_rects {
            let rw = 6 + rng.next_below((w / 3) as u64) as usize;
            let rh = 6 + rng.next_below((h / 3) as u64) as usize;
            let x0 = rng.next_below((w - rw) as u64) as usize;
            let y0 = rng.next_below((h - rh) as u64) as usize;
            let bright = rng.next_f64() > 0.5;
            let value = if bright { 235 } else { 20 };
            for y in y0..y0 + rh {
                for x in x0..x0 + rw {
                    img.set(x, y, value);
                }
            }
        }

        // Dark blobs (eyes/noses for the Haar cascade, blobs for SIFT/SURF).
        let n_blobs = 2 + rng.next_below(3) as usize;
        for _ in 0..n_blobs {
            let r = 2 + rng.next_below(4) as i64;
            let cx = rng.next_below(w as u64) as i64;
            let cy = rng.next_below(h as u64) as i64;
            for dy in -r..=r {
                for dx in -r..=r {
                    if dx * dx + dy * dy <= r * r {
                        let x = cx + dx;
                        let y = cy + dy;
                        if x >= 0 && y >= 0 && (x as usize) < w && (y as usize) < h {
                            img.set(x as usize, y as usize, 10);
                        }
                    }
                }
            }
        }

        img
    }

    /// Generates a batch of `n` images with decorrelated per-image seeds.
    pub fn synthesize_batch(&self, n: usize) -> Vec<GrayImage> {
        let mut rng = SplitMix64::new(self.seed);
        (0..n)
            .map(|_| {
                ImageSynthesizer::new(rng.next_u64())
                    .with_size(self.width, self.height)
                    .synthesize()
            })
            .collect()
    }
}

/// A summed-area table over a [`GrayImage`].
///
/// Lets SURF and the Haar cascade evaluate arbitrary box sums in O(1).
///
/// # Example
///
/// ```
/// use bagpred_workloads::{GrayImage, IntegralImage};
///
/// let img = GrayImage::from_fn(4, 4, |_, _| 1);
/// let integral = IntegralImage::from_image(&img);
/// assert_eq!(integral.box_sum(0, 0, 4, 4), 16);
/// assert_eq!(integral.box_sum(1, 1, 2, 2), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegralImage {
    width: usize,
    height: usize,
    // (w+1) x (h+1) table, row-major; sums[y][x] = sum of pixels above-left.
    sums: Vec<u64>,
}

impl IntegralImage {
    /// Builds the summed-area table of an image.
    pub fn from_image(img: &GrayImage) -> Self {
        let w = img.width();
        let h = img.height();
        let stride = w + 1;
        let mut sums = vec![0u64; stride * (h + 1)];
        for y in 0..h {
            let mut row = 0u64;
            for x in 0..w {
                row += img.get(x, y) as u64;
                sums[(y + 1) * stride + (x + 1)] = sums[y * stride + (x + 1)] + row;
            }
        }
        Self {
            width: w,
            height: h,
            sums,
        }
    }

    /// Sum of pixels in the `w`×`h` box with top-left corner `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the box extends beyond the image.
    #[inline]
    pub fn box_sum(&self, x: usize, y: usize, w: usize, h: usize) -> u64 {
        assert!(
            x + w <= self.width && y + h <= self.height,
            "box out of bounds"
        );
        let stride = self.width + 1;
        let a = self.sums[y * stride + x];
        let b = self.sums[y * stride + (x + w)];
        let c = self.sums[(y + h) * stride + x];
        let d = self.sums[(y + h) * stride + (x + w)];
        d + a - b - c
    }

    /// Image width this table was built from.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height this table was built from.
    pub fn height(&self) -> usize {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_fn_fills_pixels() {
        let img = GrayImage::from_fn(3, 2, |x, y| (10 * y + x) as u8);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.get(2, 1), 12);
    }

    #[test]
    #[should_panic(expected = "dimensions must be positive")]
    fn zero_size_rejected() {
        GrayImage::new(0, 4);
    }

    #[test]
    fn clamped_access_handles_borders() {
        let img = GrayImage::from_fn(2, 2, |x, y| (x + 2 * y) as u8);
        assert_eq!(img.get_clamped(-5, -5), img.get(0, 0));
        assert_eq!(img.get_clamped(99, 99), img.get(1, 1));
    }

    #[test]
    fn half_reduces_dimensions() {
        let img = GrayImage::from_fn(8, 6, |_, _| 100);
        let h = img.half();
        assert_eq!((h.width(), h.height()), (4, 3));
        assert_eq!(h.get(1, 1), 100);
    }

    #[test]
    fn half_of_1x1_stays_1x1() {
        let img = GrayImage::from_fn(1, 1, |_, _| 42);
        let h = img.half();
        assert_eq!((h.width(), h.height()), (1, 1));
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = ImageSynthesizer::new(123).synthesize();
        let b = ImageSynthesizer::new(123).synthesize();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ImageSynthesizer::new(1).synthesize();
        let b = ImageSynthesizer::new(2).synthesize();
        assert_ne!(a, b);
    }

    #[test]
    fn batch_images_are_distinct() {
        let batch = ImageSynthesizer::new(5).synthesize_batch(4);
        assert_eq!(batch.len(), 4);
        assert_ne!(batch[0], batch[1]);
        assert_ne!(batch[2], batch[3]);
    }

    #[test]
    fn synthesized_images_have_contrast() {
        let img = ImageSynthesizer::new(9).synthesize();
        let min = img.pixels().iter().min().unwrap();
        let max = img.pixels().iter().max().unwrap();
        assert!(max - min > 50, "expected high contrast, got {min}..{max}");
    }

    #[test]
    fn integral_matches_naive_sum() {
        let img = ImageSynthesizer::new(11).with_size(16, 12).synthesize();
        let integral = IntegralImage::from_image(&img);
        let naive: u64 = (2..7)
            .flat_map(|y| (3..9).map(move |x| (x, y)))
            .map(|(x, y)| img.get(x, y) as u64)
            .sum();
        assert_eq!(integral.box_sum(3, 2, 6, 5), naive);
    }

    #[test]
    #[should_panic(expected = "box out of bounds")]
    fn integral_rejects_out_of_bounds() {
        let img = GrayImage::new(4, 4);
        IntegralImage::from_image(&img).box_sum(2, 2, 3, 3);
    }

    proptest! {
        #[test]
        fn integral_box_sums_match_naive(
            seed in any::<u64>(),
            x in 0usize..10, y in 0usize..10,
            w in 1usize..6, h in 1usize..6,
        ) {
            let img = ImageSynthesizer::new(seed).with_size(16, 16).synthesize();
            let integral = IntegralImage::from_image(&img);
            prop_assume!(x + w <= 16 && y + h <= 16);
            let naive: u64 = (y..y + h)
                .flat_map(|yy| (x..x + w).map(move |xx| (xx, yy)))
                .map(|(xx, yy)| img.get(xx, yy) as u64)
                .sum();
            prop_assert_eq!(integral.box_sum(x, y, w, h), naive);
        }

        #[test]
        fn downsample_preserves_range(seed in any::<u64>()) {
            let img = ImageSynthesizer::new(seed).synthesize();
            let h = img.half();
            let max_orig = *img.pixels().iter().max().unwrap() as u16;
            let max_half = *h.pixels().iter().max().unwrap() as u16;
            prop_assert!(max_half <= max_orig + 1);
        }
    }
}
