//! SVM: linear support-vector-machine training and classification.
//!
//! The paper's SVM benchmark (built on ThunderSVM) trains a support-vector
//! classifier over feature vectors and then predicts classes for detected
//! features. We reproduce the same pipeline: extract patch-level feature
//! vectors from each image, train a linear SVM by stochastic sub-gradient
//! descent on the regularized hinge loss (the Pegasos algorithm), and
//! classify the batch.
//!
//! Training is inherently iterative: each epoch depends on the previous
//! weight vector. That serialization — many small dependent steps — is the
//! very thing that made SVM one of the benchmarks where the paper's GPU did
//! *not* beat the CPU at one instance (Fig. 3).

use crate::image::GrayImage;
use crate::ops;
use bagpred_trace::{InstrClass, Profiler, SplitMix64};
use serde::{Deserialize, Serialize};

/// Edge length of feature-extraction patches.
pub(crate) const PATCH: usize = 16;
/// Dimension of a patch feature vector.
pub(crate) const FEATURE_DIM: usize = 12;
/// Training epochs.
const EPOCHS: usize = 20;
/// Regularization parameter.
const LAMBDA: f32 = 0.01;

/// One labelled patch sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct Sample {
    /// Feature vector of the patch.
    pub features: Vec<f32>,
    /// Class label in {-1, +1}.
    pub label: f32,
}

/// Result of running the SVM benchmark over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SvmOutput {
    /// Learned weight vector.
    pub weights: Vec<f32>,
    /// Learned bias.
    pub bias: f32,
    /// Training accuracy over the batch's samples.
    pub train_accuracy: f64,
    /// Number of training samples.
    pub n_samples: usize,
}

/// Extracts the feature vector of one patch: intensity statistics, an 8-bin
/// histogram, and gradient energy.
pub(crate) fn patch_features(
    img: &GrayImage,
    x0: usize,
    y0: usize,
    prof: &mut Profiler,
) -> Vec<f32> {
    let mut sum = 0f64;
    let mut sum_sq = 0f64;
    let mut hist = [0f32; 8];
    let mut grad_energy = 0f64;
    for y in y0..y0 + PATCH {
        for x in x0..x0 + PATCH {
            let v = img.get_clamped(x as isize, y as isize) as f64;
            sum += v;
            sum_sq += v * v;
            hist[(v as usize / 32).min(7)] += 1.0;
            let gx = img.get_clamped(x as isize + 1, y as isize) as f64 - v;
            let gy = img.get_clamped(x as isize, y as isize + 1) as f64 - v;
            grad_energy += gx * gx + gy * gy;
        }
    }
    let n = (PATCH * PATCH) as f64;
    let mean = sum / n;
    let var = (sum_sq / n - mean * mean).max(0.0);

    let pixels = (PATCH * PATCH) as u64;
    prof.read_bytes(3 * pixels);
    prof.count(InstrClass::Fp, 8 * pixels);
    prof.count(InstrClass::Alu, 2 * pixels);
    prof.count(InstrClass::Control, PATCH as u64);

    let mut f = Vec::with_capacity(FEATURE_DIM);
    f.push((mean / 255.0) as f32);
    f.push((var.sqrt() / 128.0) as f32);
    f.push((grad_energy / (n * 255.0)) as f32);
    f.push(1.0); // bias-style constant feature
    for h in hist {
        f.push(h / n as f32);
    }
    debug_assert_eq!(f.len(), FEATURE_DIM);
    prof.write_bytes(4 * FEATURE_DIM as u64);
    f
}

/// Extracts labelled samples from a batch: one per non-overlapping patch.
///
/// The label is whether the patch's gradient energy exceeds the batch median
/// — i.e. "does this patch contain structure", the kind of boundary a vision
/// pipeline trains detectors on.
pub(crate) fn extract_samples(images: &[GrayImage], prof: &mut Profiler) -> Vec<Sample> {
    extract_samples_strided(images, PATCH, prof)
}

/// Extracts labelled samples over patches at a given stride; a stride below
/// [`PATCH`] yields overlapping patches and proportionally more samples
/// (KNN uses this for a denser reference set).
///
/// # Panics
///
/// Panics if `stride` is zero.
pub(crate) fn extract_samples_strided(
    images: &[GrayImage],
    stride: usize,
    prof: &mut Profiler,
) -> Vec<Sample> {
    assert!(stride > 0, "stride must be positive");
    let mut raw: Vec<Vec<f32>> = Vec::new();
    for img in images {
        let px = (img.width().saturating_sub(PATCH)) / stride + 1;
        let py = (img.height().saturating_sub(PATCH)) / stride + 1;
        for cy in 0..py {
            for cx in 0..px {
                raw.push(patch_features(img, cx * stride, cy * stride, prof));
            }
        }
    }
    // Median gradient energy defines the class boundary.
    let mut energies: Vec<f32> = raw.iter().map(|f| f[2]).collect();
    energies.sort_by(f32::total_cmp);
    let median = energies[energies.len() / 2];
    prof.count(
        InstrClass::Alu,
        (energies.len() as f64 * (energies.len().max(2) as f64).log2()) as u64,
    );

    raw.into_iter()
        .map(|features| {
            let label = if features[2] > median { 1.0 } else { -1.0 };
            Sample { features, label }
        })
        .collect()
}

/// Trains a linear SVM with Pegasos-style SGD on the hinge loss.
pub(crate) fn train(samples: &[Sample], prof: &mut Profiler) -> (Vec<f32>, f32) {
    let dim = samples.first().map_or(FEATURE_DIM, |s| s.features.len());
    let mut w = vec![0f32; dim];
    let mut b = 0f32;
    let mut rng = SplitMix64::new(0x5f3c_9a11);
    let mut t = 1usize;
    for _ in 0..EPOCHS {
        for _ in 0..samples.len() {
            let s = &samples[rng.next_below(samples.len() as u64) as usize];
            let eta = 1.0 / (LAMBDA * t as f32);
            let margin = s.label * (ops::dot(&w, &s.features, prof) + b);
            // Shrink (regularization) then hinge step if violating.
            for wi in &mut w {
                *wi *= 1.0 - eta * LAMBDA;
            }
            prof.count(InstrClass::Sse, dim as u64);
            if margin < 1.0 {
                for (wi, &xi) in w.iter_mut().zip(&s.features) {
                    *wi += eta * s.label * xi;
                }
                b += eta * s.label * 0.1;
                prof.count(InstrClass::Sse, dim as u64);
                prof.read_bytes(4 * dim as u64);
            }
            prof.count(InstrClass::Control, 3);
            prof.count(InstrClass::Stack, 1);
            t += 1;
        }
    }
    prof.write_bytes(4 * dim as u64);
    (w, b)
}

/// Classifies samples with a trained model; returns accuracy.
pub(crate) fn predict_accuracy(samples: &[Sample], w: &[f32], b: f32, prof: &mut Profiler) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for s in samples {
        let score = ops::dot(w, &s.features, prof) + b;
        if score.signum() == s.label.signum() {
            correct += 1;
        }
        prof.count(InstrClass::Control, 2);
    }
    correct as f64 / samples.len() as f64
}

/// Runs the SVM benchmark: sample extraction, training, batch prediction.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> SvmOutput {
    let samples = extract_samples(images, prof);
    let (weights, bias) = train(&samples, prof);
    let train_accuracy = predict_accuracy(&samples, &weights, bias, prof);
    SvmOutput {
        n_samples: samples.len(),
        weights,
        bias,
        train_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn features_have_fixed_dim() {
        let img = ImageSynthesizer::new(1).synthesize();
        let mut prof = Profiler::new();
        let f = patch_features(&img, 0, 0, &mut prof);
        assert_eq!(f.len(), FEATURE_DIM);
    }

    #[test]
    fn histogram_features_sum_to_one() {
        let img = ImageSynthesizer::new(2).synthesize();
        let mut prof = Profiler::new();
        let f = patch_features(&img, 16, 16, &mut prof);
        let hist_sum: f32 = f[4..12].iter().sum();
        assert!((hist_sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn sample_count_scales_with_batch() {
        let mut prof = Profiler::new();
        let s2 = extract_samples(&ImageSynthesizer::new(3).synthesize_batch(2), &mut prof);
        let s4 = extract_samples(&ImageSynthesizer::new(3).synthesize_batch(4), &mut prof);
        assert_eq!(s4.len(), 2 * s2.len());
        // 64x64 image -> 4x4 patches of 16x16.
        assert_eq!(s2.len(), 2 * 16);
    }

    #[test]
    fn both_classes_present() {
        let mut prof = Profiler::new();
        let samples = extract_samples(&ImageSynthesizer::new(4).synthesize_batch(4), &mut prof);
        assert!(samples.iter().any(|s| s.label > 0.0));
        assert!(samples.iter().any(|s| s.label < 0.0));
    }

    #[test]
    fn training_beats_chance() {
        let batch = ImageSynthesizer::new(5).synthesize_batch(6);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        // Gradient energy is a feature, so the boundary is learnable.
        assert!(
            out.train_accuracy > 0.7,
            "accuracy {} too low",
            out.train_accuracy
        );
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(6).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
