//! FAST corner detection (Features from Accelerated Segment Test).
//!
//! Implements the FAST-9 segment test: a pixel is a corner when at least 9
//! contiguous pixels on the 16-pixel Bresenham ring of radius 3 are all
//! brighter than `center + t` or all darker than `center - t`. The standard
//! high-speed test on ring pixels {0, 4, 8, 12} rejects most candidates
//! early, which is exactly the data-dependent control flow that makes FAST
//! divergence-heavy on SIMT hardware.

use crate::image::GrayImage;
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Detection threshold on the intensity difference.
pub(crate) const THRESHOLD: i16 = 24;

/// Number of contiguous ring pixels required (FAST-9).
const ARC_LEN: usize = 9;

/// Offsets of the 16-pixel Bresenham ring of radius 3, clockwise from north.
pub(crate) const RING: [(i32, i32); 16] = [
    (0, -3),
    (1, -3),
    (2, -2),
    (3, -1),
    (3, 0),
    (3, 1),
    (2, 2),
    (1, 3),
    (0, 3),
    (-1, 3),
    (-2, 2),
    (-3, 1),
    (-3, 0),
    (-3, -1),
    (-2, -2),
    (-1, -3),
];

/// A detected FAST corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corner {
    /// Column of the corner.
    pub x: u16,
    /// Row of the corner.
    pub y: u16,
    /// Corner score: sum of absolute ring differences beyond the threshold.
    pub score: u32,
}

/// Result of running FAST over a batch of images.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FastOutput {
    /// Corners per image, in batch order.
    pub corners: Vec<Vec<Corner>>,
}

impl FastOutput {
    /// Total corners detected across the batch.
    pub fn total_corners(&self) -> usize {
        self.corners.iter().map(Vec::len).sum()
    }
}

/// Detects FAST-9 corners in one image.
pub(crate) fn detect(img: &GrayImage, prof: &mut Profiler) -> Vec<Corner> {
    let w = img.width();
    let h = img.height();
    let mut corners = Vec::new();
    if w < 7 || h < 7 {
        return corners;
    }
    let mut ring_vals = [0i16; 16];
    for y in 3..h - 3 {
        for x in 3..w - 3 {
            let center = img.get(x, y) as i16;
            let hi = center + THRESHOLD;
            let lo = center - THRESHOLD;

            // High-speed test: any 9 contiguous ring pixels contain at least
            // two of the compass points {0, 4, 8, 12}, so fewer than two
            // brighter and fewer than two darker compass points rules out a
            // 9-arc.
            let mut brighter = 0u32;
            let mut darker = 0u32;
            for &i in &[0usize, 4, 8, 12] {
                let (dx, dy) = RING[i];
                let v = img.get_clamped(x as isize + dx as isize, y as isize + dy as isize) as i16;
                if v > hi {
                    brighter += 1;
                } else if v < lo {
                    darker += 1;
                }
            }
            // 4 loads, 1 center load, ~10 compares/adds, branches.
            prof.read_bytes(5);
            prof.count(InstrClass::Alu, 10);
            prof.count(InstrClass::Control, 5);
            if brighter < 2 && darker < 2 {
                continue;
            }

            // Full segment test over the 16-pixel ring.
            for (i, &(dx, dy)) in RING.iter().enumerate() {
                ring_vals[i] =
                    img.get_clamped(x as isize + dx as isize, y as isize + dy as isize) as i16;
            }
            prof.read_bytes(16);
            prof.count(InstrClass::Alu, 32);
            prof.count(InstrClass::Control, 17);

            if let Some(score) = segment_score(center, &ring_vals) {
                corners.push(Corner {
                    x: x as u16,
                    y: y as u16,
                    score,
                });
                prof.write_bytes(8);
                prof.count(InstrClass::Stack, 2);
            }
        }
        prof.count(InstrClass::Control, 1); // row loop
    }
    corners
}

/// Checks the FAST-9 contiguity condition; returns the corner score if met.
fn segment_score(center: i16, ring: &[i16; 16]) -> Option<u32> {
    let hi = center + THRESHOLD;
    let lo = center - THRESHOLD;
    for &(pred, diff_base) in &[(true, hi), (false, lo)] {
        // Walk the ring doubled to handle wraparound runs.
        let mut run = 0usize;
        let mut best = 0usize;
        for i in 0..32 {
            let v = ring[i % 16];
            let ok = if pred { v > diff_base } else { v < diff_base };
            if ok {
                run += 1;
                best = best.max(run);
                if best >= ARC_LEN {
                    let score: u32 = ring
                        .iter()
                        .map(|&v| {
                            let d = (v - center).unsigned_abs() as u32;
                            d.saturating_sub(THRESHOLD as u32)
                        })
                        .sum();
                    return Some(score);
                }
            } else {
                run = 0;
            }
        }
    }
    None
}

/// Runs FAST over every image in a batch.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> FastOutput {
    let corners = images.iter().map(|img| detect(img, prof)).collect();
    prof.count(InstrClass::Stack, 4 * images.len() as u64); // per-image call frames
    FastOutput { corners }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    /// A synthetic image with a single bright square on black: its four
    /// corners must be detected and little else.
    fn square_image() -> GrayImage {
        let mut img = GrayImage::new(32, 32);
        for y in 10..22 {
            for x in 10..22 {
                img.set(x, y, 255);
            }
        }
        img
    }

    #[test]
    fn detects_square_corners() {
        let mut prof = Profiler::new();
        let corners = detect(&square_image(), &mut prof);
        assert!(!corners.is_empty(), "square corners must be detected");
        // Every detection should be near one of the 4 square corners.
        for c in &corners {
            let near =
                [(10, 10), (21, 10), (10, 21), (21, 21)]
                    .iter()
                    .any(|&(cx, cy): &(i32, i32)| {
                        (c.x as i32 - cx).abs() <= 2 && (c.y as i32 - cy).abs() <= 2
                    });
            assert!(near, "unexpected corner at ({}, {})", c.x, c.y);
        }
    }

    #[test]
    fn flat_image_has_no_corners() {
        let img = GrayImage::from_fn(32, 32, |_, _| 128);
        let mut prof = Profiler::new();
        assert!(detect(&img, &mut prof).is_empty());
    }

    #[test]
    fn tiny_image_is_safe() {
        let img = GrayImage::new(4, 4);
        let mut prof = Profiler::new();
        assert!(detect(&img, &mut prof).is_empty());
    }

    #[test]
    fn profiling_counts_scale_with_batch() {
        let batch = ImageSynthesizer::new(1).synthesize_batch(4);
        let mut p1 = Profiler::new();
        run_batch(&batch[..2], &mut p1);
        let mut p2 = Profiler::new();
        run_batch(&batch, &mut p2);
        assert!(p2.total() > p1.total());
    }

    #[test]
    fn synthetic_images_yield_corners() {
        let batch = ImageSynthesizer::new(42).synthesize_batch(3);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        assert!(out.total_corners() > 0, "synthetic rectangles have corners");
    }

    #[test]
    fn corner_scores_are_positive() {
        let mut prof = Profiler::new();
        let corners = detect(&square_image(), &mut prof);
        for c in corners {
            assert!(c.score > 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let batch = ImageSynthesizer::new(7).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let a = run_batch(&batch, &mut p1);
        let mut p2 = Profiler::new();
        let b = run_batch(&batch, &mut p2);
        assert_eq!(a, b);
        assert_eq!(p1.total(), p2.total());
    }
}
