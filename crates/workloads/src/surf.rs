//! SURF: Speeded-Up Robust Features.
//!
//! Approximates the Hessian determinant with box filters evaluated in O(1)
//! over an integral image, detects blob responses across three filter sizes,
//! applies 3×3 spatial non-maximum suppression, and extracts a 64-dimensional
//! descriptor from Haar-wavelet responses in a 4×4 grid of subregions.

use crate::image::{GrayImage, IntegralImage};
use crate::ops;
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Box-filter sizes (SURF uses 9, 15, 21 for the first octave).
const FILTER_SIZES: [usize; 3] = [9, 15, 21];
/// Hessian response threshold.
const RESPONSE_THRESHOLD: f64 = 60.0;

/// A SURF interest point with its descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfKeypoint {
    /// Column of the keypoint.
    pub x: u16,
    /// Row of the keypoint.
    pub y: u16,
    /// Box-filter size the response peaked at.
    pub size: u16,
    /// Hessian determinant response.
    pub response: f32,
    /// 64-dimensional Haar-wavelet descriptor.
    pub descriptor: Vec<f32>,
}

/// Result of running SURF over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurfOutput {
    /// Keypoints per image, in batch order.
    pub keypoints: Vec<Vec<SurfKeypoint>>,
}

impl SurfOutput {
    /// Total keypoints across the batch.
    pub fn total_keypoints(&self) -> usize {
        self.keypoints.iter().map(Vec::len).sum()
    }
}

/// Approximate Hessian determinant at `(x, y)` for box-filter size `size`.
///
/// Dxx/Dyy use three stacked boxes (+1, -2, +1); Dxy uses four quadrant
/// boxes. All sums are O(1) via the integral image.
fn hessian_response(
    integral: &IntegralImage,
    x: usize,
    y: usize,
    size: usize,
    prof: &mut Profiler,
) -> Option<f64> {
    let half = size / 2;
    if x < half || y < half || x + half >= integral.width() || y + half >= integral.height() {
        return None;
    }
    let third = size / 3;
    let norm = 1.0 / (size * size) as f64;

    // Dyy: three horizontal bands (top +1, middle -2, bottom +1).
    let band_w = size.min(integral.width() - (x - half));
    let x0 = x - half;
    let y0 = y - half;
    let b1 = ops::box_sum(integral, x0, y0, band_w, third, prof) as f64;
    let b2 = ops::box_sum(integral, x0, y0 + third, band_w, third, prof) as f64;
    let b3 = ops::box_sum(integral, x0, y0 + 2 * third, band_w, third, prof) as f64;
    let dyy = (b1 - 2.0 * b2 + b3) * norm;

    // Dxx: three vertical bands.
    let band_h = size.min(integral.height() - (y - half));
    let c1 = ops::box_sum(integral, x0, y0, third, band_h, prof) as f64;
    let c2 = ops::box_sum(integral, x0 + third, y0, third, band_h, prof) as f64;
    let c3 = ops::box_sum(integral, x0 + 2 * third, y0, third, band_h, prof) as f64;
    let dxx = (c1 - 2.0 * c2 + c3) * norm;

    // Dxy: four quadrants around the center (+ - / - +).
    let q = third;
    let qa = ops::box_sum(integral, x0, y0, q, q, prof) as f64;
    let qb = ops::box_sum(integral, x + 1 - q.min(x), y0, q, q, prof) as f64;
    let qc = ops::box_sum(integral, x0, y + 1 - q.min(y), q, q, prof) as f64;
    let qd = ops::box_sum(integral, x + 1 - q.min(x), y + 1 - q.min(y), q, q, prof) as f64;
    let dxy = (qa + qd - qb - qc) * norm;

    prof.count(InstrClass::Fp, 12);
    // SURF's 0.9 weight compensates the box approximation of the Gaussian.
    Some(dxx * dyy - (0.9 * dxy) * (0.9 * dxy))
}

/// Haar-wavelet descriptor: sums of (|dx|, dx, |dy|, dy) responses in a 4×4
/// grid of subregions around the keypoint.
fn haar_descriptor(integral: &IntegralImage, x: usize, y: usize, prof: &mut Profiler) -> Vec<f32> {
    let mut desc = vec![0f32; 64];
    let wavelet = 4usize;
    let region = 4usize; // 4x4 samples per subregion
    for sy in 0..4usize {
        for sx in 0..4usize {
            let mut sum_dx = 0f64;
            let mut sum_dy = 0f64;
            let mut sum_adx = 0f64;
            let mut sum_ady = 0f64;
            for iy in 0..region {
                for ix in 0..region {
                    let px = x as isize + ((sx * region + ix) as isize - 8);
                    let py = y as isize + ((sy * region + iy) as isize - 8);
                    if px < 0
                        || py < 0
                        || px as usize + wavelet >= integral.width()
                        || py as usize + wavelet >= integral.height()
                    {
                        continue;
                    }
                    let (px, py) = (px as usize, py as usize);
                    let left = ops::box_sum(integral, px, py, wavelet / 2, wavelet, prof) as f64;
                    let right =
                        ops::box_sum(integral, px + wavelet / 2, py, wavelet / 2, wavelet, prof)
                            as f64;
                    let top = ops::box_sum(integral, px, py, wavelet, wavelet / 2, prof) as f64;
                    let bottom =
                        ops::box_sum(integral, px, py + wavelet / 2, wavelet, wavelet / 2, prof)
                            as f64;
                    let dx = right - left;
                    let dy = bottom - top;
                    sum_dx += dx;
                    sum_dy += dy;
                    sum_adx += dx.abs();
                    sum_ady += dy.abs();
                }
            }
            let base = (sy * 4 + sx) * 4;
            desc[base] = sum_dx as f32;
            desc[base + 1] = sum_adx as f32;
            desc[base + 2] = sum_dy as f32;
            desc[base + 3] = sum_ady as f32;
            prof.count(InstrClass::Fp, 6 * (region * region) as u64);
            prof.count(InstrClass::Control, region as u64);
            prof.write_bytes(16);
        }
    }
    // L2 normalize for contrast invariance.
    let norm: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    for v in &mut desc {
        *v /= norm;
    }
    prof.count(InstrClass::Sse, 2 * 64);
    desc
}

/// Runs SURF on one image.
pub(crate) fn detect(img: &GrayImage, prof: &mut Profiler) -> Vec<SurfKeypoint> {
    let integral = ops::integral(img, prof);
    let w = img.width();
    let h = img.height();

    // Response maps per filter size (sampled at stride 2, like SURF octave 1).
    let stride = 2usize;
    let mut keypoints = Vec::new();
    for &size in &FILTER_SIZES {
        let mut responses = vec![0f64; (w / stride) * (h / stride)];
        let cols = w / stride;
        for gy in 0..h / stride {
            for gx in 0..cols {
                if let Some(r) = hessian_response(&integral, gx * stride, gy * stride, size, prof) {
                    responses[gy * cols + gx] = r;
                }
            }
            prof.count(InstrClass::Control, 1);
        }
        // 3x3 non-maximum suppression on the sampled grid.
        for gy in 1..(h / stride).saturating_sub(1) {
            for gx in 1..cols.saturating_sub(1) {
                let v = responses[gy * cols + gx];
                prof.read_bytes(8);
                prof.count(InstrClass::Fp, 1);
                prof.count(InstrClass::Control, 1);
                if v < RESPONSE_THRESHOLD {
                    continue;
                }
                let mut is_max = true;
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        if dx == 0 && dy == 0 {
                            continue;
                        }
                        let n =
                            responses[(gy as i32 + dy) as usize * cols + (gx as i32 + dx) as usize];
                        if n >= v {
                            is_max = false;
                        }
                    }
                }
                prof.read_bytes(64);
                prof.count(InstrClass::Fp, 8);
                prof.count(InstrClass::Control, 9);
                if is_max {
                    let x = gx * stride;
                    let y = gy * stride;
                    let descriptor = haar_descriptor(&integral, x, y, prof);
                    prof.count(InstrClass::Stack, 6);
                    keypoints.push(SurfKeypoint {
                        x: x as u16,
                        y: y as u16,
                        size: size as u16,
                        response: v as f32,
                        descriptor,
                    });
                }
            }
        }
    }
    keypoints
}

/// Runs SURF over every image in a batch.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> SurfOutput {
    let keypoints = images.iter().map(|img| detect(img, prof)).collect();
    prof.count(InstrClass::Stack, 4 * images.len() as u64);
    SurfOutput { keypoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = GrayImage::from_fn(64, 64, |_, _| 90);
        let mut prof = Profiler::new();
        assert!(detect(&img, &mut prof).is_empty());
    }

    #[test]
    fn dark_blob_on_bright_field_is_detected() {
        let img = GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as i32 - 32;
            let dy = y as i32 - 32;
            if dx * dx + dy * dy < 30 {
                10
            } else {
                220
            }
        });
        let mut prof = Profiler::new();
        let kps = detect(&img, &mut prof);
        assert!(!kps.is_empty(), "blob should trigger Hessian response");
        assert!(kps
            .iter()
            .any(|k| (k.x as i32 - 32).abs() < 8 && (k.y as i32 - 32).abs() < 8));
    }

    #[test]
    fn descriptors_are_unit_norm() {
        let batch = ImageSynthesizer::new(6).synthesize_batch(1);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        for kp in out.keypoints.iter().flatten() {
            assert_eq!(kp.descriptor.len(), 64);
            let n: f32 = kp.descriptor.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 0.01 || n < 1e-5);
        }
    }

    #[test]
    fn hessian_rejects_border() {
        let img = GrayImage::from_fn(32, 32, |_, _| 50);
        let integral = IntegralImage::from_image(&img);
        let mut prof = Profiler::new();
        assert!(hessian_response(&integral, 0, 0, 9, &mut prof).is_none());
        assert!(hessian_response(&integral, 16, 16, 9, &mut prof).is_some());
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(8).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
