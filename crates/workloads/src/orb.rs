//! ORB: Oriented FAST and Rotated BRIEF.
//!
//! Detects FAST corners, scores them, computes the intensity-centroid
//! orientation of each keypoint, and extracts a steered 256-bit BRIEF
//! descriptor using a fixed random sampling pattern (seeded, so the pattern
//! is identical across runs — as in the reference implementation, where the
//! pattern is a compiled-in table).

use crate::fast::{self, Corner};
use crate::image::GrayImage;
use crate::ops;
use bagpred_trace::{InstrClass, Profiler, SplitMix64};
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// Maximum keypoints retained per image (strongest first).
const MAX_KEYPOINTS: usize = 64;

/// Patch radius for orientation and descriptor sampling.
const PATCH_RADIUS: i32 = 6;

/// An ORB keypoint with its binary descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrbKeypoint {
    /// Column of the keypoint.
    pub x: u16,
    /// Row of the keypoint.
    pub y: u16,
    /// Orientation angle in radians, from the intensity centroid.
    pub angle: f32,
    /// 256-bit steered BRIEF descriptor.
    pub descriptor: [u64; 4],
}

/// Result of running ORB over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrbOutput {
    /// Keypoints per image, in batch order.
    pub keypoints: Vec<Vec<OrbKeypoint>>,
}

impl OrbOutput {
    /// Total keypoints across the batch.
    pub fn total_keypoints(&self) -> usize {
        self.keypoints.iter().map(Vec::len).sum()
    }
}

/// The BRIEF sampling pattern: 256 point pairs within the patch.
fn brief_pattern() -> &'static [(i8, i8, i8, i8); 256] {
    static PATTERN: OnceLock<[(i8, i8, i8, i8); 256]> = OnceLock::new();
    PATTERN.get_or_init(|| {
        let mut rng = SplitMix64::new(0x0b5e_55ed_0b1f_u64);
        let mut pattern = [(0i8, 0i8, 0i8, 0i8); 256];
        for slot in &mut pattern {
            let r = PATCH_RADIUS as i64;
            let sample =
                |rng: &mut SplitMix64| (rng.next_below((2 * r + 1) as u64) as i64 - r) as i8;
            *slot = (
                sample(&mut rng),
                sample(&mut rng),
                sample(&mut rng),
                sample(&mut rng),
            );
        }
        pattern
    })
}

/// Computes the intensity-centroid orientation of a patch.
fn orientation(img: &GrayImage, cx: u16, cy: u16, prof: &mut Profiler) -> f32 {
    let mut m01 = 0i64;
    let mut m10 = 0i64;
    for dy in -PATCH_RADIUS..=PATCH_RADIUS {
        for dx in -PATCH_RADIUS..=PATCH_RADIUS {
            let v = img.get_clamped(cx as isize + dx as isize, cy as isize + dy as isize) as i64;
            m10 += dx as i64 * v;
            m01 += dy as i64 * v;
        }
    }
    let patch = (2 * PATCH_RADIUS + 1) as u64;
    prof.read_bytes(patch * patch);
    prof.count(InstrClass::Alu, 4 * patch * patch);
    prof.count(InstrClass::Control, patch);
    prof.count(InstrClass::Fp, 1); // atan2
    (m01 as f32).atan2(m10 as f32)
}

/// Extracts the steered BRIEF descriptor at a keypoint.
fn brief_descriptor(
    img: &GrayImage,
    kp_x: u16,
    kp_y: u16,
    angle: f32,
    prof: &mut Profiler,
) -> [u64; 4] {
    let (sin, cos) = angle.sin_cos();
    prof.count(InstrClass::Fp, 2);
    let mut desc = [0u64; 4];
    for (bit, &(x1, y1, x2, y2)) in brief_pattern().iter().enumerate() {
        // Rotate the sampling pair by the keypoint orientation.
        let rot = |x: i8, y: i8| {
            let rx = (cos * x as f32 - sin * y as f32).round() as isize;
            let ry = (sin * x as f32 + cos * y as f32).round() as isize;
            (rx, ry)
        };
        let (ax, ay) = rot(x1, y1);
        let (bx, by) = rot(x2, y2);
        let va = img.get_clamped(kp_x as isize + ax, kp_y as isize + ay);
        let vb = img.get_clamped(kp_x as isize + bx, kp_y as isize + by);
        if va < vb {
            desc[bit / 64] |= 1u64 << (bit % 64);
        }
    }
    prof.read_bytes(512);
    prof.count(InstrClass::Fp, 8 * 256); // rotations
    prof.count(InstrClass::Shift, 2 * 256); // bit packing
    prof.count(InstrClass::Alu, 256);
    prof.count(InstrClass::Control, 256);
    prof.count(InstrClass::StringOp, 4); // descriptor block store
    prof.write_bytes(32);
    desc
}

/// Runs ORB on one image.
pub(crate) fn detect(img: &GrayImage, prof: &mut Profiler) -> Vec<OrbKeypoint> {
    let mut corners: Vec<Corner> = fast::detect(img, prof);
    // Keep the strongest corners (Harris-free variant: FAST score ranking).
    corners.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then(a.y.cmp(&b.y))
            .then(a.x.cmp(&b.x))
    });
    corners.truncate(MAX_KEYPOINTS);
    prof.count(
        InstrClass::Alu,
        (corners.len() as f64 * (corners.len().max(2) as f64).log2()) as u64,
    );

    corners
        .into_iter()
        .map(|c| {
            let angle = orientation(img, c.x, c.y, prof);
            let descriptor = brief_descriptor(img, c.x, c.y, angle, prof);
            prof.count(InstrClass::Stack, 4);
            OrbKeypoint {
                x: c.x,
                y: c.y,
                angle,
                descriptor,
            }
        })
        .collect()
}

/// Runs ORB over a batch and cross-matches descriptors between consecutive
/// images (the matching step is what downstream pipelines use ORB for).
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> OrbOutput {
    let keypoints: Vec<Vec<OrbKeypoint>> = images.iter().map(|img| detect(img, prof)).collect();
    // Match consecutive image pairs by Hamming distance (brute force).
    for pair in keypoints.windows(2) {
        for a in &pair[0] {
            let mut best = u32::MAX;
            for b in &pair[1] {
                let d = ops::hamming256(&a.descriptor, &b.descriptor, prof);
                if d < best {
                    best = d;
                }
            }
            prof.count(InstrClass::Control, pair[1].len() as u64);
        }
    }
    OrbOutput { keypoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn pattern_is_stable_and_in_patch() {
        let p1 = brief_pattern();
        let p2 = brief_pattern();
        assert_eq!(p1[0], p2[0]);
        for &(x1, y1, x2, y2) in p1.iter() {
            for v in [x1, y1, x2, y2] {
                assert!((v as i32).abs() <= PATCH_RADIUS);
            }
        }
    }

    #[test]
    fn keypoints_capped() {
        let batch = ImageSynthesizer::new(3).synthesize_batch(2);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        for kps in &out.keypoints {
            assert!(kps.len() <= MAX_KEYPOINTS);
        }
    }

    #[test]
    fn descriptors_differ_between_keypoints() {
        let batch = ImageSynthesizer::new(5).synthesize_batch(1);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        let kps = &out.keypoints[0];
        if kps.len() >= 2 {
            assert_ne!(kps[0].descriptor, kps[1].descriptor);
        }
    }

    #[test]
    fn orientation_of_symmetric_patch_is_defined() {
        let img = GrayImage::from_fn(32, 32, |_, _| 100);
        let mut prof = Profiler::new();
        let angle = orientation(&img, 16, 16, &mut prof);
        assert!(angle.is_finite());
    }

    #[test]
    fn orientation_points_toward_bright_side() {
        // Bright on the right half -> centroid to the right -> angle near 0.
        let img = GrayImage::from_fn(32, 32, |x, _| if x > 16 { 200 } else { 0 });
        let mut prof = Profiler::new();
        let angle = orientation(&img, 16, 16, &mut prof);
        assert!(angle.abs() < 0.3, "angle={angle}");
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(11).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
