//! KNN: brute-force k-nearest-neighbor classification.
//!
//! Follows the GPU-KNN formulation of Garcia et al. (the paper's reference
//! [39]): an all-pairs distance computation between a query set and a
//! reference set, a partial selection of the k smallest distances per query,
//! and a majority vote. The distance matrix is embarrassingly parallel,
//! which is why KNN scales well on SIMT hardware.

use crate::image::GrayImage;
use crate::ops;
use crate::svm::{self, Sample};
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Number of neighbors considered.
const K: usize = 5;

/// Result of running the KNN benchmark over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnnOutput {
    /// Number of reference samples.
    pub n_references: usize,
    /// Number of query samples.
    pub n_queries: usize,
    /// Predicted label per query, in {-1, +1}.
    pub predictions: Vec<f32>,
    /// Fraction of queries whose prediction matches their true label.
    pub accuracy: f64,
}

/// Classifies one query against the reference set.
fn classify(query: &Sample, references: &[Sample], prof: &mut Profiler) -> f32 {
    // Track the K smallest distances with their labels (insertion into a
    // fixed-size sorted buffer, as the GPU formulation does per thread).
    let mut best: Vec<(f32, f32)> = Vec::with_capacity(K);
    for r in references {
        let d = ops::squared_distance(&query.features, &r.features, prof);
        let pos = best.partition_point(|&(bd, _)| bd < d);
        if pos < K {
            if best.len() == K {
                best.pop();
            }
            best.insert(pos, (d, r.label));
            prof.count(InstrClass::Stack, 2);
        }
        prof.count(InstrClass::Control, 2);
    }
    let vote: f32 = best.iter().map(|&(_, l)| l).sum();
    prof.count(InstrClass::Alu, K as u64);
    if vote >= 0.0 {
        1.0
    } else {
        -1.0
    }
}

/// Patch stride: overlapping patches give KNN the dense, high-dimensional
/// reference sets the GPU-KNN literature targets.
const SAMPLE_STRIDE: usize = 8;

/// Images contributing to the fixed reference set. As in Garcia et al.'s
/// formulation, the reference (training) set is fixed while queries scale
/// with the input batch, so total work grows linearly with batch size.
const REF_IMAGES: usize = 10;

/// Runs the KNN benchmark: a fixed prefix of the batch provides references,
/// the rest provides queries.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> KnnOutput {
    let samples = svm::extract_samples_strided(images, SAMPLE_STRIDE, prof);
    let samples_per_image = samples.len() / images.len().max(1);
    let ref_images = REF_IMAGES.min((images.len() / 2).max(1));
    let split = (ref_images * samples_per_image).max(1).min(samples.len());
    let (references, queries) = samples.split_at(split);

    let mut predictions = Vec::with_capacity(queries.len());
    let mut correct = 0usize;
    for q in queries {
        let pred = classify(q, references, prof);
        if pred.signum() == q.label.signum() {
            correct += 1;
        }
        predictions.push(pred);
        prof.count(InstrClass::Control, 1);
    }
    let accuracy = if queries.is_empty() {
        0.0
    } else {
        correct as f64 / queries.len() as f64
    };
    KnnOutput {
        n_references: references.len(),
        n_queries: queries.len(),
        predictions,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    fn sample(features: Vec<f32>, label: f32) -> Sample {
        Sample { features, label }
    }

    #[test]
    fn classify_prefers_nearest_cluster() {
        let mut refs = Vec::new();
        for i in 0..5 {
            refs.push(sample(vec![0.0 + i as f32 * 0.01, 0.0], -1.0));
            refs.push(sample(vec![1.0 + i as f32 * 0.01, 1.0], 1.0));
        }
        let mut prof = Profiler::new();
        assert_eq!(
            classify(&sample(vec![0.05, 0.05], 0.0), &refs, &mut prof),
            -1.0
        );
        assert_eq!(
            classify(&sample(vec![0.95, 0.95], 0.0), &refs, &mut prof),
            1.0
        );
    }

    #[test]
    fn ties_resolve_positive() {
        let refs = vec![sample(vec![0.0], 1.0), sample(vec![0.0], -1.0)];
        let mut prof = Profiler::new();
        assert_eq!(classify(&sample(vec![0.0], 0.0), &refs, &mut prof), 1.0);
    }

    #[test]
    fn batch_splits_refs_and_queries() {
        let batch = ImageSynthesizer::new(1).synthesize_batch(4);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        // 64x64 images, 16x16 patches at stride 8 -> 7x7 = 49 per image;
        // with 4 images, the reference set is capped at 2 images' worth.
        assert_eq!(out.n_references + out.n_queries, 4 * 49);
        assert_eq!(out.n_references, 2 * 49);
        assert_eq!(out.predictions.len(), out.n_queries);
    }

    #[test]
    fn reference_set_is_capped_for_large_batches() {
        let mut prof = Profiler::new();
        let out = run_batch(&ImageSynthesizer::new(1).synthesize_batch(24), &mut prof);
        assert_eq!(out.n_references, 10 * 49);
        assert_eq!(out.n_queries, 14 * 49);
    }

    #[test]
    fn knn_beats_chance_on_structured_labels() {
        let batch = ImageSynthesizer::new(2).synthesize_batch(6);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        assert!(out.accuracy > 0.6, "accuracy {}", out.accuracy);
    }

    #[test]
    fn work_scales_roughly_linearly_at_large_batches() {
        // The reference set is fixed beyond REF_IMAGES, so doubling the
        // batch roughly doubles the all-pairs distance work.
        let mut p40 = Profiler::new();
        run_batch(&ImageSynthesizer::new(3).synthesize_batch(40), &mut p40);
        let mut p80 = Profiler::new();
        run_batch(&ImageSynthesizer::new(3).synthesize_batch(80), &mut p80);
        let ratio = p80.total() as f64 / p40.total() as f64;
        assert!((1.8..2.6).contains(&ratio), "ratio {ratio:.2}");
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(4).synthesize_batch(2);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
    }
}
