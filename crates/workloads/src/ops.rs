//! Shared profiled primitives used by several kernels.
//!
//! Each helper performs the real computation *and* charges the corresponding
//! abstract dynamic instructions to the profiler, at loop granularity (one
//! `count` call per row or per window rather than per scalar op) so that the
//! instrumentation overhead stays negligible.

use crate::image::{GrayImage, IntegralImage};
use bagpred_trace::{InstrClass, Profiler};

/// A single-channel `f32` image used for pyramid/blur intermediates.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FloatImage {
    pub width: usize,
    pub height: usize,
    pub data: Vec<f32>,
}

impl FloatImage {
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    pub fn from_gray(img: &GrayImage, prof: &mut Profiler) -> Self {
        let mut out = Self::new(img.width(), img.height());
        for y in 0..img.height() {
            for x in 0..img.width() {
                out.data[y * img.width() + x] = img.get(x, y) as f32;
            }
        }
        let n = (img.width() * img.height()) as u64;
        prof.read_bytes(n);
        prof.write_bytes(4 * n);
        prof.count(InstrClass::Fp, n); // int -> float conversion
                                       // Bulk plane conversion compiles to block-move sequences.
        prof.count(InstrClass::StringOp, n / 64);
        prof.count(InstrClass::Control, img.height() as u64);
        out
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        self.data[y * self.width + x]
    }

    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.get(cx, cy)
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: f32) {
        self.data[y * self.width + x] = v;
    }

    pub fn half(&self, prof: &mut Profiler) -> FloatImage {
        let nw = (self.width / 2).max(1);
        let nh = (self.height / 2).max(1);
        let mut out = FloatImage::new(nw, nh);
        for y in 0..nh {
            for x in 0..nw {
                let sx = (x * 2).min(self.width - 1);
                let sy = (y * 2).min(self.height - 1);
                out.set(x, y, self.get(sx, sy));
            }
        }
        let n = (nw * nh) as u64;
        prof.read_bytes(4 * n);
        prof.write_bytes(4 * n);
        prof.count(InstrClass::Shift, 2 * n); // index scaling
        prof.count(InstrClass::Control, nh as u64);
        out
    }
}

/// Builds a Gaussian kernel with the given sigma; radius = ceil(2.5 sigma).
pub(crate) fn gaussian_kernel(sigma: f64) -> Vec<f32> {
    let radius = (2.5 * sigma).ceil() as i64;
    let mut taps: Vec<f32> = (-radius..=radius)
        .map(|i| (-((i * i) as f64) / (2.0 * sigma * sigma)).exp() as f32)
        .collect();
    let sum: f32 = taps.iter().sum();
    for t in &mut taps {
        *t /= sum;
    }
    taps
}

/// Separable Gaussian blur, profiled. SIMD-friendly streaming loops are
/// charged to the SSE class (they vectorize on the paper's Xeon host).
pub(crate) fn gaussian_blur(src: &FloatImage, sigma: f64, prof: &mut Profiler) -> FloatImage {
    let taps = gaussian_kernel(sigma);
    let radius = (taps.len() / 2) as isize;
    let w = src.width;
    let h = src.height;

    let mut tmp = FloatImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for (k, tap) in taps.iter().enumerate() {
                acc += tap * src.get_clamped(x as isize + k as isize - radius, y as isize);
            }
            tmp.set(x, y, acc);
        }
    }
    let mut out = FloatImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let mut acc = 0.0f32;
            for (k, tap) in taps.iter().enumerate() {
                acc += tap * tmp.get_clamped(x as isize, y as isize + k as isize - radius);
            }
            out.set(x, y, acc);
        }
    }

    let pixels = (w * h) as u64;
    let taps_n = taps.len() as u64;
    // Two separable passes: one fused multiply-add per tap per pixel.
    prof.count(InstrClass::Sse, 2 * pixels * taps_n);
    prof.read_bytes(2 * pixels * taps_n * 4);
    prof.write_bytes(2 * pixels * 4);
    prof.count(InstrClass::Control, 2 * pixels);
    out
}

/// Central-difference gradients, profiled. Returns (dx, dy) planes.
pub(crate) fn gradients(src: &FloatImage, prof: &mut Profiler) -> (FloatImage, FloatImage) {
    let w = src.width;
    let h = src.height;
    let mut dx = FloatImage::new(w, h);
    let mut dy = FloatImage::new(w, h);
    for y in 0..h {
        for x in 0..w {
            let gx = src.get_clamped(x as isize + 1, y as isize)
                - src.get_clamped(x as isize - 1, y as isize);
            let gy = src.get_clamped(x as isize, y as isize + 1)
                - src.get_clamped(x as isize, y as isize - 1);
            dx.set(x, y, gx);
            dy.set(x, y, gy);
        }
    }
    let pixels = (w * h) as u64;
    prof.count(InstrClass::Sse, 2 * pixels); // subtractions vectorize
    prof.read_bytes(4 * pixels * 4);
    prof.write_bytes(2 * pixels * 4);
    prof.count(InstrClass::Control, h as u64);
    (dx, dy)
}

/// Profiled integral-image construction (prefix sums).
pub(crate) fn integral(img: &GrayImage, prof: &mut Profiler) -> IntegralImage {
    let result = IntegralImage::from_image(img);
    let pixels = (img.width() * img.height()) as u64;
    prof.count(InstrClass::Alu, 2 * pixels); // two adds per pixel
    prof.read_bytes(pixels + 8 * pixels);
    prof.write_bytes(8 * pixels);
    prof.count(InstrClass::Control, img.height() as u64);
    result
}

/// Profiled O(1) box sum via an integral image (4 loads, 3 adds).
#[inline]
pub(crate) fn box_sum(
    integral: &IntegralImage,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
    prof: &mut Profiler,
) -> u64 {
    prof.read_bytes(32);
    prof.count(InstrClass::Alu, 3);
    integral.box_sum(x, y, w, h)
}

/// Profiled squared Euclidean distance between two f32 vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub(crate) fn squared_distance(a: &[f32], b: &[f32], prof: &mut Profiler) -> f32 {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    let n = a.len() as u64;
    prof.count(InstrClass::Sse, 2 * n); // sub + fma vectorize
    prof.read_bytes(8 * n);
    prof.count(InstrClass::Control, 1);
    acc
}

/// Profiled dot product between two f32 vectors.
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub(crate) fn dot(a: &[f32], b: &[f32], prof: &mut Profiler) -> f32 {
    assert_eq!(a.len(), b.len(), "vector lengths must match");
    let acc: f32 = a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum();
    let n = a.len() as u64;
    prof.count(InstrClass::Sse, n);
    prof.read_bytes(8 * n);
    prof.count(InstrClass::Control, 1);
    acc
}

/// Profiled Hamming distance between two 256-bit binary descriptors.
pub(crate) fn hamming256(a: &[u64; 4], b: &[u64; 4], prof: &mut Profiler) -> u32 {
    let mut dist = 0;
    for i in 0..4 {
        dist += (a[i] ^ b[i]).count_ones();
    }
    prof.count(InstrClass::Alu, 8); // xor + popcount per word
    prof.read_bytes(64);
    prof.count(InstrClass::Control, 1);
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn gaussian_kernel_normalized() {
        for sigma in [0.8, 1.6, 3.2] {
            let taps = gaussian_kernel(sigma);
            let sum: f32 = taps.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sigma={sigma} sum={sum}");
            assert_eq!(taps.len() % 2, 1, "kernel must be odd-length");
        }
    }

    #[test]
    fn blur_preserves_constant_image() {
        let mut prof = Profiler::new();
        let mut img = FloatImage::new(16, 16);
        img.data.fill(100.0);
        let blurred = gaussian_blur(&img, 1.5, &mut prof);
        for &v in &blurred.data {
            assert!((v - 100.0).abs() < 1e-3);
        }
        assert!(prof.class_count(InstrClass::Sse) > 0);
    }

    #[test]
    fn blur_smooths_impulse() {
        let mut prof = Profiler::new();
        let mut img = FloatImage::new(17, 17);
        img.set(8, 8, 1000.0);
        let blurred = gaussian_blur(&img, 1.2, &mut prof);
        assert!(blurred.get(8, 8) < 1000.0);
        assert!(blurred.get(7, 8) > 0.0);
        // Blur conserves mass (up to border effects, absent for a central impulse).
        let total: f32 = blurred.data.iter().sum();
        assert!((total - 1000.0).abs() < 1.0, "total={total}");
    }

    #[test]
    fn gradients_of_ramp_are_constant() {
        let mut prof = Profiler::new();
        let mut img = FloatImage::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                img.set(x, y, 3.0 * x as f32);
            }
        }
        let (dx, dy) = gradients(&img, &mut prof);
        // Interior pixels: central difference of 3x slope = 6.
        assert!((dx.get(4, 4) - 6.0).abs() < 1e-5);
        assert!(dy.get(4, 4).abs() < 1e-5);
    }

    #[test]
    fn profiled_box_sum_matches_unprofiled() {
        let img = ImageSynthesizer::new(3).with_size(12, 12).synthesize();
        let mut prof = Profiler::new();
        let table = integral(&img, &mut prof);
        let loads_before = prof.class_count(InstrClass::Load);
        let sum = box_sum(&table, 2, 2, 5, 5, &mut prof);
        assert_eq!(sum, table.box_sum(2, 2, 5, 5));
        assert!(prof.class_count(InstrClass::Load) > loads_before);
    }

    #[test]
    fn squared_distance_basic() {
        let mut prof = Profiler::new();
        let d = squared_distance(&[0.0, 3.0], &[4.0, 0.0], &mut prof);
        assert!((d - 25.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "lengths must match")]
    fn squared_distance_length_mismatch() {
        squared_distance(&[1.0], &[1.0, 2.0], &mut Profiler::new());
    }

    #[test]
    fn dot_product_basic() {
        let mut prof = Profiler::new();
        let d = dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &mut prof);
        assert!((d - 32.0).abs() < 1e-6);
    }

    #[test]
    fn hamming_distance_counts_bits() {
        let mut prof = Profiler::new();
        let a = [0u64, 0, 0, 0];
        let b = [0b1011u64, 0, 1, 0];
        assert_eq!(hamming256(&a, &b, &mut prof), 4);
        assert_eq!(hamming256(&a, &a, &mut prof), 0);
    }

    #[test]
    fn float_image_from_gray_roundtrips_values() {
        let img = ImageSynthesizer::new(4).with_size(8, 8).synthesize();
        let mut prof = Profiler::new();
        let f = FloatImage::from_gray(&img, &mut prof);
        assert_eq!(f.get(3, 3), img.get(3, 3) as f32);
        assert!(prof.total() > 0);
    }

    #[test]
    fn float_half_shrinks() {
        let mut prof = Profiler::new();
        let img = FloatImage::new(10, 8);
        let h = img.half(&mut prof);
        assert_eq!((h.width, h.height), (5, 4));
    }
}
