//! SIFT: Scale-Invariant Feature Transform.
//!
//! Builds a Gaussian scale-space pyramid, computes difference-of-Gaussians
//! (DoG) planes, locates scale-space extrema (26-neighbor test), assigns a
//! dominant gradient orientation from a 36-bin histogram, and extracts the
//! classic 4×4×8 = 128-dimensional gradient-histogram descriptor.
//!
//! The pyramid is trimmed to two octaves with four Gaussian scales each,
//! which preserves the algorithm's structure (and its blur-dominated,
//! FP/SIMD-heavy instruction mix) at a fraction of the full cost.

use crate::image::GrayImage;
use crate::ops::{self, FloatImage};
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Octaves in the pyramid.
const OCTAVES: usize = 2;
/// Gaussian scales per octave (yields `SCALES - 1` DoG planes).
const SCALES: usize = 4;
/// Base blur sigma.
const SIGMA0: f64 = 1.6;
/// DoG magnitude threshold for extrema.
const DOG_THRESHOLD: f32 = 4.0;
/// Orientation histogram bins.
const ORI_BINS: usize = 36;

/// A SIFT keypoint with its 128-d descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiftKeypoint {
    /// Column in the original image.
    pub x: u16,
    /// Row in the original image.
    pub y: u16,
    /// Pyramid octave the keypoint was found in.
    pub octave: u8,
    /// Dominant orientation in radians.
    pub angle: f32,
    /// 128-dimensional gradient-histogram descriptor, L2-normalized.
    pub descriptor: Vec<f32>,
}

/// Result of running SIFT over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SiftOutput {
    /// Keypoints per image, in batch order.
    pub keypoints: Vec<Vec<SiftKeypoint>>,
}

impl SiftOutput {
    /// Total keypoints across the batch.
    pub fn total_keypoints(&self) -> usize {
        self.keypoints.iter().map(Vec::len).sum()
    }
}

struct Octave {
    gaussians: Vec<FloatImage>,
    dogs: Vec<FloatImage>,
    scale: usize, // downsampling factor relative to the input image
}

fn build_pyramid(img: &GrayImage, prof: &mut Profiler) -> Vec<Octave> {
    let mut octaves = Vec::with_capacity(OCTAVES);
    let mut base = FloatImage::from_gray(img, prof);
    let mut scale = 1usize;
    let k = 2f64.powf(1.0 / (SCALES - 1) as f64);
    for _ in 0..OCTAVES {
        let mut gaussians = Vec::with_capacity(SCALES);
        for s in 0..SCALES {
            let sigma = SIGMA0 * k.powi(s as i32);
            gaussians.push(ops::gaussian_blur(&base, sigma, prof));
        }
        let mut dogs = Vec::with_capacity(SCALES - 1);
        for s in 0..SCALES - 1 {
            let a = &gaussians[s + 1];
            let b = &gaussians[s];
            let mut dog = FloatImage::new(a.width, a.height);
            for i in 0..dog.data.len() {
                dog.data[i] = a.data[i] - b.data[i];
            }
            let n = dog.data.len() as u64;
            prof.count(InstrClass::Sse, n);
            prof.read_bytes(8 * n);
            prof.write_bytes(4 * n);
            dogs.push(dog);
        }
        let next_base = gaussians[SCALES - 1].half(prof);
        octaves.push(Octave {
            gaussians,
            dogs,
            scale,
        });
        base = next_base;
        scale *= 2;
    }
    octaves
}

/// True when `dogs[s]` at `(x, y)` is a strict extremum of its 26 neighbors.
fn is_extremum(dogs: &[FloatImage], s: usize, x: usize, y: usize, prof: &mut Profiler) -> bool {
    let v = dogs[s].get(x, y);
    if v.abs() < DOG_THRESHOLD {
        return false;
    }
    let mut is_max = true;
    let mut is_min = true;
    for plane in &dogs[s - 1..=s + 1] {
        for dy in -1i32..=1 {
            for dx in -1i32..=1 {
                let nv = plane.get_clamped(x as isize + dx as isize, y as isize + dy as isize);
                if std::ptr::eq(plane, &dogs[s]) && dx == 0 && dy == 0 {
                    continue;
                }
                if nv >= v {
                    is_max = false;
                }
                if nv <= v {
                    is_min = false;
                }
            }
        }
    }
    prof.read_bytes(27 * 4);
    prof.count(InstrClass::Fp, 54);
    prof.count(InstrClass::Control, 30);
    is_max || is_min
}

/// Dominant gradient orientation from a 36-bin weighted histogram.
fn dominant_orientation(
    dx: &FloatImage,
    dy: &FloatImage,
    x: usize,
    y: usize,
    prof: &mut Profiler,
) -> f32 {
    let mut hist = [0f32; ORI_BINS];
    let radius = 4i32;
    for oy in -radius..=radius {
        for ox in -radius..=radius {
            let gx = dx.get_clamped(x as isize + ox as isize, y as isize + oy as isize);
            let gy = dy.get_clamped(x as isize + ox as isize, y as isize + oy as isize);
            let mag = (gx * gx + gy * gy).sqrt();
            let ang = gy.atan2(gx);
            let bin = (((ang + std::f32::consts::PI) / (2.0 * std::f32::consts::PI)
                * ORI_BINS as f32) as usize)
                .min(ORI_BINS - 1);
            hist[bin] += mag;
        }
    }
    let window = (2 * radius + 1) as u64;
    prof.read_bytes(8 * window * window);
    // sqrt (~10 flops) + atan2 (~40 flops) + binning per pixel.
    prof.count(InstrClass::Fp, 52 * window * window);
    prof.count(InstrClass::Alu, 2 * window * window);
    prof.count(InstrClass::Control, window);
    let best = hist
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0);
    prof.count(InstrClass::Control, ORI_BINS as u64);
    (best as f32 + 0.5) / ORI_BINS as f32 * 2.0 * std::f32::consts::PI - std::f32::consts::PI
}

/// Extracts the 4×4×8 gradient-histogram descriptor around a keypoint.
fn descriptor(
    dx: &FloatImage,
    dy: &FloatImage,
    x: usize,
    y: usize,
    angle: f32,
    prof: &mut Profiler,
) -> Vec<f32> {
    let mut desc = vec![0f32; 128];
    let (sin, cos) = angle.sin_cos();
    let half = 8i32; // 16x16 sampling window
    for oy in -half..half {
        for ox in -half..half {
            // Rotate the sampling offset into the keypoint frame.
            let rx = cos * ox as f32 + sin * oy as f32;
            let ry = -sin * ox as f32 + cos * oy as f32;
            let cell_x = (((rx + half as f32) / 4.0) as usize).min(3);
            let cell_y = (((ry + half as f32) / 4.0) as usize).min(3);
            let gx = dx.get_clamped(x as isize + ox as isize, y as isize + oy as isize);
            let gy = dy.get_clamped(x as isize + ox as isize, y as isize + oy as isize);
            let mag = (gx * gx + gy * gy).sqrt();
            let ang = gy.atan2(gx) - angle;
            let bin = ((ang.rem_euclid(2.0 * std::f32::consts::PI)) / (2.0 * std::f32::consts::PI)
                * 8.0) as usize;
            desc[(cell_y * 4 + cell_x) * 8 + bin.min(7)] += mag;
        }
    }
    let window = (2 * half) as u64 * (2 * half) as u64;
    prof.read_bytes(8 * window);
    // Rotation, sqrt and atan2 per sample, at flop-equivalent cost.
    prof.count(InstrClass::Fp, 56 * window);
    prof.count(InstrClass::Alu, 4 * window);
    prof.count(InstrClass::Control, 2 * half as u64);

    // L2 normalization with clipping (standard SIFT illumination handling).
    let norm: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    for v in &mut desc {
        *v = (*v / norm).min(0.2);
    }
    let norm2: f32 = desc.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
    for v in &mut desc {
        *v /= norm2;
    }
    prof.count(InstrClass::Sse, 4 * 128);
    prof.write_bytes(4 * 128);
    desc
}

/// Runs SIFT on one image.
pub(crate) fn detect(img: &GrayImage, prof: &mut Profiler) -> Vec<SiftKeypoint> {
    let octaves = build_pyramid(img, prof);
    let mut keypoints = Vec::new();
    for (oct_idx, oct) in octaves.iter().enumerate() {
        // Gradients of the mid-scale Gaussian serve orientation + descriptor.
        let (dx, dy) = ops::gradients(&oct.gaussians[1], prof);
        let w = oct.dogs[0].width;
        let h = oct.dogs[0].height;
        for s in 1..oct.dogs.len() - 1 {
            for y in 1..h.saturating_sub(1) {
                for x in 1..w.saturating_sub(1) {
                    // Cheap threshold pre-test before the 26-neighbor probe.
                    prof.read_bytes(4);
                    prof.count(InstrClass::Fp, 1);
                    prof.count(InstrClass::Control, 1);
                    if oct.dogs[s].get(x, y).abs() < DOG_THRESHOLD {
                        continue;
                    }
                    if is_extremum(&oct.dogs, s, x, y, prof) {
                        let angle = dominant_orientation(&dx, &dy, x, y, prof);
                        let desc = descriptor(&dx, &dy, x, y, angle, prof);
                        prof.count(InstrClass::Stack, 6);
                        keypoints.push(SiftKeypoint {
                            x: (x * oct.scale) as u16,
                            y: (y * oct.scale) as u16,
                            octave: oct_idx as u8,
                            angle,
                            descriptor: desc,
                        });
                    }
                }
            }
        }
    }
    keypoints
}

/// Runs SIFT over every image in a batch.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> SiftOutput {
    let keypoints = images.iter().map(|img| detect(img, prof)).collect();
    prof.count(InstrClass::Stack, 6 * images.len() as u64);
    SiftOutput { keypoints }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn pyramid_has_expected_shape() {
        let img = ImageSynthesizer::new(1).synthesize();
        let mut prof = Profiler::new();
        let octaves = build_pyramid(&img, &mut prof);
        assert_eq!(octaves.len(), OCTAVES);
        for oct in &octaves {
            assert_eq!(oct.gaussians.len(), SCALES);
            assert_eq!(oct.dogs.len(), SCALES - 1);
        }
        // Second octave is half resolution.
        assert_eq!(
            octaves[1].gaussians[0].width,
            octaves[0].gaussians[0].width / 2
        );
    }

    #[test]
    fn flat_image_has_no_keypoints() {
        let img = GrayImage::from_fn(64, 64, |_, _| 77);
        let mut prof = Profiler::new();
        assert!(detect(&img, &mut prof).is_empty());
    }

    #[test]
    fn blob_is_detected() {
        // A Gaussian blob of sigma ~2.4 peaks at the pyramid's middle DoG
        // scale, making the center a scale-space extremum.
        let img = GrayImage::from_fn(64, 64, |x, y| {
            let dx = x as f64 - 32.0;
            let dy = y as f64 - 32.0;
            (30.0 + 200.0 * (-(dx * dx + dy * dy) / 12.0).exp()) as u8
        });
        let mut prof = Profiler::new();
        let kps = detect(&img, &mut prof);
        assert!(!kps.is_empty(), "central blob must produce a keypoint");
        let near_center = kps
            .iter()
            .any(|k| (k.x as i32 - 32).abs() < 6 && (k.y as i32 - 32).abs() < 6);
        assert!(near_center);
    }

    #[test]
    fn descriptors_are_normalized() {
        let batch = ImageSynthesizer::new(2).synthesize_batch(1);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        for kp in out.keypoints.iter().flatten() {
            assert_eq!(kp.descriptor.len(), 128);
            let norm: f32 = kp.descriptor.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 0.01, "descriptor norm {norm}");
        }
    }

    #[test]
    fn mix_is_fp_and_simd_heavy() {
        let batch = ImageSynthesizer::new(3).synthesize_batch(1);
        let mut prof = Profiler::new();
        run_batch(&batch, &mut prof);
        let mix = prof.mix();
        use bagpred_trace::InstrClass;
        assert!(
            mix.percent(InstrClass::Sse) + mix.percent(InstrClass::Fp) > 20.0,
            "SIFT should be FP/SIMD heavy: {mix}"
        );
    }

    #[test]
    fn deterministic() {
        let batch = ImageSynthesizer::new(4).synthesize_batch(1);
        let mut p1 = Profiler::new();
        let mut p2 = Profiler::new();
        assert_eq!(run_batch(&batch, &mut p1), run_batch(&batch, &mut p2));
        assert_eq!(p1.total(), p2.total());
    }
}
