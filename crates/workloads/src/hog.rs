//! HoG: Histogram of Oriented Gradients.
//!
//! Computes per-pixel gradients, accumulates 9-bin orientation histograms in
//! 8×8-pixel cells, and L2-Hys normalizes 2×2-cell blocks — the classic
//! Dalal–Triggs descriptor pipeline.

use crate::image::GrayImage;
use crate::ops::{self, FloatImage};
use bagpred_trace::{InstrClass, Profiler};
use serde::{Deserialize, Serialize};

/// Pixels per cell edge.
pub(crate) const CELL: usize = 8;
/// Orientation bins per cell (unsigned gradients, 0..180 degrees).
pub(crate) const BINS: usize = 9;

/// The HoG descriptor of one image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HogDescriptor {
    /// Cells per row.
    pub cells_x: usize,
    /// Cells per column.
    pub cells_y: usize,
    /// Block-normalized feature vector.
    pub features: Vec<f32>,
}

/// Result of running HoG over a batch of images.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HogOutput {
    /// One descriptor per image, in batch order.
    pub descriptors: Vec<HogDescriptor>,
}

impl HogOutput {
    /// Dimension of each image's feature vector.
    pub fn feature_len(&self) -> usize {
        self.descriptors.first().map_or(0, |d| d.features.len())
    }
}

/// Computes cell histograms for one image.
fn cell_histograms(
    dx: &FloatImage,
    dy: &FloatImage,
    prof: &mut Profiler,
) -> (usize, usize, Vec<f32>) {
    let cells_x = dx.width / CELL;
    let cells_y = dx.height / CELL;
    let mut hist = vec![0f32; cells_x * cells_y * BINS];
    for cy in 0..cells_y {
        for cx in 0..cells_x {
            for py in 0..CELL {
                for px in 0..CELL {
                    let x = cx * CELL + px;
                    let y = cy * CELL + py;
                    let gx = dx.get(x, y);
                    let gy = dy.get(x, y);
                    let mag = (gx * gx + gy * gy).sqrt();
                    // Unsigned orientation in [0, pi).
                    let ang = gy.atan2(gx).rem_euclid(std::f32::consts::PI);
                    let bin_f = ang / std::f32::consts::PI * BINS as f32;
                    let bin = (bin_f as usize).min(BINS - 1);
                    // Linear interpolation between adjacent bins.
                    let frac = bin_f - bin as f32;
                    let next = (bin + 1) % BINS;
                    hist[(cy * cells_x + cx) * BINS + bin] += mag * (1.0 - frac);
                    hist[(cy * cells_x + cx) * BINS + next] += mag * frac;
                }
            }
            let n = (CELL * CELL) as u64;
            prof.read_bytes(8 * n);
            // Per pixel: magnitude (sqrt ~ 10 flops), atan2 (~40 flops),
            // binning and interpolation (~4). Transcendentals are charged at
            // their flop-equivalent cost, which is what makes CPU HoG as
            // expensive as it is in practice.
            prof.count(InstrClass::Fp, 54 * n);
            prof.count(InstrClass::Alu, 3 * n);
            prof.count(InstrClass::Control, CELL as u64);
            prof.write_bytes(4 * BINS as u64);
        }
    }
    (cells_x, cells_y, hist)
}

/// L2-Hys block normalization over 2×2-cell blocks with 1-cell stride.
fn normalize_blocks(cells_x: usize, cells_y: usize, hist: &[f32], prof: &mut Profiler) -> Vec<f32> {
    let mut features = Vec::new();
    if cells_x < 2 || cells_y < 2 {
        return features;
    }
    for by in 0..cells_y - 1 {
        for bx in 0..cells_x - 1 {
            let mut block = [0f32; 4 * BINS];
            for (i, (cy, cx)) in [(by, bx), (by, bx + 1), (by + 1, bx), (by + 1, bx + 1)]
                .iter()
                .enumerate()
            {
                let src = &hist[(cy * cells_x + cx) * BINS..(cy * cells_x + cx + 1) * BINS];
                block[i * BINS..(i + 1) * BINS].copy_from_slice(src);
            }
            // L2 -> clip 0.2 -> L2 (the "Hys" part).
            let norm: f32 = block.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            for v in &mut block {
                *v = (*v / norm).min(0.2);
            }
            let norm2: f32 = block.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-6);
            for v in &mut block {
                *v /= norm2;
            }
            features.extend_from_slice(&block);
            let n = (4 * BINS) as u64;
            prof.read_bytes(4 * n);
            prof.count(InstrClass::Sse, 6 * n);
            prof.write_bytes(4 * n);
            // Block gather/scatter of the four cell histograms.
            prof.count(InstrClass::StringOp, 4);
            prof.count(InstrClass::Control, 4);
        }
    }
    features
}

/// Computes the HoG descriptor of one image.
pub(crate) fn describe(img: &GrayImage, prof: &mut Profiler) -> HogDescriptor {
    let f = FloatImage::from_gray(img, prof);
    let (dx, dy) = ops::gradients(&f, prof);
    let (cells_x, cells_y, hist) = cell_histograms(&dx, &dy, prof);
    let features = normalize_blocks(cells_x, cells_y, &hist, prof);
    HogDescriptor {
        cells_x,
        cells_y,
        features,
    }
}

/// Runs HoG over every image in a batch.
pub(crate) fn run_batch(images: &[GrayImage], prof: &mut Profiler) -> HogOutput {
    let descriptors = images.iter().map(|img| describe(img, prof)).collect();
    prof.count(InstrClass::Stack, 4 * images.len() as u64);
    HogOutput { descriptors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::image::ImageSynthesizer;

    #[test]
    fn descriptor_has_expected_dimensions() {
        let img = ImageSynthesizer::new(1).synthesize(); // 64x64 -> 8x8 cells
        let mut prof = Profiler::new();
        let d = describe(&img, &mut prof);
        assert_eq!((d.cells_x, d.cells_y), (8, 8));
        assert_eq!(d.features.len(), 7 * 7 * 4 * BINS);
    }

    #[test]
    fn blocks_are_unit_norm() {
        let img = ImageSynthesizer::new(2).synthesize();
        let mut prof = Profiler::new();
        let d = describe(&img, &mut prof);
        for block in d.features.chunks(4 * BINS) {
            let n: f32 = block.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 0.01 || n < 1e-4, "block norm {n}");
        }
    }

    #[test]
    fn vertical_edge_dominates_one_bin() {
        // Vertical edge -> horizontal gradient -> orientation bin near 0.
        let img = GrayImage::from_fn(32, 32, |x, _| if x < 16 { 0 } else { 200 });
        let mut prof = Profiler::new();
        let f = FloatImage::from_gray(&img, &mut prof);
        let (dx, dy) = ops::gradients(&f, &mut prof);
        let (cx, _cy, hist) = cell_histograms(&dx, &dy, &mut prof);
        // Cell containing the edge (x ~ 16 -> cell column 1 or 2).
        let cell = &hist[(cx + 1) * BINS..(cx + 2) * BINS];
        let max_bin = cell
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(max_bin, 0, "horizontal gradient maps to bin 0: {cell:?}");
    }

    #[test]
    fn flat_image_gives_zero_features() {
        let img = GrayImage::from_fn(32, 32, |_, _| 120);
        let mut prof = Profiler::new();
        let d = describe(&img, &mut prof);
        assert!(d.features.iter().all(|&v| v.abs() < 1e-3));
    }

    #[test]
    fn batch_output_ordered() {
        let batch = ImageSynthesizer::new(3).synthesize_batch(3);
        let mut prof = Profiler::new();
        let out = run_batch(&batch, &mut prof);
        assert_eq!(out.descriptors.len(), 3);
        assert!(out.feature_len() > 0);
    }
}
