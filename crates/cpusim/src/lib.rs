//! Analytical multicore CPU timing model for the `bagpred` workspace.
//!
//! The ISPASS 2020 paper measures its CPU-side features on a 2-socket Intel
//! Xeon Gold 5118 server (Table III): per-benchmark execution time at the
//! best thread count, and per-task IPC alone vs. co-run (via Linux perf),
//! from which the *fairness* feature (Eq. 2) is computed. This crate
//! reproduces that measurement capability as an analytical timing model in
//! the tradition of first-order processor models: issue-width-limited
//! compute, an LLC capacity model, memory-bandwidth saturation, SMT yield,
//! and Amdahl fork-join scaling.
//!
//! The predictor consumes only the model's *scalar outputs* — times and IPC
//! ratios — so the substitution preserves exactly the signals the paper's
//! pipeline feeds to its machine-learning stage.
//!
//! # Example
//!
//! ```
//! use bagpred_cpusim::{CpuConfig, CpuSimulator};
//! use bagpred_workloads::{Benchmark, Workload};
//!
//! let sim = CpuSimulator::new(CpuConfig::xeon_gold_5118());
//! let profile = Workload::new(Benchmark::Hog, 20).profile();
//! let exec = sim.simulate_best(&profile);
//! assert!(exec.time_s > 0.0);
//! assert!(exec.ipc > 0.0);
//!
//! // Co-running two instances slows each down; fairness is in (0, 1].
//! let shared = sim.simulate_shared(&[profile.clone(), profile.clone()]);
//! assert!(shared[0].time_s >= exec.time_s);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod fairness;
mod model;

pub use config::CpuConfig;
pub use fairness::fairness;
pub use model::{CpuExecution, CpuSimulator};
