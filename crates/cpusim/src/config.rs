//! CPU machine configuration.

use serde::{Deserialize, Serialize};

/// Configuration of the modelled multicore server.
///
/// Defaults ([`CpuConfig::xeon_gold_5118`]) follow the paper's Table III:
/// two Intel Xeon Gold 5118 sockets, 24 physical cores, hyper-threading (48
/// logical cores), 2.3 GHz, 128 GB of main memory.
///
/// # Example
///
/// ```
/// use bagpred_cpusim::CpuConfig;
///
/// let config = CpuConfig::xeon_gold_5118();
/// assert_eq!(config.physical_cores(), 24);
/// assert_eq!(config.logical_cores(), 48);
///
/// let small = CpuConfig::builder().sockets(1).cores_per_socket(4).build();
/// assert_eq!(small.physical_cores(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuConfig {
    sockets: u32,
    cores_per_socket: u32,
    smt_ways: u32,
    freq_ghz: f64,
    llc_bytes_per_socket: u64,
    dram_bw_bytes_per_s: f64,
    issue_width: f64,
    mem_latency_cycles: f64,
    memory_level_parallelism: f64,
}

impl CpuConfig {
    /// The paper's baseline server (Table III).
    pub fn xeon_gold_5118() -> Self {
        Self::builder().build()
    }

    /// Starts building a custom configuration.
    pub fn builder() -> CpuConfigBuilder {
        CpuConfigBuilder::default()
    }

    /// Number of sockets.
    pub fn sockets(&self) -> u32 {
        self.sockets
    }

    /// Physical cores across all sockets.
    pub fn physical_cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Logical cores (physical × SMT ways).
    pub fn logical_cores(&self) -> u32 {
        self.physical_cores() * self.smt_ways
    }

    /// SMT ways per physical core.
    pub fn smt_ways(&self) -> u32 {
        self.smt_ways
    }

    /// Core frequency in GHz.
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Core frequency in Hz.
    pub fn freq_hz(&self) -> f64 {
        self.freq_ghz * 1e9
    }

    /// Total last-level cache capacity in bytes.
    pub fn llc_bytes(&self) -> u64 {
        self.llc_bytes_per_socket * self.sockets as u64
    }

    /// Aggregate DRAM bandwidth in bytes per second.
    pub fn dram_bandwidth(&self) -> f64 {
        self.dram_bw_bytes_per_s
    }

    /// Peak sustained issue width (instructions per cycle per core).
    pub fn issue_width(&self) -> f64 {
        self.issue_width
    }

    /// Average DRAM access latency in core cycles.
    pub fn mem_latency_cycles(&self) -> f64 {
        self.mem_latency_cycles
    }

    /// Effective memory-level parallelism the out-of-order core extracts
    /// (overlapped outstanding misses).
    pub fn memory_level_parallelism(&self) -> f64 {
        self.memory_level_parallelism
    }
}

/// Builder for [`CpuConfig`]; see [`CpuConfig::builder`].
#[derive(Debug, Clone)]
pub struct CpuConfigBuilder {
    config: CpuConfig,
}

impl Default for CpuConfigBuilder {
    fn default() -> Self {
        Self {
            config: CpuConfig {
                sockets: 2,
                cores_per_socket: 12,
                smt_ways: 2,
                freq_ghz: 2.3,
                llc_bytes_per_socket: 16_896 * 1024, // 16.5 MB Skylake-SP LLC
                dram_bw_bytes_per_s: 115e9,          // 6 ch DDR4-2400 x 2 sockets
                issue_width: 4.0,
                mem_latency_cycles: 220.0,
                memory_level_parallelism: 4.0,
            },
        }
    }
}

impl CpuConfigBuilder {
    /// Sets the socket count.
    ///
    /// # Panics
    ///
    /// Panics if `sockets` is zero.
    pub fn sockets(mut self, sockets: u32) -> Self {
        assert!(sockets > 0, "sockets must be positive");
        self.config.sockets = sockets;
        self
    }

    /// Sets the cores per socket.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn cores_per_socket(mut self, cores: u32) -> Self {
        assert!(cores > 0, "cores per socket must be positive");
        self.config.cores_per_socket = cores;
        self
    }

    /// Sets the SMT ways per core (1 disables hyper-threading).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero.
    pub fn smt_ways(mut self, ways: u32) -> Self {
        assert!(ways > 0, "smt ways must be positive");
        self.config.smt_ways = ways;
        self
    }

    /// Sets the core frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive and finite.
    pub fn freq_ghz(mut self, ghz: f64) -> Self {
        assert!(ghz > 0.0 && ghz.is_finite(), "frequency must be positive");
        self.config.freq_ghz = ghz;
        self
    }

    /// Sets the per-socket LLC capacity in bytes.
    pub fn llc_bytes_per_socket(mut self, bytes: u64) -> Self {
        self.config.llc_bytes_per_socket = bytes;
        self
    }

    /// Sets the aggregate DRAM bandwidth in bytes per second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_s` is not positive and finite.
    pub fn dram_bandwidth(mut self, bytes_per_s: f64) -> Self {
        assert!(
            bytes_per_s > 0.0 && bytes_per_s.is_finite(),
            "bandwidth must be positive"
        );
        self.config.dram_bw_bytes_per_s = bytes_per_s;
        self
    }

    /// Sets the sustained issue width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not positive and finite.
    pub fn issue_width(mut self, width: f64) -> Self {
        assert!(
            width > 0.0 && width.is_finite(),
            "issue width must be positive"
        );
        self.config.issue_width = width;
        self
    }

    /// Sets the DRAM latency in cycles.
    pub fn mem_latency_cycles(mut self, cycles: f64) -> Self {
        assert!(
            cycles > 0.0 && cycles.is_finite(),
            "latency must be positive"
        );
        self.config.mem_latency_cycles = cycles;
        self
    }

    /// Sets the effective memory-level parallelism.
    pub fn memory_level_parallelism(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0 && mlp.is_finite(), "MLP must be at least 1");
        self.config.memory_level_parallelism = mlp;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> CpuConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_iii() {
        let c = CpuConfig::xeon_gold_5118();
        assert_eq!(c.sockets(), 2);
        assert_eq!(c.physical_cores(), 24);
        assert_eq!(c.logical_cores(), 48);
        assert!((c.freq_ghz() - 2.3).abs() < 1e-12);
    }

    #[test]
    fn builder_overrides() {
        let c = CpuConfig::builder()
            .sockets(1)
            .cores_per_socket(8)
            .smt_ways(1)
            .freq_ghz(3.0)
            .build();
        assert_eq!(c.logical_cores(), 8);
        assert!((c.freq_hz() - 3.0e9).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "sockets must be positive")]
    fn zero_sockets_rejected() {
        CpuConfig::builder().sockets(0);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn nan_frequency_rejected() {
        CpuConfig::builder().freq_ghz(f64::NAN);
    }

    #[test]
    fn llc_aggregates_sockets() {
        let c = CpuConfig::xeon_gold_5118();
        assert_eq!(c.llc_bytes(), 2 * 16_896 * 1024);
    }
}
