//! The fairness metric (the paper's Eq. 2).

use crate::model::{CpuExecution, CpuSimulator};
use bagpred_trace::KernelProfile;

/// Computes the fairness of a bag of tasks on the multicore server.
///
/// The paper's Eq. 2 defines fairness over the per-task slowdowns measured
/// with Linux perf:
///
/// ```text
/// fairness_T = min over (i, j) of (IPC_i^shared / IPC_i^alone)
///                               / (IPC_j^shared / IPC_j^alone)
/// ```
///
/// i.e. the minimum slowdown ratio divided by the maximum across all task
/// pairs, which lies in `(0, 1]`: 1 means every task suffers equally from
/// contention; values near 0 mean one task absorbs nearly all of it.
///
/// # Panics
///
/// Panics if `profiles` is empty.
///
/// # Example
///
/// ```
/// use bagpred_cpusim::{fairness, CpuConfig, CpuSimulator};
/// use bagpred_workloads::{Benchmark, Workload};
///
/// let sim = CpuSimulator::new(CpuConfig::xeon_gold_5118());
/// let a = Workload::new(Benchmark::Hog, 20).profile();
/// let b = Workload::new(Benchmark::Knn, 20).profile();
/// let f = fairness(&sim, &[a, b]);
/// assert!(f > 0.0 && f <= 1.0);
/// ```
pub fn fairness(sim: &CpuSimulator, profiles: &[KernelProfile]) -> f64 {
    assert!(!profiles.is_empty(), "at least one profile is required");
    if profiles.len() == 1 {
        return 1.0; // a lone task suffers no relative slowdown
    }
    let alone: Vec<CpuExecution> = profiles.iter().map(|p| sim.simulate_best(p)).collect();
    let shared = sim.simulate_shared(profiles);

    let slowdowns: Vec<f64> = alone
        .iter()
        .zip(shared.iter())
        .map(|(a, s)| s.ipc / a.ipc)
        .collect();
    let min = slowdowns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = slowdowns.iter().cloned().fold(0.0f64, f64::max);
    if max <= 0.0 {
        return 1.0;
    }
    (min / max).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CpuConfig;
    use bagpred_trace::{InstrClass, Profiler};
    use bagpred_workloads::{Benchmark, Workload};

    fn sim() -> CpuSimulator {
        CpuSimulator::new(CpuConfig::xeon_gold_5118())
    }

    fn profile(ws: u64, mem_heavy: bool) -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 1_000_000);
        if mem_heavy {
            p.read_bytes(400_000_000);
        } else {
            p.count(InstrClass::Fp, 9_000_000);
            p.read_bytes(1_000_000);
        }
        KernelProfile::builder(p)
            .working_set_bytes(ws)
            .parallel_width(1 << 20)
            .parallel_fraction(0.95)
            .build()
            .unwrap()
    }

    #[test]
    fn single_task_is_perfectly_fair() {
        assert_eq!(fairness(&sim(), &[profile(1 << 20, false)]), 1.0);
    }

    #[test]
    fn homogeneous_pairs_are_fair() {
        let p = profile(1 << 24, true);
        let f = fairness(&sim(), &[p.clone(), p]);
        assert!(f > 0.99, "identical tasks slow down identically: {f}");
    }

    #[test]
    fn asymmetric_pairs_are_less_fair() {
        // A cache-sensitive task (working set that fits the LLC alone but
        // not under sharing) suffers from a cache-polluting streaming
        // partner far more than the polluter suffers from it.
        let victim = profile(20 << 20, true); // 20 MB: fits 33 MB LLC alone
        let polluter = profile(1 << 28, true); // 256 MB streaming
        let f = fairness(&sim(), &[victim, polluter]);
        assert!(f < 0.95, "asymmetric contention must show up: {f}");
        assert!(f > 0.0);
    }

    #[test]
    fn fairness_in_unit_interval_for_all_real_pairs() {
        let s = sim();
        for a in Benchmark::ALL {
            for b in Benchmark::ALL {
                let pa = Workload::new(a, 4).profile();
                let pb = Workload::new(b, 4).profile();
                let f = fairness(&s, &[pa, pb]);
                assert!(f > 0.0 && f <= 1.0, "{a}+{b}: fairness {f}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_bag_rejected() {
        fairness(&sim(), &[]);
    }
}
