//! The multicore timing model.

use crate::config::CpuConfig;
use bagpred_trace::{InstrClass, KernelProfile};
use serde::{Deserialize, Serialize};

/// Result of simulating one application instance on the CPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuExecution {
    /// Wall-clock execution time in seconds.
    pub time_s: f64,
    /// Machine-aggregate IPC of this application: retired instructions per
    /// core clock of wall time (the quantity `perf stat` ratios report).
    pub ipc: f64,
    /// Thread count the run used.
    pub threads: u32,
    /// Modelled LLC miss rate over memory accesses.
    pub llc_miss_rate: f64,
    /// Fraction of time the run was DRAM-bandwidth bound.
    pub bandwidth_bound: f64,
}

/// Resource share granted to one instance in a co-run.
#[derive(Debug, Clone, Copy)]
struct ResourceShare {
    logical_cores: u32,
    llc_bytes: f64,
    bandwidth: f64,
    /// Contention inflation on cache misses from co-runners (1.0 = none).
    interference: f64,
    /// Whole-run slowdown from cache-victim contention (1.0 = none): apps
    /// whose working set is comparable to the LLC lose resident lines to
    /// polluting partners. The same mechanism exists on the GPU's shared
    /// L2, which is why the CPU-measured fairness transfers (the paper's
    /// central hypothesis for the feature).
    victim_slowdown: f64,
}

/// Analytical multicore CPU simulator.
///
/// See the [crate docs](crate) for the modelling rationale and an example.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuSimulator {
    config: CpuConfig,
}

/// Per-class sustained issue cost in cycles (Skylake-like port model).
fn class_cost(class: InstrClass) -> f64 {
    match class {
        InstrClass::Sse => 0.35,
        InstrClass::Alu => 0.25,
        InstrClass::Load => 0.5,
        InstrClass::Store => 0.5,
        InstrClass::Fp => 0.5,
        InstrClass::Stack => 0.35,
        InstrClass::StringOp => 1.5,
        InstrClass::Shift => 0.3,
        InstrClass::Control => 0.75,
    }
}

impl CpuSimulator {
    /// Creates a simulator over a machine configuration.
    pub fn new(config: CpuConfig) -> Self {
        Self { config }
    }

    /// The machine configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Simulates one instance running alone with a fixed thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn simulate(&self, profile: &KernelProfile, threads: u32) -> CpuExecution {
        assert!(threads > 0, "thread count must be positive");
        let share = ResourceShare {
            logical_cores: self.config.logical_cores(),
            llc_bytes: self.config.llc_bytes() as f64,
            bandwidth: self.config.dram_bandwidth(),
            interference: 1.0,
            victim_slowdown: 1.0,
        };
        self.simulate_with_share(profile, threads, share)
    }

    /// Simulates one instance alone at its best thread count, the paper's
    /// methodology ("for each application we choose that configuration that
    /// has the least execution time").
    pub fn simulate_best(&self, profile: &KernelProfile) -> CpuExecution {
        self.best_over_threads(profile, self.config.logical_cores(), |t| {
            self.simulate(profile, t)
        })
    }

    /// Simulates `profiles.len()` instances co-running, returning one
    /// execution per instance (in input order).
    ///
    /// Resources are partitioned evenly — the OS spreads instances across
    /// cores, and LLC/bandwidth divide by sharing — and co-runners add
    /// conflict-miss interference on top of their capacity share.
    ///
    /// # Panics
    ///
    /// Panics if `profiles` is empty.
    pub fn simulate_shared(&self, profiles: &[KernelProfile]) -> Vec<CpuExecution> {
        assert!(!profiles.is_empty(), "at least one profile is required");
        let n = profiles.len() as f64;
        let llc = self.config.llc_bytes() as f64;

        // Shared-resource arbitration is demand-proportional: the OS splits
        // cores fairly, but LLC occupancy and memory bandwidth follow each
        // task's appetite. This is what makes co-run slowdowns *asymmetric*
        // — the raw signal behind the paper's fairness feature (Eq. 2).
        let ws = |p: &KernelProfile| p.working_set_bytes() as f64 + 1.0;
        let bytes = |p: &KernelProfile| p.bytes_total() as f64 + 1.0;
        let total_ws: f64 = profiles.iter().map(ws).sum();
        let total_bytes: f64 = profiles.iter().map(bytes).sum();

        profiles
            .iter()
            .map(|p| {
                let partner_ws = total_ws - ws(p);
                // Victim sensitivity peaks when the working set is about the
                // LLC size (see the field docs).
                let sensitivity = (ws(p) / llc).min(llc / ws(p)).clamp(0.0, 1.0);
                let share = ResourceShare {
                    logical_cores: (self.config.logical_cores() as f64 / n).floor().max(1.0) as u32,
                    llc_bytes: llc * (ws(p) / total_ws).max(1.0 / (2.0 * n)),
                    bandwidth: self.config.dram_bandwidth()
                        * (bytes(p) / total_bytes).max(1.0 / (2.0 * n)),
                    // Conflict misses from co-runners' cache pressure.
                    // Multicore contention management keeps this mild — the
                    // paper's Fig. 1 vs Fig. 2 asymmetry.
                    interference: 1.0 + 0.25 * (partner_ws / llc).min(2.0),
                    victim_slowdown: 1.0 + 0.30 * (partner_ws / llc).min(2.0) * sensitivity,
                };
                self.best_over_threads(p, share.logical_cores, |t| {
                    self.simulate_with_share(p, t, share)
                })
            })
            .collect()
    }

    /// Picks the fastest configuration over a ladder of thread counts.
    fn best_over_threads(
        &self,
        profile: &KernelProfile,
        max_threads: u32,
        run: impl Fn(u32) -> CpuExecution,
    ) -> CpuExecution {
        let mut best: Option<CpuExecution> = None;
        let mut t = 1u32;
        loop {
            let exec = run(t.min(max_threads));
            let better = best.as_ref().is_none_or(|b| exec.time_s < b.time_s);
            if better {
                best = Some(exec);
            }
            if t >= max_threads || t as u64 >= profile.parallel_width() {
                break;
            }
            t = (t * 2).min(max_threads);
        }
        best.expect("at least one configuration was simulated")
    }

    fn simulate_with_share(
        &self,
        profile: &KernelProfile,
        threads: u32,
        share: ResourceShare,
    ) -> CpuExecution {
        let cfg = &self.config;
        let threads = threads.min(share.logical_cores).max(1);

        // --- Execution cycles from the instruction mix. ---
        let instr = profile.total_instructions() as f64;
        let mix = profile.mix();
        let cpi_exe: f64 = InstrClass::ALL
            .iter()
            .map(|&c| mix.percent(c) / 100.0 * class_cost(c))
            .sum::<f64>()
            .max(1.0 / cfg.issue_width());
        let exe_cycles = instr * cpi_exe;

        // --- LLC capacity model. ---
        let ws = profile.working_set_bytes() as f64;
        let llc_miss_rate = if ws <= share.llc_bytes {
            0.002 // cold misses only
        } else {
            // The fraction of the working set that cannot stay resident,
            // discounted by temporal reuse the caches still capture.
            (0.002 + 0.5 * (1.0 - share.llc_bytes / ws)).min(1.0)
        };
        let llc_miss_rate = (llc_miss_rate * share.interference).min(1.0);

        let mem_accesses =
            (profile.class_count(InstrClass::Load) + profile.class_count(InstrClass::Store)) as f64;
        let stall_cycles = mem_accesses * llc_miss_rate * cfg.mem_latency_cycles()
            / cfg.memory_level_parallelism();

        let total_cycles = exe_cycles + stall_cycles;

        // --- Amdahl fork-join over the chosen thread count. ---
        let width = profile.parallel_width() as f64;
        let usable_threads = (threads as f64).min(width);
        let physical_avail = (share.logical_cores as f64 / cfg.smt_ways() as f64).max(1.0);
        let physical = usable_threads.min(physical_avail);
        let smt_extra = (usable_threads - physical).max(0.0);
        // SMT siblings contribute ~30%; synchronization costs grow with
        // thread count.
        let raw_speedup = physical + 0.3 * smt_extra;
        let effective_speedup = raw_speedup / (1.0 + 0.015 * usable_threads);

        let par = profile.parallel_fraction();
        let serial_cycles = total_cycles * (1.0 - par);
        let parallel_cycles = total_cycles * par;

        let freq = cfg.freq_hz();
        let serial_time = serial_cycles / freq;
        let parallel_compute_time = parallel_cycles / (freq * effective_speedup);

        // --- DRAM bandwidth bound on the parallel phase. ---
        let dram_traffic = profile.bytes_total() as f64 * llc_miss_rate.max(0.002);
        let bandwidth_time = dram_traffic / share.bandwidth;

        let parallel_time = parallel_compute_time.max(bandwidth_time);
        let time_s = (serial_time + parallel_time) * share.victim_slowdown;
        let bandwidth_bound = if parallel_time > 0.0 {
            (bandwidth_time / parallel_time).min(1.0)
        } else {
            0.0
        };

        CpuExecution {
            time_s,
            ipc: instr / (time_s * freq),
            threads: usable_threads.max(1.0) as u32,
            llc_miss_rate,
            bandwidth_bound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_trace::Profiler;
    use bagpred_workloads::{Benchmark, Workload};

    fn sim() -> CpuSimulator {
        CpuSimulator::new(CpuConfig::xeon_gold_5118())
    }

    fn synthetic_profile(parallel_fraction: f64, ws: u64) -> KernelProfile {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 10_000_000);
        p.count(InstrClass::Fp, 5_000_000);
        p.read_bytes(40_000_000);
        p.write_bytes(10_000_000);
        KernelProfile::builder(p)
            .working_set_bytes(ws)
            .parallel_width(1 << 20)
            .parallel_fraction(parallel_fraction)
            .build()
            .unwrap()
    }

    #[test]
    fn more_threads_help_parallel_work() {
        let profile = synthetic_profile(0.99, 1 << 20);
        let t1 = sim().simulate(&profile, 1);
        let t8 = sim().simulate(&profile, 8);
        assert!(
            t8.time_s < t1.time_s / 3.0,
            "8 threads should speed up ~6x+"
        );
    }

    #[test]
    fn serial_work_does_not_scale() {
        let profile = synthetic_profile(0.0, 1 << 20);
        let t1 = sim().simulate(&profile, 1);
        let t8 = sim().simulate(&profile, 8);
        assert!((t8.time_s / t1.time_s - 1.0).abs() < 0.05);
    }

    #[test]
    fn best_picks_a_fast_configuration() {
        let profile = synthetic_profile(0.9, 1 << 20);
        let best = sim().simulate_best(&profile);
        for t in [1u32, 2, 4, 8, 16, 32, 48] {
            assert!(best.time_s <= sim().simulate(&profile, t).time_s + 1e-12);
        }
    }

    #[test]
    fn cache_overflow_slows_execution() {
        let fits = synthetic_profile(0.9, 1 << 20); // 1 MB
        let spills = synthetic_profile(0.9, 1 << 28); // 256 MB >> LLC
        let fast = sim().simulate_best(&fits);
        let slow = sim().simulate_best(&spills);
        assert!(slow.time_s > 1.5 * fast.time_s);
        assert!(slow.llc_miss_rate > fast.llc_miss_rate);
    }

    #[test]
    fn sharing_slows_each_instance() {
        let profile = synthetic_profile(0.95, 1 << 24);
        let alone = sim().simulate_best(&profile);
        let shared = sim().simulate_shared(&[profile.clone(), profile.clone()]);
        assert_eq!(shared.len(), 2);
        for exec in &shared {
            assert!(exec.time_s > alone.time_s);
        }
    }

    #[test]
    fn cpu_aggregate_throughput_is_resilient() {
        // The paper's Fig. 1 insight: multicore contention management keeps
        // aggregate CPU throughput roughly flat under multiprogramming.
        let profile = synthetic_profile(0.95, 1 << 22);
        let alone = sim().simulate_best(&profile);
        let shared = sim().simulate_shared(&[profile.clone(), profile.clone()]);
        let aggregate = 2.0 / shared[0].time_s;
        let solo = 1.0 / alone.time_s;
        assert!(
            aggregate > 0.6 * solo,
            "aggregate {aggregate:.3} vs solo {solo:.3}"
        );
    }

    #[test]
    fn ipc_drops_under_sharing() {
        let profile = synthetic_profile(0.95, 1 << 24);
        let alone = sim().simulate_best(&profile);
        let shared = sim().simulate_shared(&[profile.clone(), profile.clone()]);
        assert!(shared[0].ipc < alone.ipc);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_rejected() {
        sim().simulate(&synthetic_profile(0.5, 1024), 0);
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_shared_rejected() {
        sim().simulate_shared(&[]);
    }

    #[test]
    fn narrow_parallel_width_limits_threads() {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 1_000_000);
        let profile = KernelProfile::builder(p)
            .parallel_width(2)
            .parallel_fraction(0.99)
            .build()
            .unwrap();
        let exec = sim().simulate(&profile, 48);
        assert!(exec.threads <= 2);
    }

    #[test]
    fn real_workloads_have_sane_times() {
        for b in Benchmark::ALL {
            let profile = Workload::new(b, 4).profile();
            let exec = sim().simulate_best(&profile);
            assert!(
                exec.time_s > 1e-9 && exec.time_s < 100.0,
                "{b}: implausible time {}",
                exec.time_s
            );
            assert!(exec.ipc > 0.0 && exec.ipc.is_finite());
        }
    }

    #[test]
    fn time_grows_with_batch_size() {
        for b in [Benchmark::Sift, Benchmark::Svm, Benchmark::FaceDet] {
            let small = sim().simulate_best(&Workload::new(b, 2).profile());
            let large = sim().simulate_best(&Workload::new(b, 8).profile());
            assert!(large.time_s > small.time_s, "{b}");
        }
    }
}
