//! Deterministic change detection for error streams.
//!
//! [`PageHinkley`] implements the Page-Hinkley test, the sequential
//! CUSUM-style detector for an *increase* in the mean of a stream.
//! Fed the absolute-percent-error stream of a model's matched
//! outcomes, it fires when the errors have drifted persistently above
//! their historical mean — the signal a once-accurate predictor is
//! going stale.
//!
//! The math, per sample `x_t`:
//!
//! ```text
//! n      += 1
//! mean   += (x_t - mean) / n                 (running mean)
//! m_t    += x_t - mean - delta               (cumulative deviation)
//! M_t     = min(M_t, m_t)                    (historical minimum)
//! fire when  m_t - M_t > lambda
//! ```
//!
//! `delta` is the per-sample slack (magnitude of mean change to
//! ignore) and `lambda` the detection threshold: larger values make
//! the detector less sensitive but slower to false-alarm. The state is
//! a handful of `f64`s updated sequentially, so identical input
//! sequences fire at exactly the same sample — the fire point is
//! unit-testable and replayable.

/// Sequential Page-Hinkley detector for an upward mean shift.
///
/// Not internally synchronized: updates are order-dependent by
/// definition, so wrap it in a `Mutex` when shared. Once fired the
/// alarm is sticky until [`PageHinkley::reset`].
#[derive(Debug, Clone, PartialEq)]
pub struct PageHinkley {
    delta: f64,
    lambda: f64,
    samples: u64,
    mean: f64,
    cumulative: f64,
    minimum: f64,
    fired: bool,
}

impl PageHinkley {
    /// A fresh detector with per-sample slack `delta` and detection
    /// threshold `lambda` (both in the units of the observed stream —
    /// percent error, for outcome tracking).
    pub fn new(delta: f64, lambda: f64) -> Self {
        Self {
            delta,
            lambda,
            samples: 0,
            mean: 0.0,
            cumulative: 0.0,
            minimum: 0.0,
            fired: false,
        }
    }

    /// Feed one sample. Returns `true` exactly once: on the sample
    /// that first crosses the threshold. After that the alarm stays
    /// latched (see [`PageHinkley::fired`]) but `observe` returns
    /// `false` again, so callers can treat `true` as an edge trigger.
    pub fn observe(&mut self, value: f64) -> bool {
        self.samples += 1;
        self.mean += (value - self.mean) / self.samples as f64;
        self.cumulative += value - self.mean - self.delta;
        self.minimum = self.minimum.min(self.cumulative);
        if !self.fired && self.score() > self.lambda {
            self.fired = true;
            return true;
        }
        false
    }

    /// Current test statistic `m_t - M_t` (0.0 before any samples).
    pub fn score(&self) -> f64 {
        self.cumulative - self.minimum
    }

    /// True once the alarm has fired (sticky until reset).
    pub fn fired(&self) -> bool {
        self.fired
    }

    /// Samples observed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Drop all state (mean, cumulative statistics, alarm), keeping
    /// the configured `delta`/`lambda`.
    pub fn reset(&mut self) {
        self.samples = 0;
        self.mean = 0.0;
        self.cumulative = 0.0;
        self.minimum = 0.0;
        self.fired = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 20 samples at one level, then a step up.
    fn step_stream() -> Vec<f64> {
        let mut xs = vec![10.0; 20];
        xs.extend(std::iter::repeat_n(30.0, 20));
        xs
    }

    #[test]
    fn constant_stream_never_fires() {
        let mut d = PageHinkley::new(0.5, 30.0);
        for _ in 0..10_000 {
            assert!(!d.observe(10.0));
        }
        assert!(!d.fired());
        assert_eq!(d.score(), 0.0);
        assert_eq!(d.samples(), 10_000);
    }

    #[test]
    fn step_change_fires_at_a_deterministic_sample() {
        // With delta=0.5, lambda=30 the 2x step at sample 21 crosses
        // the threshold on sample 22 — pinned, not approximate.
        let mut d = PageHinkley::new(0.5, 30.0);
        let mut fire_point = None;
        for (i, &x) in step_stream().iter().enumerate() {
            if d.observe(x) {
                assert!(fire_point.is_none(), "observe() is an edge trigger");
                fire_point = Some(i + 1);
            }
        }
        assert_eq!(fire_point, Some(22));
        assert!(d.fired(), "alarm is sticky after the edge");
    }

    #[test]
    fn identical_sequences_fire_identically() {
        let mut a = PageHinkley::new(1.0, 50.0);
        let mut b = PageHinkley::new(1.0, 50.0);
        // A deterministic pseudo-noisy stream with a late level shift.
        let stream: Vec<f64> = (0..200)
            .map(|i| {
                let base = if i < 120 { 8.0 } else { 24.0 };
                base + (i % 7) as f64 * 0.25
            })
            .collect();
        let fires_a: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|&(_, &x)| a.observe(x))
            .map(|(i, _)| i)
            .collect();
        let fires_b: Vec<usize> = stream
            .iter()
            .enumerate()
            .filter(|&(_, &x)| b.observe(x))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(fires_a, fires_b);
        assert_eq!(fires_a.len(), 1, "exactly one edge");
        assert_eq!(a, b, "full detector state matches");
    }

    #[test]
    fn reset_rearms_the_detector() {
        let mut d = PageHinkley::new(0.5, 30.0);
        for &x in &step_stream() {
            d.observe(x);
        }
        assert!(d.fired());
        d.reset();
        assert!(!d.fired());
        assert_eq!(d.samples(), 0);
        assert_eq!(d.score(), 0.0);
        // It can fire again on a fresh drifting stream.
        let refired = step_stream().iter().any(|&x| d.observe(x));
        assert!(refired);
    }

    #[test]
    fn downward_shift_does_not_fire() {
        let mut d = PageHinkley::new(0.5, 30.0);
        let mut xs = vec![30.0; 20];
        xs.extend(std::iter::repeat_n(10.0, 100));
        for x in xs {
            assert!(!d.observe(x));
        }
        assert!(!d.fired());
    }
}
