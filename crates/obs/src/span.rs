//! Per-request spans: a [`Trace`] rides along with a request and records
//! how long each pipeline [`Stage`] took; a [`StageSet`] aggregates those
//! durations into one [`LogHistogram`] per stage.

use crate::hist::{HistogramSnapshot, LogHistogram};
use std::time::{Duration, Instant};

/// A pipeline stage a request passes through.
///
/// The serving pipeline marks them in roughly this order; `ReplyWrite`
/// happens after the reply leaves the engine, so it is recorded into the
/// global [`StageSet`] by the server rather than onto the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Wire-line tokenization into a request.
    Parse,
    /// Time between enqueue and a worker draining the job.
    QueueWait,
    /// Admission-control decision (schedule requests).
    Admission,
    /// Feature-cache lookup and (on miss) feature recomputation.
    CacheLookup,
    /// Grouping jobs of one batch by model before inference.
    BatchAssembly,
    /// The `predict_batch` call itself.
    Predict,
    /// Writing the reply back to the client socket.
    ReplyWrite,
    /// The server-side cancel fast path (`cancel id=<req>`), recorded
    /// by the engine like `ReplyWrite`: it runs inline, outside any
    /// queued job's trace.
    Cancel,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Parse,
        Stage::QueueWait,
        Stage::Admission,
        Stage::CacheLookup,
        Stage::BatchAssembly,
        Stage::Predict,
        Stage::ReplyWrite,
        Stage::Cancel,
    ];

    /// Stable snake_case name used in wire replies and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::QueueWait => "queue_wait",
            Stage::Admission => "admission",
            Stage::CacheLookup => "cache_lookup",
            Stage::BatchAssembly => "batch_assembly",
            Stage::Predict => "predict",
            Stage::ReplyWrite => "reply_write",
            Stage::Cancel => "cancel",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Parse => 0,
            Stage::QueueWait => 1,
            Stage::Admission => 2,
            Stage::CacheLookup => 3,
            Stage::BatchAssembly => 4,
            Stage::Predict => 5,
            Stage::ReplyWrite => 6,
            Stage::Cancel => 7,
        }
    }
}

/// Monotonic per-request span recorder.
///
/// Created when a request arrives; each [`Trace::mark`] attributes the
/// time since the previous mark (or creation) to a stage. Stages not
/// touched by a request simply never appear in [`Trace::marks`].
#[derive(Debug, Clone)]
pub struct Trace {
    start: Instant,
    last: Instant,
    marks: Vec<(Stage, Duration)>,
    /// Caller-supplied correlation context (e.g. the `traceparent`-style
    /// field of a binary wire frame). Opaque to the pipeline; surfaces in
    /// slow-request captures so cross-service traces can be stitched.
    context: Option<String>,
}

impl Default for Trace {
    fn default() -> Self {
        Self::new()
    }
}

impl Trace {
    /// Start a trace now.
    pub fn new() -> Self {
        let now = Instant::now();
        Self {
            start: now,
            last: now,
            marks: Vec::with_capacity(Stage::ALL.len()),
            context: None,
        }
    }

    /// Start a trace now, carrying an opaque upstream trace context (the
    /// binary wire protocol threads its per-frame trace-context field in
    /// through here).
    pub fn with_context(context: impl Into<String>) -> Self {
        let mut trace = Self::new();
        trace.context = Some(context.into());
        trace
    }

    /// The upstream trace context, if the request carried one.
    pub fn context(&self) -> Option<&str> {
        self.context.as_deref()
    }

    /// Attribute the time since the previous mark to `stage`.
    pub fn mark(&mut self, stage: Stage) {
        let now = Instant::now();
        self.marks.push((stage, now.duration_since(self.last)));
        self.last = now;
    }

    /// Attribute an externally measured duration to `stage` (used when
    /// one measurement is shared, e.g. a batched `predict_batch` call
    /// covering many requests). Also advances the mark cursor to now.
    pub fn mark_for(&mut self, stage: Stage, elapsed: Duration) {
        self.marks.push((stage, elapsed));
        self.last = Instant::now();
    }

    /// Wall time since the trace started.
    pub fn total(&self) -> Duration {
        self.start.elapsed()
    }

    /// All recorded `(stage, duration)` marks, in mark order.
    pub fn marks(&self) -> &[(Stage, Duration)] {
        &self.marks
    }

    /// Total time attributed to `stage` (None if never marked).
    pub fn duration_of(&self, stage: Stage) -> Option<Duration> {
        let mut total = Duration::ZERO;
        let mut found = false;
        for &(s, d) in &self.marks {
            if s == stage {
                total += d;
                found = true;
            }
        }
        found.then_some(total)
    }
}

/// One [`LogHistogram`] per [`Stage`], recording microseconds.
#[derive(Debug, Default)]
pub struct StageSet {
    hists: [LogHistogram; Stage::ALL.len()],
}

impl StageSet {
    /// An empty stage set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one duration against a stage.
    pub fn record(&self, stage: Stage, elapsed: Duration) {
        self.hists[stage.index()].record_duration(elapsed);
    }

    /// Fold every mark of a finished trace into the per-stage histograms.
    pub fn observe(&self, trace: &Trace) {
        for &(stage, d) in trace.marks() {
            self.hists[stage.index()].record_duration(d);
        }
    }

    /// Histogram for one stage.
    pub fn stage(&self, stage: Stage) -> &LogHistogram {
        &self.hists[stage.index()]
    }

    /// Snapshot every stage, in pipeline order.
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL
            .iter()
            .map(|&s| (s, self.hists[s.index()].snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_attribute_time_in_order_and_sum_close_to_total() {
        let mut trace = Trace::new();
        std::thread::sleep(Duration::from_millis(2));
        trace.mark(Stage::Parse);
        trace.mark(Stage::CacheLookup);
        trace.mark_for(Stage::Predict, Duration::from_micros(1500));
        let marks = trace.marks();
        assert_eq!(marks.len(), 3);
        assert_eq!(marks[0].0, Stage::Parse);
        assert!(marks[0].1 >= Duration::from_millis(2));
        assert_eq!(
            trace.duration_of(Stage::Predict),
            Some(Duration::from_micros(1500))
        );
        assert_eq!(trace.duration_of(Stage::QueueWait), None);
        assert!(trace.total() >= marks[0].1);
    }

    #[test]
    fn repeated_marks_accumulate_per_stage() {
        let mut trace = Trace::new();
        trace.mark_for(Stage::CacheLookup, Duration::from_micros(10));
        trace.mark_for(Stage::CacheLookup, Duration::from_micros(5));
        assert_eq!(
            trace.duration_of(Stage::CacheLookup),
            Some(Duration::from_micros(15))
        );
    }

    #[test]
    fn stage_set_observes_traces_per_stage() {
        let set = StageSet::new();
        let mut trace = Trace::new();
        trace.mark_for(Stage::Parse, Duration::from_micros(3));
        trace.mark_for(Stage::Predict, Duration::from_micros(700));
        set.observe(&trace);
        set.record(Stage::ReplyWrite, Duration::from_micros(9));
        assert_eq!(set.stage(Stage::Parse).count(), 1);
        assert_eq!(set.stage(Stage::Predict).snapshot().sum, 700);
        assert_eq!(set.stage(Stage::ReplyWrite).snapshot().max, 9);
        assert_eq!(set.stage(Stage::QueueWait).count(), 0);
        let all = set.snapshot();
        assert_eq!(all.len(), Stage::ALL.len());
        assert_eq!(all[0].0, Stage::Parse);
    }
}
