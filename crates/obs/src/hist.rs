//! Lock-free log-bucketed histograms.
//!
//! Values (microseconds by convention) land in power-of-2 buckets:
//! bucket 0 holds the value `0`, bucket `i` (1..=63) holds the range
//! `[2^(i-1), 2^i - 1]`, and bucket 64 holds everything from `2^63` up.
//! Recording is four relaxed atomic RMW operations (count, sum, bucket,
//! and a `fetch_min`/`fetch_max` pair), so concurrent writers never
//! contend on a lock and never lose samples.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit position of `u64`.
pub const BUCKETS: usize = 65;

/// Bucket index for a value: 0 for 0, otherwise `64 - leading_zeros`,
/// i.e. one plus the position of the highest set bit.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    64 - value.leading_zeros() as usize
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last).
#[inline]
pub fn bucket_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        64.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A lock-free histogram with log2 buckets.
///
/// All methods take `&self`; share it via `Arc` (or a field of a shared
/// struct) and record from as many threads as you like.
#[derive(Debug)]
pub struct LogHistogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [(); BUCKETS].map(|_| AtomicU64::new(0)),
        }
    }

    /// Record one sample. Wait-free: four relaxed RMWs, no locks.
    #[inline]
    pub fn record(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a `Duration` as whole microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Number of samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of the histogram state.
    ///
    /// Each field is read with its own relaxed load, so a snapshot taken
    /// while writers are active may be slightly torn (e.g. `count` one
    /// ahead of the bucket array). Every individual field is still a
    /// value the histogram actually passed through, and once writers
    /// stop the snapshot is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Plain-data copy of a [`LogHistogram`] at one point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping add on overflow).
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts; see [`bucket_bound`] for ranges.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile, quantized to log-bucket resolution.
    ///
    /// This is the single definition of percentile semantics for the
    /// whole repo: the q-quantile of n samples is the value at rank
    /// `ceil(q * n)` (1-based, clamped to `[1, n]`) of the sorted
    /// samples — no interpolation. Because the histogram only keeps
    /// power-of-2 buckets, the reported value is the inclusive upper
    /// bound of the bucket containing that rank, clamped to the observed
    /// `[min, max]` so quantization never reports a value outside the
    /// recorded range. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                return bucket_bound(i).clamp(self.min, self.max);
            }
        }
        // Torn snapshot (count ahead of buckets): fall back to max.
        self.max
    }

    /// Element-wise accumulate `other` into `self`.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::Arc;

    /// Straight-line single-threaded reference of the same bucketing.
    struct Reference {
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        buckets: [u64; BUCKETS],
    }

    impl Reference {
        fn new() -> Self {
            Self {
                count: 0,
                sum: 0,
                min: u64::MAX,
                max: 0,
                buckets: [0; BUCKETS],
            }
        }

        fn record(&mut self, v: u64) {
            self.count += 1;
            self.sum = self.sum.wrapping_add(v);
            self.min = self.min.min(v);
            self.max = self.max.max(v);
            let mut idx = 0;
            while bucket_bound(idx) < v {
                idx += 1;
            }
            self.buckets[idx] += 1;
        }
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i, "bound of bucket {i}");
        }
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = LogHistogram::new().snapshot();
        assert!(snap.is_empty());
        assert_eq!((snap.min, snap.max, snap.sum), (0, 0, 0));
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn quantiles_are_nearest_rank_clamped_to_observed_range() {
        let h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 100);
        // Rank 50 falls in bucket [32, 63]; the reported p50 is that
        // bucket's upper bound.
        assert_eq!(snap.quantile(0.50), 63);
        // Ranks 95 and 99 fall in bucket [64, 127], whose bound (127)
        // exceeds the observed max and is clamped to it.
        assert_eq!(snap.quantile(0.95), 100);
        assert_eq!(snap.quantile(0.99), 100);
        assert_eq!(snap.quantile(1.0), 100);
        // Rank clamps to 1 at q=0 and reports the min's bucket.
        assert_eq!(snap.quantile(0.0), 1);
        assert_eq!(snap.mean(), 50.5);
    }

    #[test]
    fn merge_accumulates_counts_and_extrema() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(900);
        b.record(2);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum, 907);
        assert_eq!(merged.min, 2);
        assert_eq!(merged.max, 900);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&merged);
        assert_eq!(empty, merged);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Concurrent writers on the lock-free histogram produce exactly
        /// the bucket counts (and count/sum/min/max) of a serial
        /// reference fed the same values.
        #[test]
        fn concurrent_writers_match_serial_reference(
            values in proptest::collection::vec(any::<u64>(), 1..512),
            threads in 2usize..8,
        ) {
            let hist = Arc::new(LogHistogram::new());
            std::thread::scope(|scope| {
                for chunk in values.chunks(values.len().div_ceil(threads)) {
                    let hist = Arc::clone(&hist);
                    scope.spawn(move || {
                        for &v in chunk {
                            hist.record(v);
                        }
                    });
                }
            });

            let mut reference = Reference::new();
            for &v in &values {
                reference.record(v);
            }

            let snap = hist.snapshot();
            prop_assert_eq!(snap.count, reference.count);
            prop_assert_eq!(snap.sum, reference.sum);
            prop_assert_eq!(snap.min, reference.min);
            prop_assert_eq!(snap.max, reference.max);
            prop_assert_eq!(&snap.buckets[..], &reference.buckets[..]);
        }
    }
}
