//! Prometheus text exposition.
//!
//! [`Exposition`] builds the classic text format: `# HELP`/`# TYPE`
//! comment headers followed by `name{label="value"} sample` lines, with
//! cumulative `_bucket{le="..."}` series plus `_sum`/`_count` for
//! histograms, terminated by a `# EOF` line so line-oriented clients can
//! detect the end of a multi-line reply. [`line_is_valid`] is the
//! matching checker used by integration tests.

use crate::hist::{bucket_bound, HistogramSnapshot};
use std::fmt::Write as _;

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct Exposition {
    body: String,
}

/// Escape a label value per the exposition format (backslash, quote,
/// newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", escape_label(v));
    }
    out.push('}');
}

/// Render a sample value: integers without a fractional part, floats via
/// Rust's shortest-roundtrip `Display`.
fn fmt_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 9.007_199_254_740_992e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

impl Exposition {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Emit `# HELP` and `# TYPE` headers for a metric family.
    pub fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.body, "# HELP {name} {help}");
        let _ = writeln!(self.body, "# TYPE {name} {kind}");
    }

    /// Emit one `name{labels} value` sample.
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.body.push_str(name);
        write_labels(&mut self.body, labels);
        self.body.push(' ');
        self.body.push_str(&fmt_value(value));
        self.body.push('\n');
    }

    /// Emit a histogram family: cumulative `_bucket{le="..."}` series up
    /// to the highest non-empty bucket, an `{le="+Inf"}` bucket, and
    /// `_sum`/`_count` samples, all carrying `labels`.
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        let highest = snap
            .buckets
            .iter()
            .rposition(|&n| n > 0)
            .map(|i| i.min(63))
            .unwrap_or(0);
        let mut cumulative = 0u64;
        for i in 0..=highest {
            cumulative = cumulative.saturating_add(snap.buckets[i]);
            let le = bucket_bound(i).to_string();
            let mut owned = labels.to_vec();
            owned.push(("le", &le));
            self.sample(&format!("{name}_bucket"), &owned, cumulative as f64);
        }
        let mut owned = labels.to_vec();
        owned.push(("le", "+Inf"));
        self.sample(&format!("{name}_bucket"), &owned, snap.count as f64);
        self.sample(&format!("{name}_sum"), labels, snap.sum as f64);
        self.sample(&format!("{name}_count"), labels, snap.count as f64);
    }

    /// Finish the document: body plus a trailing `# EOF` line.
    pub fn render(self) -> String {
        let mut body = self.body;
        body.push_str("# EOF\n");
        body
    }
}

/// True when `line` is a valid exposition line: empty, a `#` comment, or
/// `name{labels} value` where `name` is a valid metric identifier, the
/// optional label block is well-formed, and `value` parses as a float
/// (or `+Inf`/`-Inf`/`NaN`).
pub fn line_is_valid(line: &str) -> bool {
    if line.is_empty() || line.starts_with('#') {
        return true;
    }
    // Split the sample into name[+labels] and value at the last space.
    let Some(space) = line.rfind(' ') else {
        return false;
    };
    let (head, value) = (&line[..space], &line[space + 1..]);
    let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !value_ok {
        return false;
    }
    let (name, labels) = match head.find('{') {
        Some(open) => {
            if !head.ends_with('}') {
                return false;
            }
            (&head[..open], Some(&head[open + 1..head.len() - 1]))
        }
        None => (head, None),
    };
    if name.is_empty()
        || !name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
    {
        return false;
    }
    let Some(labels) = labels else {
        return true;
    };
    // Each label is key="value" with escaped quotes; a simple state walk
    // is enough for validation.
    for pair in split_labels(labels) {
        let Some(eq) = pair.find('=') else {
            return false;
        };
        let (key, quoted) = (&pair[..eq], &pair[eq + 1..]);
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit()))
        {
            return false;
        }
        if quoted.len() < 2 || !quoted.starts_with('"') || !quoted.ends_with('"') {
            return false;
        }
    }
    true
}

/// Split a label block on commas that are outside quoted values.
fn split_labels(labels: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in labels.char_indices() {
        match c {
            '\\' if in_quotes => escaped = !escaped,
            '"' if !escaped => in_quotes = !in_quotes,
            ',' if !in_quotes => {
                parts.push(&labels[start..i]);
                start = i + 1;
                escaped = false;
            }
            _ => escaped = false,
        }
    }
    parts.push(&labels[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;

    #[test]
    fn renders_headers_samples_and_eof() {
        let mut expo = Exposition::new();
        expo.header("demo_total", "counter", "Demo counter.");
        expo.sample("demo_total", &[], 3.0);
        expo.sample("demo_total", &[("model", "pair-tree")], 2.5);
        let text = expo.render();
        assert!(text.contains("# HELP demo_total Demo counter.\n"));
        assert!(text.contains("# TYPE demo_total counter\n"));
        assert!(text.contains("demo_total 3\n"));
        assert!(text.contains("demo_total{model=\"pair-tree\"} 2.5\n"));
        assert!(text.ends_with("# EOF\n"));
        for line in text.lines() {
            assert!(line_is_valid(line), "invalid line: {line}");
        }
    }

    #[test]
    fn histogram_emits_cumulative_buckets_sum_and_count() {
        let h = LogHistogram::new();
        h.record(1);
        h.record(3);
        h.record(3);
        let mut expo = Exposition::new();
        expo.header("lat_us", "histogram", "Latency.");
        expo.histogram("lat_us", &[("model", "m")], &h.snapshot());
        let text = expo.render();
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"1\"} 1\n"));
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"3\"} 3\n"));
        assert!(text.contains("lat_us_bucket{model=\"m\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("lat_us_sum{model=\"m\"} 7\n"));
        assert!(text.contains("lat_us_count{model=\"m\"} 3\n"));
        for line in text.lines() {
            assert!(line_is_valid(line), "invalid line: {line}");
        }
    }

    #[test]
    fn label_values_are_escaped() {
        let mut expo = Exposition::new();
        expo.sample("m", &[("k", "a\"b\\c\nd")], 1.0);
        let text = expo.render();
        assert!(text.contains("m{k=\"a\\\"b\\\\c\\nd\"} 1\n"));
        for line in text.lines() {
            assert!(line_is_valid(line), "invalid line: {line}");
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "no_value",
            "name value",
            "1name 2",
            "name{unclosed 3",
            "name{k=unquoted} 3",
            "name{=\"v\"} 3",
            "name{k=\"v\"} notanumber",
        ] {
            assert!(!line_is_valid(bad), "should reject: {bad}");
        }
        for good in ["", "# anything", "a_b:c{x=\"1\",y=\"2\"} 1e-9", "up +Inf"] {
            assert!(line_is_valid(good), "should accept: {good}");
        }
    }
}
