//! Bounded ring event log with slow-request capture.
//!
//! The serving engine records a [`SlowEvent`] for every request whose
//! end-to-end latency exceeds the configured threshold. The ring keeps
//! only the most recent `capacity` events (oldest evicted first), so the
//! log is bounded no matter how unhealthy the service gets.

use crate::span::{Stage, Trace};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A captured slow request: its span breakdown plus a short summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowEvent {
    /// Monotonic sequence number (1-based, never reused).
    pub seq: u64,
    /// One-line description of the request (e.g. `predict SIFT@20+KNN@40`).
    pub summary: String,
    /// End-to-end latency.
    pub total: Duration,
    /// Per-stage durations, in mark order.
    pub stages: Vec<(Stage, Duration)>,
}

/// Bounded ring of [`SlowEvent`]s.
///
/// `record` takes a short mutex critical section (push + pop-front);
/// this is off the hot path — it only runs for requests already slower
/// than the threshold.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    seq: AtomicU64,
    dropped: AtomicU64,
    events: Mutex<VecDeque<SlowEvent>>,
}

impl EventLog {
    /// A ring holding at most `capacity` events (capacity 0 disables
    /// capture entirely).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            events: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded (including ones since evicted).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events lost to ring saturation: captures overwritten by a newer
    /// event plus captures refused outright because capacity is 0. A
    /// non-zero value means `dump` is showing a truncated history.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Capture a finished trace. Returns the event's sequence number,
    /// or `None` when capture is disabled (capacity 0).
    pub fn record(&self, summary: String, trace: &Trace, total: Duration) -> Option<u64> {
        if self.capacity == 0 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let event = SlowEvent {
            seq,
            summary,
            total,
            stages: trace.marks().to_vec(),
        };
        let mut events = self.events.lock().expect("event log poisoned");
        if events.len() == self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
        Some(seq)
    }

    /// Retained events, oldest first.
    pub fn dump(&self) -> Vec<SlowEvent> {
        self.events
            .lock()
            .expect("event log poisoned")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_with(stage: Stage, us: u64) -> Trace {
        let mut t = Trace::new();
        t.mark_for(stage, Duration::from_micros(us));
        t
    }

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence_numbers() {
        let log = EventLog::new(2);
        for i in 0..4u64 {
            let t = trace_with(Stage::Predict, i);
            let seq = log
                .record(format!("req {i}"), &t, Duration::from_micros(i))
                .expect("capture enabled");
            assert_eq!(seq, i + 1);
        }
        assert_eq!(log.recorded(), 4);
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 2, "two oldest captures were overwritten");
        let dump = log.dump();
        assert_eq!(dump[0].seq, 3);
        assert_eq!(dump[0].summary, "req 2");
        assert_eq!(dump[1].seq, 4);
        assert_eq!(dump[1].stages.len(), 1);
        assert_eq!(
            dump[1].stages[0],
            (Stage::Predict, Duration::from_micros(3))
        );
    }

    #[test]
    fn zero_capacity_disables_capture() {
        let log = EventLog::new(0);
        let t = trace_with(Stage::Parse, 1);
        assert_eq!(log.record("x".into(), &t, Duration::ZERO), None);
        assert_eq!(log.recorded(), 0);
        assert_eq!(log.dropped(), 1, "refused captures count as dropped");
        assert!(log.is_empty());
    }
}
