//! Observability primitives shared by the online serving stack and the
//! offline bench/LOOCV harness.
//!
//! The crate is deliberately std-only and dependency-free so it can sit
//! below every other crate in the workspace:
//!
//! - [`LogHistogram`] — a lock-free latency histogram with power-of-2
//!   buckets over microseconds. Recording is a handful of relaxed atomic
//!   adds, so it is safe to call from every worker thread on the hot
//!   path. [`HistogramSnapshot::quantile`] is the *one* place that
//!   defines the nearest-rank percentile semantics used across the repo.
//! - [`Stage`], [`Trace`], [`StageSet`] — per-request spans. A `Trace`
//!   rides along with a request and records how long each pipeline stage
//!   took (parse, queue wait, admission, cache lookup, batch assembly,
//!   predict, reply write); a `StageSet` aggregates those durations into
//!   one histogram per stage.
//! - [`EventLog`] / [`SlowEvent`] — a bounded ring of slow-request
//!   captures: requests whose end-to-end latency exceeds a threshold
//!   keep their full span breakdown for later dumping.
//! - [`ResidualWindow`] — online prediction-quality tracking: joins a
//!   served prediction with the actual runtime later reported for it
//!   and maintains cumulative/EWMA MAPE, signed bias, and log2-bucketed
//!   residual and calibration-ratio histograms.
//! - [`PageHinkley`] — a deterministic sequential change detector for
//!   an upward mean shift in an error stream; its fire point is exact
//!   and replayable, so drift alarms are unit-testable.
//! - [`Exposition`] — a Prometheus-text builder (`# HELP`/`# TYPE`
//!   headers, `name{label="v"} value` samples, cumulative `_bucket`
//!   series for histograms) plus [`expo::line_is_valid`] for tests that
//!   want to assert the output parses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod drift;
pub mod expo;
pub mod hist;
pub mod ring;
pub mod rolling;
pub mod span;

pub use drift::PageHinkley;
pub use expo::Exposition;
pub use hist::{HistogramSnapshot, LogHistogram, BUCKETS};
pub use ring::{EventLog, SlowEvent};
pub use rolling::{ResidualSnapshot, ResidualWindow, CALIBRATION_SCALE};
pub use span::{Stage, StageSet, Trace};
