//! Online prediction-quality tracking: rolling residual statistics.
//!
//! A [`ResidualWindow`] joins a served prediction with the *actual*
//! runtime later reported for it and maintains, without locks on the
//! record path:
//!
//! - a cumulative **online MAPE** (mean absolute percent error, exact
//!   up to milli-percent quantization of each sample),
//! - an **EWMA MAPE** — an exponentially-weighted window over the same
//!   percent-error stream, so recent accuracy dominates,
//! - a **signed bias** (mean of `predicted - actual` in microseconds:
//!   positive means the model over-predicts),
//! - a log2-bucketed **residual histogram** (`|predicted - actual|` µs),
//! - a log2-bucketed **calibration histogram** of the ratio
//!   `predicted / actual`, scaled by [`CALIBRATION_SCALE`] so a
//!   perfectly calibrated prediction lands exactly on
//!   `CALIBRATION_SCALE` — buckets below it are under-predictions,
//!   buckets above it over-predictions.
//!
//! Everything except the EWMA is a relaxed atomic add, so concurrent
//! writers never lose samples and the aggregate statistics are
//! order-independent (the property test below pins this against a
//! serial reference). The EWMA uses a small CAS loop over `f64` bits;
//! its value is order-*dependent* by definition but always a convex
//! combination of observed errors.

use crate::hist::{HistogramSnapshot, LogHistogram};
use std::sync::atomic::{AtomicU64, Ordering};

/// Fixed-point scale of the calibration ratio: `predicted / actual`
/// is recorded as `predicted * CALIBRATION_SCALE / actual`, so a value
/// of exactly `CALIBRATION_SCALE` means a perfectly calibrated
/// prediction.
pub const CALIBRATION_SCALE: u64 = 1024;

/// Default EWMA smoothing factor: each new sample contributes 10%.
pub const DEFAULT_EWMA_ALPHA: f64 = 0.1;

/// Bit pattern marking the EWMA cell as "no samples yet". This is a
/// quiet-NaN payload no finite IEEE-754 computation can produce, so it
/// can never collide with a real EWMA value.
const EWMA_UNSET: u64 = u64::MAX;

/// Lock-friendly rolling tracker of prediction residuals.
///
/// All methods take `&self`; share it via `Arc` and record matched
/// (prediction, outcome) pairs from any thread.
#[derive(Debug)]
pub struct ResidualWindow {
    alpha: f64,
    matched: AtomicU64,
    /// Sum of absolute percent errors in milli-percent (1 unit =
    /// 0.001%), so the cumulative MAPE is exact integer arithmetic.
    ape_milli_sum: AtomicU64,
    /// Sum of `predicted - actual` over samples where predicted ≥ actual.
    over_us: AtomicU64,
    /// Sum of `actual - predicted` over samples where actual > predicted.
    under_us: AtomicU64,
    /// EWMA of the percent-error stream, stored as `f64` bits.
    ewma_bits: AtomicU64,
    residual: LogHistogram,
    calibration: LogHistogram,
}

impl Default for ResidualWindow {
    fn default() -> Self {
        Self::new()
    }
}

impl ResidualWindow {
    /// An empty tracker with [`DEFAULT_EWMA_ALPHA`].
    pub fn new() -> Self {
        Self::with_alpha(DEFAULT_EWMA_ALPHA)
    }

    /// An empty tracker with an explicit EWMA smoothing factor in
    /// `(0, 1]` (clamped).
    pub fn with_alpha(alpha: f64) -> Self {
        Self {
            alpha: alpha.clamp(f64::MIN_POSITIVE, 1.0),
            matched: AtomicU64::new(0),
            ape_milli_sum: AtomicU64::new(0),
            over_us: AtomicU64::new(0),
            under_us: AtomicU64::new(0),
            ewma_bits: AtomicU64::new(EWMA_UNSET),
            residual: LogHistogram::new(),
            calibration: LogHistogram::new(),
        }
    }

    /// Record one joined (prediction, outcome) pair, both in whole
    /// microseconds, and return the sample's absolute percent error —
    /// the value a change detector should be fed.
    ///
    /// An actual of 0 µs is clamped to 1 µs so the percent error stays
    /// finite; sub-microsecond work is below this tracker's resolution
    /// anyway.
    pub fn observe(&self, predicted_us: u64, actual_us: u64) -> f64 {
        let actual = actual_us.max(1);
        let residual = predicted_us.abs_diff(actual);
        let ape_percent = residual as f64 / actual as f64 * 100.0;

        self.matched.fetch_add(1, Ordering::Relaxed);
        let milli = (ape_percent * 1000.0).round().min(u64::MAX as f64) as u64;
        self.ape_milli_sum.fetch_add(milli, Ordering::Relaxed);
        if predicted_us >= actual {
            self.over_us.fetch_add(residual, Ordering::Relaxed);
        } else {
            self.under_us.fetch_add(residual, Ordering::Relaxed);
        }
        self.residual.record(residual);
        let ratio = (u128::from(predicted_us) * u128::from(CALIBRATION_SCALE) / u128::from(actual))
            .min(u128::from(u64::MAX)) as u64;
        self.calibration.record(ratio);

        let mut current = self.ewma_bits.load(Ordering::Relaxed);
        loop {
            let next = if current == EWMA_UNSET {
                ape_percent
            } else {
                self.alpha * ape_percent + (1.0 - self.alpha) * f64::from_bits(current)
            };
            match self.ewma_bits.compare_exchange_weak(
                current,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual_bits) => current = actual_bits,
            }
        }
        ape_percent
    }

    /// Number of matched outcomes recorded so far.
    pub fn matched(&self) -> u64 {
        self.matched.load(Ordering::Relaxed)
    }

    /// Cumulative online MAPE in percent (0.0 when empty).
    pub fn online_mape_percent(&self) -> f64 {
        let n = self.matched.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.ape_milli_sum.load(Ordering::Relaxed) as f64 / 1000.0 / n as f64
    }

    /// EWMA of the percent-error stream (0.0 when empty).
    pub fn ewma_mape_percent(&self) -> f64 {
        match self.ewma_bits.load(Ordering::Relaxed) {
            EWMA_UNSET => 0.0,
            bits => f64::from_bits(bits),
        }
    }

    /// Signed mean residual in µs: positive = over-prediction.
    pub fn bias_us(&self) -> f64 {
        let n = self.matched.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        let over = self.over_us.load(Ordering::Relaxed) as f64;
        let under = self.under_us.load(Ordering::Relaxed) as f64;
        (over - under) / n as f64
    }

    /// Point-in-time copy of every statistic. Like
    /// [`LogHistogram::snapshot`], a snapshot taken while writers are
    /// active may be slightly torn; it is exact once writers stop.
    pub fn snapshot(&self) -> ResidualSnapshot {
        ResidualSnapshot {
            matched: self.matched(),
            online_mape_percent: self.online_mape_percent(),
            ewma_mape_percent: self.ewma_mape_percent(),
            bias_us: self.bias_us(),
            residual: self.residual.snapshot(),
            calibration: self.calibration.snapshot(),
        }
    }
}

/// Plain-data copy of a [`ResidualWindow`] at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualSnapshot {
    /// Matched outcomes recorded.
    pub matched: u64,
    /// Cumulative online MAPE in percent.
    pub online_mape_percent: f64,
    /// EWMA MAPE in percent.
    pub ewma_mape_percent: f64,
    /// Signed mean residual in µs (positive = over-prediction).
    pub bias_us: f64,
    /// Histogram of `|predicted - actual|` in µs.
    pub residual: HistogramSnapshot,
    /// Histogram of `predicted * CALIBRATION_SCALE / actual`.
    pub calibration: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::{bucket_index, BUCKETS};
    use proptest::prelude::*;
    use std::sync::Arc;

    #[test]
    fn empty_window_reports_zeros() {
        let w = ResidualWindow::new();
        assert_eq!(w.matched(), 0);
        assert_eq!(w.online_mape_percent(), 0.0);
        assert_eq!(w.ewma_mape_percent(), 0.0);
        assert_eq!(w.bias_us(), 0.0);
        assert!(w.snapshot().residual.is_empty());
    }

    #[test]
    fn perfect_predictions_are_zero_error_and_centered_calibration() {
        let w = ResidualWindow::new();
        for v in [1u64, 10, 1_000, 123_456] {
            assert_eq!(w.observe(v, v), 0.0);
        }
        let snap = w.snapshot();
        assert_eq!(snap.matched, 4);
        assert_eq!(snap.online_mape_percent, 0.0);
        assert_eq!(snap.ewma_mape_percent, 0.0);
        assert_eq!(snap.bias_us, 0.0);
        // Every calibration sample is exactly CALIBRATION_SCALE.
        assert_eq!(snap.calibration.min, CALIBRATION_SCALE);
        assert_eq!(snap.calibration.max, CALIBRATION_SCALE);
    }

    #[test]
    fn signed_bias_distinguishes_over_and_under_prediction() {
        let over = ResidualWindow::new();
        over.observe(150, 100);
        over.observe(130, 100);
        assert_eq!(over.bias_us(), 40.0);
        assert_eq!(over.online_mape_percent(), 40.0);

        let under = ResidualWindow::new();
        under.observe(50, 100);
        assert_eq!(under.bias_us(), -50.0);
        assert_eq!(under.online_mape_percent(), 50.0);
        // 50/100 scaled: half of CALIBRATION_SCALE.
        assert_eq!(under.snapshot().calibration.min, CALIBRATION_SCALE / 2);
    }

    #[test]
    fn zero_actual_is_clamped_to_one_microsecond() {
        let w = ResidualWindow::new();
        let ape = w.observe(2, 0);
        assert_eq!(ape, 100.0);
        assert_eq!(w.online_mape_percent(), 100.0);
    }

    #[test]
    fn ewma_converges_to_a_constant_error_stream() {
        let w = ResidualWindow::with_alpha(0.5);
        // First sample initializes the EWMA directly.
        w.observe(120, 100);
        assert_eq!(w.ewma_mape_percent(), 20.0);
        // A long constant stream keeps it there.
        for _ in 0..50 {
            w.observe(120, 100);
        }
        assert!((w.ewma_mape_percent() - 20.0).abs() < 1e-9);
        // A shift moves the EWMA toward the new level while the
        // cumulative MAPE lags.
        for _ in 0..50 {
            w.observe(200, 100);
        }
        assert!(w.ewma_mape_percent() > 99.0);
        assert!(w.online_mape_percent() < 60.1);
    }

    /// Serial reference for the order-independent statistics.
    struct Reference {
        matched: u64,
        ape_milli_sum: u64,
        over_us: u64,
        under_us: u64,
        residual_buckets: [u64; BUCKETS],
        calibration_buckets: [u64; BUCKETS],
    }

    impl Reference {
        fn new() -> Self {
            Self {
                matched: 0,
                ape_milli_sum: 0,
                over_us: 0,
                under_us: 0,
                residual_buckets: [0; BUCKETS],
                calibration_buckets: [0; BUCKETS],
            }
        }

        fn observe(&mut self, predicted: u64, actual_raw: u64) {
            let actual = actual_raw.max(1);
            let residual = predicted.abs_diff(actual);
            let ape = residual as f64 / actual as f64 * 100.0;
            self.matched += 1;
            self.ape_milli_sum += (ape * 1000.0).round().min(u64::MAX as f64) as u64;
            if predicted >= actual {
                self.over_us += residual;
            } else {
                self.under_us += residual;
            }
            self.residual_buckets[bucket_index(residual)] += 1;
            let ratio = (u128::from(predicted) * u128::from(CALIBRATION_SCALE) / u128::from(actual))
                .min(u128::from(u64::MAX)) as u64;
            self.calibration_buckets[bucket_index(ratio)] += 1;
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Concurrent writers produce exactly the counts, sums, and
        /// bucket contents of a serial reference fed the same pairs;
        /// the (order-dependent) EWMA stays a convex combination of
        /// the observed errors.
        #[test]
        fn concurrent_writers_match_serial_reference(
            values in proptest::collection::vec(any::<u64>(), 1..512),
            threads in 2usize..8,
        ) {
            // Split each raw u64 into a (predicted, actual) pair; 32
            // bits each keeps the milli-percent sum far from overflow.
            let pairs: Vec<(u64, u64)> =
                values.iter().map(|&v| (v & 0xFFFF_FFFF, v >> 32)).collect();
            let window = Arc::new(ResidualWindow::new());
            std::thread::scope(|scope| {
                for chunk in pairs.chunks(pairs.len().div_ceil(threads)) {
                    let window = Arc::clone(&window);
                    scope.spawn(move || {
                        for &(p, a) in chunk {
                            window.observe(p, a);
                        }
                    });
                }
            });

            let mut reference = Reference::new();
            let mut min_ape = f64::INFINITY;
            let mut max_ape = f64::NEG_INFINITY;
            for &(p, a) in &pairs {
                reference.observe(p, a);
                let ape = p.abs_diff(a.max(1)) as f64 / a.max(1) as f64 * 100.0;
                min_ape = min_ape.min(ape);
                max_ape = max_ape.max(ape);
            }

            let snap = window.snapshot();
            prop_assert_eq!(snap.matched, reference.matched);
            let milli = window.ape_milli_sum.load(std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(milli, reference.ape_milli_sum);
            let over = window.over_us.load(std::sync::atomic::Ordering::Relaxed);
            let under = window.under_us.load(std::sync::atomic::Ordering::Relaxed);
            prop_assert_eq!(over, reference.over_us);
            prop_assert_eq!(under, reference.under_us);
            prop_assert_eq!(&snap.residual.buckets[..], &reference.residual_buckets[..]);
            prop_assert_eq!(&snap.calibration.buckets[..], &reference.calibration_buckets[..]);
            prop_assert!(snap.ewma_mape_percent >= min_ape - 1e-9);
            prop_assert!(snap.ewma_mape_percent <= max_ape + 1e-9);
        }
    }
}
