//! The counting profiler threaded through workload kernels.

use crate::{InstrClass, InstructionMix};
use serde::{Deserialize, Serialize};

/// A dynamic instruction counter, the stand-in for PIN+MICA instrumentation.
///
/// Workload kernels receive a `&mut Profiler` and tally abstract dynamic
/// instructions as they perform the corresponding real computation. The
/// result is a deterministic instruction-mix characterization of the run,
/// exactly the signal MICA extracts from a PIN trace.
///
/// # Example
///
/// ```
/// use bagpred_trace::{InstrClass, Profiler};
///
/// let mut prof = Profiler::new();
/// prof.count(InstrClass::Fp, 10);
/// prof.count(InstrClass::Control, 10);
/// assert_eq!(prof.total(), 20);
/// assert_eq!(prof.class_count(InstrClass::Fp), 10);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Profiler {
    counts: [u64; InstrClass::COUNT],
    bytes_read: u64,
    bytes_written: u64,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` dynamic instructions of class `class`.
    #[inline]
    pub fn count(&mut self, class: InstrClass, n: u64) {
        self.counts[class.index()] += n;
    }

    /// Records a read of `bytes` bytes, also counting the implied loads.
    ///
    /// One abstract load instruction is charged per 8 bytes (one machine
    /// word), with a minimum of one.
    #[inline]
    pub fn read_bytes(&mut self, bytes: u64) {
        self.bytes_read += bytes;
        self.count(InstrClass::Load, bytes.div_ceil(8).max(1));
    }

    /// Records a write of `bytes` bytes, also counting the implied stores.
    #[inline]
    pub fn write_bytes(&mut self, bytes: u64) {
        self.bytes_written += bytes;
        self.count(InstrClass::Store, bytes.div_ceil(8).max(1));
    }

    /// Total dynamic instructions recorded so far.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count recorded for one class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Raw per-class counts in [`InstrClass::ALL`] order.
    pub fn counts(&self) -> &[u64; InstrClass::COUNT] {
        &self.counts
    }

    /// Bytes read through [`read_bytes`](Self::read_bytes).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written through [`write_bytes`](Self::write_bytes).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Instruction-mix percentages over the recorded counts.
    ///
    /// Returns an all-zero mix when nothing has been recorded.
    pub fn mix(&self) -> InstructionMix {
        InstructionMix::from_counts(&self.counts)
    }

    /// Multiplies all recorded counts and traffic by an integer factor.
    ///
    /// Used when a reduced kernel (for example a demonstration-size Haar
    /// cascade) stands in for a deeper production one: the dynamic work
    /// extrapolates multiplicatively while the instruction *mix* is
    /// preserved exactly.
    pub fn scale_by(&mut self, factor: u64) {
        for c in &mut self.counts {
            *c *= factor;
        }
        self.bytes_read *= factor;
        self.bytes_written *= factor;
    }

    /// Merges the counts of another profiler into this one.
    ///
    /// Used when a workload runs several kernels (for example ObjRec runs a
    /// feature extractor and then a classifier) and the per-kernel profiles
    /// are gathered separately.
    pub fn merge(&mut self, other: &Profiler) {
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_accumulates() {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 3);
        p.count(InstrClass::Alu, 4);
        assert_eq!(p.class_count(InstrClass::Alu), 7);
        assert_eq!(p.total(), 7);
    }

    #[test]
    fn read_bytes_charges_word_loads() {
        let mut p = Profiler::new();
        p.read_bytes(17);
        assert_eq!(p.bytes_read(), 17);
        assert_eq!(p.class_count(InstrClass::Load), 3); // ceil(17/8)
    }

    #[test]
    fn small_reads_charge_at_least_one_load() {
        let mut p = Profiler::new();
        p.read_bytes(1);
        assert_eq!(p.class_count(InstrClass::Load), 1);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Profiler::new();
        a.count(InstrClass::Fp, 5);
        a.write_bytes(8);
        let mut b = Profiler::new();
        b.count(InstrClass::Fp, 2);
        b.read_bytes(8);
        a.merge(&b);
        assert_eq!(a.class_count(InstrClass::Fp), 7);
        assert_eq!(a.bytes_read(), 8);
        assert_eq!(a.bytes_written(), 8);
    }

    #[test]
    fn scale_by_multiplies_counts_and_preserves_mix() {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 30);
        p.count(InstrClass::Fp, 10);
        p.read_bytes(80);
        let mix_before = p.mix();
        p.scale_by(5);
        assert_eq!(p.class_count(InstrClass::Alu), 150);
        assert_eq!(p.bytes_read(), 400);
        assert_eq!(p.mix(), mix_before);
    }

    #[test]
    fn empty_mix_is_zero() {
        let p = Profiler::new();
        let mix = p.mix();
        for class in InstrClass::ALL {
            assert_eq!(mix.percent(class), 0.0);
        }
    }
}
