//! Dynamic instruction classes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamic instruction class, in the MICA-style taxonomy used by the paper.
///
/// The paper's feature table (Table IV) lists eight instruction-mix features:
/// SSE, ALU, MEM, FP, stack, string, shift and control percentages. Its
/// decision-path analysis (Fig. 12) splits MEM into reads and writes, so this
/// enum keeps [`Load`](InstrClass::Load) and [`Store`](InstrClass::Store)
/// separate; [`InstructionMix::mem`](crate::InstructionMix::mem) provides the
/// merged view.
///
/// # Example
///
/// ```
/// use bagpred_trace::InstrClass;
///
/// assert_eq!(InstrClass::ALL.len(), 9);
/// assert_eq!(InstrClass::Sse.name(), "sse");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstrClass {
    /// SIMD/vector instructions (SSE/AVX on the paper's Xeon host).
    Sse,
    /// Scalar integer arithmetic and logic.
    Alu,
    /// Memory reads.
    Load,
    /// Memory writes.
    Store,
    /// Scalar floating-point arithmetic.
    Fp,
    /// Stack push/pop (call frames, spills).
    Stack,
    /// String/block operations (memcpy-like).
    StringOp,
    /// Multiplies and shifts (the paper groups these).
    Shift,
    /// Branches, calls, and other control flow.
    Control,
}

impl InstrClass {
    /// All nine classes, in canonical order.
    ///
    /// The order is stable and is used to index count arrays throughout the
    /// workspace.
    pub const ALL: [InstrClass; 9] = [
        InstrClass::Sse,
        InstrClass::Alu,
        InstrClass::Load,
        InstrClass::Store,
        InstrClass::Fp,
        InstrClass::Stack,
        InstrClass::StringOp,
        InstrClass::Shift,
        InstrClass::Control,
    ];

    /// Number of classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Canonical index of this class into count arrays (0..[`COUNT`](Self::COUNT)).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            InstrClass::Sse => 0,
            InstrClass::Alu => 1,
            InstrClass::Load => 2,
            InstrClass::Store => 3,
            InstrClass::Fp => 4,
            InstrClass::Stack => 5,
            InstrClass::StringOp => 6,
            InstrClass::Shift => 7,
            InstrClass::Control => 8,
        }
    }

    /// Inverse of [`index`](Self::index). Returns `None` when out of range.
    pub const fn from_index(index: usize) -> Option<InstrClass> {
        if index < Self::COUNT {
            Some(Self::ALL[index])
        } else {
            None
        }
    }

    /// Short lowercase name, matching the labels in the paper's figures.
    pub const fn name(self) -> &'static str {
        match self {
            InstrClass::Sse => "sse",
            InstrClass::Alu => "arith",
            InstrClass::Load => "mem_rd",
            InstrClass::Store => "mem_wr",
            InstrClass::Fp => "fp",
            InstrClass::Stack => "stack",
            InstrClass::StringOp => "string",
            InstrClass::Shift => "shift",
            InstrClass::Control => "ctrl",
        }
    }
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrips() {
        for class in InstrClass::ALL {
            assert_eq!(InstrClass::from_index(class.index()), Some(class));
        }
        assert_eq!(InstrClass::from_index(InstrClass::COUNT), None);
    }

    #[test]
    fn all_is_in_index_order() {
        for (i, class) in InstrClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = InstrClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InstrClass::COUNT);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(InstrClass::Control.to_string(), "ctrl");
    }
}
