//! Instruction-class profiling substrate for the `bagpred` workspace.
//!
//! The ISPASS 2020 paper this workspace reproduces collects the *dynamic
//! instruction mix* of each benchmark with the PIN 3.7 binary instrumentation
//! framework and the MICA 1.0 microarchitecture-independent characterization
//! tool. Neither is available (nor meaningful) for pure-Rust workloads, so
//! this crate provides the equivalent capability as a library:
//!
//! * [`InstrClass`] — the nine dynamic instruction classes that MICA-style
//!   characterization distinguishes and the paper's Table IV consumes.
//! * [`Profiler`] — a cheap counting handle that workload kernels thread
//!   through their inner loops, tallying one count per abstract dynamic
//!   instruction.
//! * [`InstructionMix`] — percentages over the class counts, with the merged
//!   `MEM` view used by the paper's feature table and the split
//!   load/store view used by its decision-path heat map (Fig. 12).
//! * [`KernelProfile`] — the full dynamic character of one workload run:
//!   instruction counts plus the memory- and parallelism-related quantities
//!   the CPU and GPU timing models consume.
//! * [`SplitMix64`] — a tiny deterministic RNG so workloads and dataset
//!   generation are bit-reproducible independent of external crates.
//!
//! # Example
//!
//! ```
//! use bagpred_trace::{InstrClass, Profiler};
//!
//! let mut prof = Profiler::new();
//! for i in 0..100u64 {
//!     prof.count(InstrClass::Load, 2);   // read two operands
//!     prof.count(InstrClass::Alu, 1);    // add them
//!     prof.count(InstrClass::Store, 1);  // write the result
//!     prof.count(InstrClass::Control, 1); // loop back-edge
//!     let _ = i;
//! }
//! let mix = prof.mix();
//! assert!((mix.percent(InstrClass::Load) - 40.0).abs() < 1e-9);
//! assert!((mix.mem() - 60.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod class;
mod mix;
mod profile;
mod profiler;
mod rng;

pub use class::InstrClass;
pub use mix::InstructionMix;
pub use profile::{KernelProfile, KernelProfileBuilder, ProfileError};
pub use profiler::Profiler;
pub use rng::SplitMix64;
