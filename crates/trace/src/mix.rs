//! Instruction-mix percentages.

use crate::InstrClass;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Dynamic instruction-mix percentages over the nine [`InstrClass`]es.
///
/// Percentages sum to 100 (within floating-point error) whenever at least one
/// instruction was recorded, and are all zero otherwise.
///
/// The paper's Table IV uses a *merged* memory percentage (loads + stores);
/// its Fig. 12 analysis splits reads and writes. Both views are available.
///
/// # Example
///
/// ```
/// use bagpred_trace::{InstrClass, InstructionMix};
///
/// let mut counts = [0u64; InstrClass::COUNT];
/// counts[InstrClass::Load.index()] = 30;
/// counts[InstrClass::Store.index()] = 10;
/// counts[InstrClass::Alu.index()] = 60;
/// let mix = InstructionMix::from_counts(&counts);
/// assert!((mix.mem() - 40.0).abs() < 1e-9);
/// assert!((mix.percent(InstrClass::Alu) - 60.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct InstructionMix {
    percents: [f64; InstrClass::COUNT],
}

impl InstructionMix {
    /// Computes percentages from raw per-class counts.
    pub fn from_counts(counts: &[u64; InstrClass::COUNT]) -> Self {
        let total: u64 = counts.iter().sum();
        let mut percents = [0.0; InstrClass::COUNT];
        if total > 0 {
            for (p, &c) in percents.iter_mut().zip(counts.iter()) {
                *p = 100.0 * c as f64 / total as f64;
            }
        }
        Self { percents }
    }

    /// Percentage of one instruction class.
    pub fn percent(&self, class: InstrClass) -> f64 {
        self.percents[class.index()]
    }

    /// Merged memory percentage (loads + stores), the paper's `MEM` feature.
    pub fn mem(&self) -> f64 {
        self.percent(InstrClass::Load) + self.percent(InstrClass::Store)
    }

    /// All percentages in [`InstrClass::ALL`] order.
    pub fn percents(&self) -> &[f64; InstrClass::COUNT] {
        &self.percents
    }

    /// Sum of all percentages: 100 for a non-empty mix, 0 for an empty one.
    pub fn total(&self) -> f64 {
        self.percents.iter().sum()
    }

    /// Manhattan distance between two mixes, in percentage points.
    ///
    /// This is the MICA-style workload-similarity measure: two runs with
    /// identical dynamic instruction mixes have distance 0; completely
    /// disjoint mixes approach 200. Used by the benchmark-similarity
    /// extension experiment.
    ///
    /// # Example
    ///
    /// ```
    /// use bagpred_trace::{InstrClass, InstructionMix};
    ///
    /// let mut a = [0u64; InstrClass::COUNT];
    /// a[InstrClass::Alu.index()] = 10;
    /// let mut b = [0u64; InstrClass::COUNT];
    /// b[InstrClass::Fp.index()] = 10;
    /// let ma = InstructionMix::from_counts(&a);
    /// let mb = InstructionMix::from_counts(&b);
    /// assert_eq!(ma.manhattan_distance(&mb), 200.0);
    /// assert_eq!(ma.manhattan_distance(&ma), 0.0);
    /// ```
    pub fn manhattan_distance(&self, other: &InstructionMix) -> f64 {
        self.percents
            .iter()
            .zip(other.percents.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// True when no instructions were recorded.
    pub fn is_empty(&self) -> bool {
        self.total() == 0.0
    }
}

impl fmt::Display for InstructionMix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for class in InstrClass::ALL {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            write!(f, "{}={:.1}%", class, self.percent(class))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_counts_give_empty_mix() {
        let mix = InstructionMix::from_counts(&[0; InstrClass::COUNT]);
        assert!(mix.is_empty());
        assert_eq!(mix.total(), 0.0);
    }

    #[test]
    fn display_lists_every_class() {
        let mut counts = [1u64; InstrClass::COUNT];
        counts[0] = 10;
        let s = InstructionMix::from_counts(&counts).to_string();
        for class in InstrClass::ALL {
            assert!(s.contains(class.name()), "missing {class} in {s}");
        }
    }

    proptest! {
        #[test]
        fn percents_sum_to_100(counts in proptest::array::uniform9(0u64..1_000_000)) {
            let mix = InstructionMix::from_counts(&counts);
            let total: u64 = counts.iter().sum();
            if total == 0 {
                prop_assert!(mix.is_empty());
            } else {
                prop_assert!((mix.total() - 100.0).abs() < 1e-6);
            }
        }

        #[test]
        fn percents_are_nonnegative(counts in proptest::array::uniform9(0u64..1_000_000)) {
            let mix = InstructionMix::from_counts(&counts);
            for class in InstrClass::ALL {
                prop_assert!(mix.percent(class) >= 0.0);
                prop_assert!(mix.percent(class) <= 100.0 + 1e-9);
            }
        }

        #[test]
        fn mem_merges_load_and_store(counts in proptest::array::uniform9(0u64..1_000_000)) {
            let mix = InstructionMix::from_counts(&counts);
            let merged = mix.percent(InstrClass::Load) + mix.percent(InstrClass::Store);
            prop_assert!((mix.mem() - merged).abs() < 1e-12);
        }

        #[test]
        fn manhattan_distance_is_a_metric(
            a in proptest::array::uniform9(0u64..1_000_000),
            b in proptest::array::uniform9(0u64..1_000_000),
            c in proptest::array::uniform9(0u64..1_000_000),
        ) {
            let (ma, mb, mc) = (
                InstructionMix::from_counts(&a),
                InstructionMix::from_counts(&b),
                InstructionMix::from_counts(&c),
            );
            // Identity, symmetry, bounds, triangle inequality.
            prop_assert!(ma.manhattan_distance(&ma) < 1e-12);
            prop_assert!((ma.manhattan_distance(&mb) - mb.manhattan_distance(&ma)).abs() < 1e-9);
            prop_assert!(ma.manhattan_distance(&mb) <= 200.0 + 1e-9);
            prop_assert!(
                ma.manhattan_distance(&mc)
                    <= ma.manhattan_distance(&mb) + mb.manhattan_distance(&mc) + 1e-9
            );
        }
    }
}
