//! The full dynamic character of one workload run.

use crate::{InstrClass, InstructionMix, Profiler};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error raised when a [`KernelProfileBuilder`] is given invalid values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// A fraction-valued field was outside `[0, 1]` or not finite.
    FractionOutOfRange {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The data-parallel width was zero.
    ZeroParallelWidth,
    /// No dynamic instructions were recorded.
    EmptyProfile,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::FractionOutOfRange { field } => {
                write!(f, "field `{field}` must be a finite value in [0, 1]")
            }
            ProfileError::ZeroParallelWidth => {
                f.write_str("data-parallel width must be at least 1")
            }
            ProfileError::EmptyProfile => f.write_str("profile records no dynamic instructions"),
        }
    }
}

impl Error for ProfileError {}

/// The complete dynamic characterization of one workload execution.
///
/// This is the hand-off point between the workload layer and the two timing
/// models: everything the CPU and GPU simulators know about a run is in here.
/// It plays the role of the PIN/MICA trace summary plus the kernel metadata
/// (launch counts, transfer sizes) that `nvprof`-style tooling would report.
///
/// Construct with [`KernelProfile::builder`].
///
/// # Example
///
/// ```
/// use bagpred_trace::{InstrClass, KernelProfile, Profiler};
///
/// let mut prof = Profiler::new();
/// prof.count(InstrClass::Fp, 1_000);
/// prof.count(InstrClass::Load, 500);
/// let profile = KernelProfile::builder(prof)
///     .working_set_bytes(1 << 20)
///     .parallel_width(4_096)
///     .parallel_fraction(0.95)
///     .build()?;
/// assert_eq!(profile.total_instructions(), 1_500);
/// # Ok::<(), bagpred_trace::ProfileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    counts: [u64; InstrClass::COUNT],
    bytes_read: u64,
    bytes_written: u64,
    working_set_bytes: u64,
    parallel_width: u64,
    parallel_fraction: f64,
    branch_divergence: f64,
    coalescing: f64,
    kernel_launches: u64,
    transfer_bytes: u64,
}

impl KernelProfile {
    /// Starts building a profile from recorded instruction counts.
    pub fn builder(profiler: Profiler) -> KernelProfileBuilder {
        KernelProfileBuilder::new(profiler)
    }

    /// Total dynamic instructions.
    pub fn total_instructions(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Count of one instruction class.
    pub fn class_count(&self, class: InstrClass) -> u64 {
        self.counts[class.index()]
    }

    /// Instruction-mix percentages.
    pub fn mix(&self) -> InstructionMix {
        InstructionMix::from_counts(&self.counts)
    }

    /// Bytes read from memory.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Bytes written to memory.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total memory traffic (reads + writes).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Resident working set in bytes (drives cache-miss modelling).
    pub fn working_set_bytes(&self) -> u64 {
        self.working_set_bytes
    }

    /// Data-parallel width: independent work items available (e.g. pixels).
    ///
    /// Drives GPU occupancy and CPU thread scaling.
    pub fn parallel_width(&self) -> u64 {
        self.parallel_width
    }

    /// Fraction of dynamic work that is parallelizable (Amdahl).
    pub fn parallel_fraction(&self) -> f64 {
        self.parallel_fraction
    }

    /// Fraction of branches that diverge within a SIMT warp, in `[0, 1]`.
    pub fn branch_divergence(&self) -> f64 {
        self.branch_divergence
    }

    /// Memory-coalescing efficiency on a SIMT machine, in `(0, 1]`.
    ///
    /// 1.0 means perfectly coalesced (streaming) access; values near 0 mean
    /// fully scattered access.
    pub fn coalescing(&self) -> f64 {
        self.coalescing
    }

    /// Number of GPU kernel launches the workload performs.
    pub fn kernel_launches(&self) -> u64 {
        self.kernel_launches
    }

    /// Host–device transfer volume in bytes (both directions).
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes
    }

    /// Merges another profile into this one (summing counts and traffic,
    /// taking the max of working set and parallel width, and weighting the
    /// fraction-valued fields by dynamic instruction count).
    ///
    /// Used by composite workloads such as ObjRec (feature extraction
    /// followed by classification).
    pub fn merge(&self, other: &KernelProfile) -> KernelProfile {
        let mut counts = self.counts;
        for (dst, src) in counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
        let w_self = self.total_instructions() as f64;
        let w_other = other.total_instructions() as f64;
        let total = (w_self + w_other).max(1.0);
        let blend = |a: f64, b: f64| (a * w_self + b * w_other) / total;
        KernelProfile {
            counts,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            working_set_bytes: self.working_set_bytes.max(other.working_set_bytes),
            parallel_width: self.parallel_width.max(other.parallel_width),
            parallel_fraction: blend(self.parallel_fraction, other.parallel_fraction),
            branch_divergence: blend(self.branch_divergence, other.branch_divergence),
            coalescing: blend(self.coalescing, other.coalescing),
            kernel_launches: self.kernel_launches + other.kernel_launches,
            transfer_bytes: self.transfer_bytes + other.transfer_bytes,
        }
    }
}

/// Builder for [`KernelProfile`]; see [`KernelProfile::builder`].
#[derive(Debug, Clone)]
pub struct KernelProfileBuilder {
    profiler: Profiler,
    working_set_bytes: u64,
    parallel_width: u64,
    parallel_fraction: f64,
    branch_divergence: f64,
    coalescing: f64,
    kernel_launches: u64,
    transfer_bytes: u64,
    work_scale: f64,
}

impl KernelProfileBuilder {
    fn new(profiler: Profiler) -> Self {
        Self {
            profiler,
            working_set_bytes: 0,
            parallel_width: 1,
            parallel_fraction: 0.9,
            branch_divergence: 0.1,
            coalescing: 0.8,
            kernel_launches: 1,
            transfer_bytes: 0,
            work_scale: 1.0,
        }
    }

    /// Sets the resident working set in bytes.
    pub fn working_set_bytes(&mut self, bytes: u64) -> &mut Self {
        self.working_set_bytes = bytes;
        self
    }

    /// Sets the data-parallel width (independent work items).
    pub fn parallel_width(&mut self, width: u64) -> &mut Self {
        self.parallel_width = width;
        self
    }

    /// Sets the parallelizable fraction of the work (Amdahl).
    pub fn parallel_fraction(&mut self, fraction: f64) -> &mut Self {
        self.parallel_fraction = fraction;
        self
    }

    /// Sets the SIMT branch-divergence fraction.
    pub fn branch_divergence(&mut self, fraction: f64) -> &mut Self {
        self.branch_divergence = fraction;
        self
    }

    /// Sets the memory-coalescing efficiency.
    pub fn coalescing(&mut self, efficiency: f64) -> &mut Self {
        self.coalescing = efficiency;
        self
    }

    /// Sets the number of GPU kernel launches.
    pub fn kernel_launches(&mut self, launches: u64) -> &mut Self {
        self.kernel_launches = launches;
        self
    }

    /// Sets the host–device transfer volume in bytes.
    pub fn transfer_bytes(&mut self, bytes: u64) -> &mut Self {
        self.transfer_bytes = bytes;
        self
    }

    /// Scales all extensive quantities (instruction counts, traffic, working
    /// set, parallel width, transfer volume) by a constant factor.
    ///
    /// Profiling runs on reduced inputs for speed; the scale extrapolates the
    /// measured character to the full-resolution input it stands in for.
    /// Instruction-mix *percentages* and the structural fractions are
    /// unaffected. Kernel-launch counts are also unaffected: larger inputs
    /// enlarge kernels, they do not add pipeline stages.
    ///
    /// # Panics
    ///
    /// Panics unless `scale` is positive and finite.
    pub fn work_scale(&mut self, scale: f64) -> &mut Self {
        assert!(scale > 0.0 && scale.is_finite(), "scale must be positive");
        self.work_scale = scale;
        self
    }

    /// Validates the configuration and builds the profile.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] when a fraction field is outside `[0, 1]`,
    /// the parallel width is zero, or no instructions were recorded.
    pub fn build(&self) -> Result<KernelProfile, ProfileError> {
        let check = |value: f64, field: &'static str| {
            if value.is_finite() && (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ProfileError::FractionOutOfRange { field })
            }
        };
        check(self.parallel_fraction, "parallel_fraction")?;
        check(self.branch_divergence, "branch_divergence")?;
        check(self.coalescing, "coalescing")?;
        if self.parallel_width == 0 {
            return Err(ProfileError::ZeroParallelWidth);
        }
        if self.profiler.total() == 0 {
            return Err(ProfileError::EmptyProfile);
        }
        let s = self.work_scale;
        let scale_u64 = |v: u64| (v as f64 * s).round().max(if v > 0 { 1.0 } else { 0.0 }) as u64;
        let mut counts = *self.profiler.counts();
        for c in &mut counts {
            *c = scale_u64(*c);
        }
        Ok(KernelProfile {
            counts,
            bytes_read: scale_u64(self.profiler.bytes_read()),
            bytes_written: scale_u64(self.profiler.bytes_written()),
            working_set_bytes: scale_u64(self.working_set_bytes),
            parallel_width: scale_u64(self.parallel_width),
            parallel_fraction: self.parallel_fraction,
            branch_divergence: self.branch_divergence,
            coalescing: self.coalescing,
            kernel_launches: self.kernel_launches,
            transfer_bytes: scale_u64(self.transfer_bytes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profiler() -> Profiler {
        let mut p = Profiler::new();
        p.count(InstrClass::Alu, 100);
        p.read_bytes(64);
        p.write_bytes(32);
        p
    }

    #[test]
    fn builder_applies_fields() {
        let profile = KernelProfile::builder(sample_profiler())
            .working_set_bytes(123)
            .parallel_width(7)
            .parallel_fraction(0.5)
            .branch_divergence(0.25)
            .coalescing(0.75)
            .kernel_launches(3)
            .transfer_bytes(99)
            .build()
            .unwrap();
        assert_eq!(profile.working_set_bytes(), 123);
        assert_eq!(profile.parallel_width(), 7);
        assert_eq!(profile.parallel_fraction(), 0.5);
        assert_eq!(profile.branch_divergence(), 0.25);
        assert_eq!(profile.coalescing(), 0.75);
        assert_eq!(profile.kernel_launches(), 3);
        assert_eq!(profile.transfer_bytes(), 99);
        assert_eq!(profile.bytes_read(), 64);
        assert_eq!(profile.bytes_written(), 32);
        assert_eq!(profile.bytes_total(), 96);
    }

    #[test]
    fn rejects_bad_fraction() {
        let err = KernelProfile::builder(sample_profiler())
            .parallel_fraction(1.5)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ProfileError::FractionOutOfRange {
                field: "parallel_fraction"
            }
        );
    }

    #[test]
    fn rejects_nan_fraction() {
        let err = KernelProfile::builder(sample_profiler())
            .coalescing(f64::NAN)
            .build()
            .unwrap_err();
        assert!(matches!(err, ProfileError::FractionOutOfRange { .. }));
    }

    #[test]
    fn rejects_zero_width() {
        let err = KernelProfile::builder(sample_profiler())
            .parallel_width(0)
            .build()
            .unwrap_err();
        assert_eq!(err, ProfileError::ZeroParallelWidth);
    }

    #[test]
    fn rejects_empty_profiler() {
        let err = KernelProfile::builder(Profiler::new()).build().unwrap_err();
        assert_eq!(err, ProfileError::EmptyProfile);
    }

    #[test]
    fn merge_sums_counts_and_blends_fractions() {
        let a = KernelProfile::builder(sample_profiler())
            .parallel_fraction(1.0)
            .parallel_width(10)
            .build()
            .unwrap();
        let b = KernelProfile::builder(sample_profiler())
            .parallel_fraction(0.0)
            .parallel_width(20)
            .build()
            .unwrap();
        let merged = a.merge(&b);
        assert_eq!(
            merged.total_instructions(),
            a.total_instructions() + b.total_instructions()
        );
        assert_eq!(merged.parallel_width(), 20);
        // Equal weights -> blended halfway.
        assert!((merged.parallel_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(merged.kernel_launches(), 2);
    }

    #[test]
    fn work_scale_multiplies_extensive_quantities() {
        let base = KernelProfile::builder(sample_profiler())
            .working_set_bytes(100)
            .parallel_width(10)
            .transfer_bytes(50)
            .kernel_launches(7)
            .build()
            .unwrap();
        let scaled = KernelProfile::builder(sample_profiler())
            .working_set_bytes(100)
            .parallel_width(10)
            .transfer_bytes(50)
            .kernel_launches(7)
            .work_scale(4.0)
            .build()
            .unwrap();
        assert_eq!(scaled.total_instructions(), 4 * base.total_instructions());
        assert_eq!(scaled.working_set_bytes(), 400);
        assert_eq!(scaled.parallel_width(), 40);
        assert_eq!(scaled.transfer_bytes(), 200);
        // Launches and intensive quantities are untouched.
        assert_eq!(scaled.kernel_launches(), 7);
        assert_eq!(scaled.mix(), base.mix());
        assert_eq!(scaled.parallel_fraction(), base.parallel_fraction());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_work_scale_rejected() {
        KernelProfile::builder(sample_profiler()).work_scale(0.0);
    }

    #[test]
    fn error_display_is_informative() {
        let msg = ProfileError::ZeroParallelWidth.to_string();
        assert!(msg.contains("width"));
    }
}
