//! A tiny deterministic RNG for bit-reproducible workloads and datasets.

use serde::{Deserialize, Serialize};

/// SplitMix64 pseudo-random number generator.
///
/// Every random choice in the workspace (synthetic image content, dataset
/// shuffles, SVR initialization) flows through this generator so that results
/// are bit-reproducible across platforms and crate versions — external RNG
/// crates do not guarantee stream stability across releases.
///
/// # Example
///
/// ```
/// use bagpred_trace::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 top bits -> uniform double in [0,1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift; bias is negligible for the bounds used here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Derives an independent child generator; useful for splitting one seed
    /// across benchmarks/batches without correlating their streams.
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ 0xA5A5_A5A5_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_uncorrelated_with_parent() {
        let mut parent = SplitMix64::new(3);
        let mut child = parent.split();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }

    #[test]
    fn known_answer_stream_is_stable() {
        // Guards against accidental algorithm changes: SplitMix64(0) reference
        // values from the original Java implementation by Steele et al.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    proptest! {
        #[test]
        fn f64_in_unit_interval(seed in any::<u64>()) {
            let mut rng = SplitMix64::new(seed);
            for _ in 0..32 {
                let x = rng.next_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn below_respects_bound(seed in any::<u64>(), bound in 1u64..10_000) {
            let mut rng = SplitMix64::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn range_respects_bounds(seed in any::<u64>(), lo in -100.0f64..100.0, span in 0.001f64..100.0) {
            let mut rng = SplitMix64::new(seed);
            let hi = lo + span;
            for _ in 0..16 {
                let x = rng.next_range(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }
    }
}
