//! Instrumented kernel execution cost per benchmark: how expensive it is to
//! collect the PIN/MICA-style profile of one batch.

use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_profiling(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_profiling");
    group.sample_size(10);

    for bench in Benchmark::ALL {
        group.bench_with_input(
            BenchmarkId::new("profile_batch20", bench.name()),
            &bench,
            |b, &bench| {
                // `run()` bypasses the profile cache: this times the real
                // instrumented kernel execution.
                b.iter(|| black_box(Workload::new(bench, STANDARD_BATCH).run()))
            },
        );
    }

    // Batch-size scaling for one representative kernel.
    for batch in [20usize, 40, 80] {
        group.bench_with_input(
            BenchmarkId::new("surf_batch_scaling", batch),
            &batch,
            |b, &batch| b.iter(|| black_box(Workload::new(Benchmark::Surf, batch).run())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_profiling);
criterion_main!(benches);
