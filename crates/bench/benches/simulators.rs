//! Timing-model throughput: how fast the CPU and GPU simulators evaluate
//! workload profiles, solo and in bags.

use bagpred_cpusim::{fairness, CpuConfig, CpuSimulator};
use bagpred_gpusim::{GpuConfig, GpuSimulator};
use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulators(c: &mut Criterion) {
    let cpu = CpuSimulator::new(CpuConfig::xeon_gold_5118());
    let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
    let sift = Workload::new(Benchmark::Sift, STANDARD_BATCH).profile();
    let fast = Workload::new(Benchmark::Fast, STANDARD_BATCH).profile();

    let mut group = c.benchmark_group("simulators");

    group.bench_function("cpu_simulate_fixed_threads", |b| {
        b.iter(|| black_box(cpu.simulate(&sift, 24)))
    });
    group.bench_function("cpu_simulate_best_config", |b| {
        b.iter(|| black_box(cpu.simulate_best(&sift)))
    });
    group.bench_function("cpu_simulate_shared_pair", |b| {
        b.iter(|| black_box(cpu.simulate_shared(&[sift.clone(), fast.clone()])))
    });
    group.bench_function("cpu_fairness_eq2", |b| {
        b.iter(|| black_box(fairness(&cpu, &[sift.clone(), fast.clone()])))
    });

    group.bench_function("gpu_simulate_solo", |b| {
        b.iter(|| black_box(gpu.simulate(&sift)))
    });
    group.bench_function("gpu_simulate_bag2", |b| {
        b.iter(|| black_box(gpu.simulate_bag(&[sift.clone(), fast.clone()])))
    });
    group.bench_function("gpu_simulate_bag4", |b| {
        b.iter(|| {
            black_box(gpu.simulate_bag(&[
                sift.clone(),
                fast.clone(),
                sift.clone(),
                fast.clone(),
            ]))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_simulators);
criterion_main!(benches);
