//! Model training and prediction latency on the paper corpus.

use bagpred_bench::corpus;
use bagpred_core::{FeatureSet, ModelKind, Predictor};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_training(c: &mut Criterion) {
    let records = corpus();

    let mut group = c.benchmark_group("training");
    group.sample_size(20);

    group.bench_function("tree_train_full_corpus", |b| {
        b.iter(|| {
            let mut p = Predictor::new(FeatureSet::full());
            p.train(records);
            black_box(p)
        })
    });
    group.bench_function("svr_train_full_corpus", |b| {
        b.iter(|| {
            let mut p = Predictor::new(FeatureSet::full()).with_model(ModelKind::Svr);
            p.train(records);
            black_box(p)
        })
    });
    group.bench_function("linear_train_full_corpus", |b| {
        b.iter(|| {
            let mut p = Predictor::new(FeatureSet::full()).with_model(ModelKind::Linear);
            p.train(records);
            black_box(p)
        })
    });

    let mut trained = Predictor::new(FeatureSet::full());
    trained.train(records);
    group.bench_function("tree_predict_one_bag", |b| {
        b.iter(|| black_box(trained.predict(&records[0])))
    });
    group.bench_function("tree_evaluate_corpus", |b| {
        b.iter(|| black_box(trained.evaluate(records)))
    });
    group.bench_function("loocv_by_benchmark", |b| {
        b.iter(|| {
            let mut p = Predictor::new(FeatureSet::full());
            black_box(p.loocv_by_benchmark(records))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_training);
criterion_main!(benches);
