//! One Criterion group per paper artifact: measures the cost of
//! regenerating each table and figure from the shared measured corpus.
//!
//! Run `cargo bench -p bagpred-bench --bench figures` to both time the
//! regeneration and (via Criterion's output) demonstrate that every
//! artifact is reproducible from this crate alone.

use bagpred_experiments::{accuracy, paths, scaling, sensitivity, tables, Context};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_figures(c: &mut Criterion) {
    // Pay the corpus measurement once, outside the timed regions.
    let ctx = Context::shared();

    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig1_cpu_scaling", |b| {
        b.iter(|| black_box(scaling::figure1(ctx)))
    });
    group.bench_function("fig2_gpu_scaling", |b| {
        b.iter(|| black_box(scaling::figure2(ctx)))
    });
    group.bench_function("fig3_gpu_cpu_ratio", |b| {
        b.iter(|| black_box(scaling::figure3(ctx)))
    });
    group.bench_function("fig4_loocv", |b| {
        b.iter(|| black_box(accuracy::figure4(ctx)))
    });
    group.bench_function("fig5_related_work", |b| {
        b.iter(|| black_box(accuracy::figure5(ctx)))
    });
    group.bench_function("fig6_cpu_time_effect", |b| {
        b.iter(|| black_box(sensitivity::figure6(ctx)))
    });
    group.bench_function("fig7_gpu_time_effect", |b| {
        b.iter(|| black_box(sensitivity::figure7(ctx)))
    });
    group.bench_function("fig8_insmix_effect", |b| {
        b.iter(|| black_box(sensitivity::figure8(ctx)))
    });
    group.bench_function("fig9_fairness_effect", |b| {
        b.iter(|| black_box(sensitivity::figure9(ctx)))
    });
    group.bench_function("fig10_feature_presence", |b| {
        b.iter(|| black_box(paths::figure10(ctx)))
    });
    group.bench_function("fig11_feature_frequency", |b| {
        b.iter(|| black_box(paths::figure11(ctx)))
    });
    group.bench_function("fig12_heatmap", |b| {
        b.iter(|| black_box(paths::figure12(ctx)))
    });
    group.bench_function("table2_benchmarks", |b| {
        b.iter(|| black_box(tables::table2(ctx)))
    });
    group.bench_function("table3_system", |b| {
        b.iter(|| black_box(tables::table3(ctx)))
    });
    group.bench_function("table4_features", |b| {
        b.iter(|| black_box(tables::table4(ctx)))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
