//! Design-choice ablations called out in DESIGN.md: tree depth, feature
//! scheme width, and bag size. Each variant's cost is measured; the
//! accuracy side of these ablations is covered by the `feature_ablation`
//! example and the sensitivity figures.

use bagpred_bench::corpus;
use bagpred_core::{Feature, FeatureSet, Predictor};
use bagpred_gpusim::{GpuConfig, GpuSimulator};
use bagpred_workloads::{Benchmark, Workload, STANDARD_BATCH};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_tree_depth(c: &mut Criterion) {
    let records = corpus();
    let mut group = c.benchmark_group("ablation_tree_depth");
    group.sample_size(20);
    for depth in [2usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            b.iter(|| {
                let mut p = Predictor::new(FeatureSet::full()).with_max_depth(depth);
                p.train(records);
                black_box(p.evaluate(records))
            })
        });
    }
    group.finish();
}

fn bench_scheme_width(c: &mut Criterion) {
    let records = corpus();
    let mut group = c.benchmark_group("ablation_scheme_width");
    group.sample_size(20);
    let schemes = [
        ("gpu_only", FeatureSet::only(Feature::GpuTime)),
        ("gpu_cpu", FeatureSet::only(Feature::GpuTime).with(Feature::CpuTime)),
        ("insmix", FeatureSet::insmix()),
        ("full", FeatureSet::full()),
    ];
    for (name, scheme) in schemes {
        group.bench_with_input(BenchmarkId::from_parameter(name), &scheme, |b, scheme| {
            b.iter(|| {
                let mut p = Predictor::new(scheme.clone());
                p.train(records);
                black_box(p.evaluate(records))
            })
        });
    }
    group.finish();
}

fn bench_bag_size(c: &mut Criterion) {
    let gpu = GpuSimulator::new(GpuConfig::tesla_t4());
    let profile = Workload::new(Benchmark::Hog, STANDARD_BATCH).profile();
    let mut group = c.benchmark_group("ablation_bag_size");
    for n in [1usize, 2, 4, 8] {
        let bag: Vec<_> = (0..n).map(|_| profile.clone()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &bag, |b, bag| {
            b.iter(|| black_box(gpu.simulate_bag(bag)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_depth, bench_scheme_width, bench_bag_size);
criterion_main!(benches);
