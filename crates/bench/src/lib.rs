//! Benchmark harness crate for `bagpred`.
//!
//! The actual Criterion benchmarks live under `benches/`:
//!
//! * `figures` — regeneration cost of every paper artifact (Figs. 1-12,
//!   Tables II-IV), one Criterion group per artifact.
//! * `simulators` — CPU/GPU timing-model throughput (solo, best-config,
//!   bags, fairness).
//! * `training` — model fitting and prediction latency (tree, SVR, linear;
//!   LOOCV; single-bag prediction).
//! * `workload_profiling` — instrumented kernel execution per benchmark.
//! * `ablations` — design-choice sweeps called out in DESIGN.md (tree
//!   depth, feature-scheme width, bag size).
//!
//! This library only hosts shared helpers for those benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use bagpred_core::{Corpus, Measurement};
use std::sync::OnceLock;

/// The measured paper corpus, built once per bench binary.
pub fn corpus() -> &'static [Measurement] {
    static RECORDS: OnceLock<Vec<Measurement>> = OnceLock::new();
    RECORDS.get_or_init(|| Corpus::paper().measure())
}

#[cfg(test)]
mod tests {
    #[test]
    fn corpus_helper_is_cached() {
        let a = super::corpus().as_ptr();
        let b = super::corpus().as_ptr();
        assert_eq!(a, b);
    }
}
