//! One engine shard: a bounded queue + condvar pair owned by a single
//! model (or by the control plane), with its own [`ShardCounters`].
//!
//! Sharding is the serve-side answer to the interference the paper
//! models on the GPU: with one shared queue, a slow or quarantined
//! model head-of-line-blocks every other model's requests. Giving each
//! registered model its own queue and worker set bounds the blast
//! radius — the slow model's queue fills and sheds, the fast models
//! never see it.
//!
//! The type is deliberately dumb: push with backpressure, blocking
//! batch pop, depth, counters. Worker spawning, routing, and the atomic
//! shard-map swap on `load`/`reload` live in the engine.

use crate::metrics::{ShardCounters, ShardSnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex, PoisonError};

/// Name of the shard that serves non-predict commands and requests
/// whose model cannot be resolved at submit time (the name is invalid
/// for registry models, so it can never collide).
pub(crate) const CONTROL_SHARD: &str = "_control";

/// A bounded MPMC job queue for one model's workers.
#[derive(Debug)]
pub(crate) struct Shard<J> {
    name: String,
    capacity: usize,
    queue: Mutex<VecDeque<J>>,
    nonempty: Condvar,
    counters: ShardCounters,
}

impl<J> Shard<J> {
    pub(crate) fn new(name: impl Into<String>, capacity: usize) -> Self {
        Self {
            name: name.into(),
            capacity,
            queue: Mutex::new(VecDeque::new()),
            nonempty: Condvar::new(),
            counters: ShardCounters::new(),
        }
    }

    pub(crate) fn name(&self) -> &str {
        &self.name
    }

    pub(crate) fn counters(&self) -> &ShardCounters {
        &self.counters
    }

    /// Enqueues a job, or hands it back if the shard is at capacity
    /// (counted as shed). `on_enqueued` runs under the queue lock, so
    /// anything it publishes is visible before any worker can drain the
    /// job — the engine counts `received` there.
    pub(crate) fn try_push(&self, job: J, on_enqueued: impl FnOnce()) -> Result<(), J> {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        if queue.len() >= self.capacity {
            drop(queue);
            self.counters.on_shed();
            return Err(job);
        }
        queue.push_back(job);
        self.counters.on_enqueued();
        on_enqueued();
        drop(queue);
        self.nonempty.notify_one();
        Ok(())
    }

    /// Blocks until jobs are available or `shutdown` is set, then
    /// drains up to `max` jobs. Returns `None` exactly when shutting
    /// down with an empty queue — the worker-exit condition (pending
    /// jobs are still drained and answered during shutdown).
    pub(crate) fn pop_batch(&self, max: usize, shutdown: &AtomicBool) -> Option<Vec<J>> {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if !queue.is_empty() {
                let take = queue.len().min(max);
                return Some(queue.drain(..take).collect());
            }
            if shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .nonempty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Wakes every waiting worker (shutdown broadcast).
    pub(crate) fn notify_all(&self) {
        self.nonempty.notify_all();
    }

    /// Jobs currently queued.
    pub(crate) fn depth(&self) -> usize {
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Point-in-time view for `stats` and the exposition.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        self.counters.snapshot(&self.name, self.depth())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn push_pop_respects_capacity_and_counts() {
        let shard = Shard::new("m", 2);
        let shutdown = AtomicBool::new(false);
        assert!(shard.try_push(1, || {}).is_ok());
        assert!(shard.try_push(2, || {}).is_ok());
        assert_eq!(shard.try_push(3, || {}), Err(3));
        assert_eq!(shard.depth(), 2);
        let snap = shard.snapshot();
        assert_eq!((snap.enqueued, snap.shed, snap.queue_depth), (2, 1, 2));
        let batch = shard.pop_batch(8, &shutdown).expect("has jobs");
        assert_eq!(batch, vec![1, 2]);
        assert_eq!(shard.depth(), 0);
    }

    #[test]
    fn on_enqueued_runs_under_the_lock_before_any_drain() {
        let shard = Arc::new(Shard::new("m", 8));
        let flag = Arc::new(AtomicBool::new(false));
        let shutdown = Arc::new(AtomicBool::new(false));
        let consumer = {
            let (shard, flag, shutdown) = (shard.clone(), flag.clone(), shutdown.clone());
            std::thread::spawn(move || {
                let batch = shard.pop_batch(1, &shutdown).expect("job arrives");
                // The enqueue callback's store must be visible here.
                assert!(flag.load(Ordering::Acquire), "callback not ordered");
                batch[0]
            })
        };
        shard
            .try_push(7, || flag.store(true, Ordering::Release))
            .expect("capacity 8");
        assert_eq!(consumer.join().expect("consumer clean"), 7);
    }

    #[test]
    fn shutdown_drains_pending_then_returns_none() {
        let shard: Shard<u32> = Shard::new("m", 8);
        let shutdown = AtomicBool::new(false);
        shard.try_push(5, || {}).expect("capacity");
        shutdown.store(true, Ordering::Release);
        shard.notify_all();
        assert_eq!(shard.pop_batch(4, &shutdown), Some(vec![5]));
        assert_eq!(shard.pop_batch(4, &shutdown), None);
    }
}
