//! The length-prefixed binary wire protocol (version 1).
//!
//! The text line protocol pays a UTF-8 parse and a shortest-roundtrip
//! float format on every request; this module is the fast path that
//! avoids both. A connection speaks either protocol — the server sniffs
//! the **first byte**: [`MAGIC`]`[0]` is deliberately non-ASCII, and
//! every text verb starts with an ASCII letter, so one byte decides.
//! A text connection can also *upgrade* mid-stream by sending the
//! negotiation line `hello proto=binary` (see [`HELLO_BINARY`]), which
//! a pre-binary server answers with an ordinary `err` line — the
//! client's cue to fall back to text.
//!
//! # Frame layout (all integers little-endian)
//!
//! | offset | size | field |
//! |-------:|-----:|-------|
//! | 0      | 2    | magic `0xBA 0x9E` |
//! | 2      | 1    | version (`0x01`) |
//! | 3      | 4    | `u32` body length (≤ [`MAX_BODY`]) |
//! | 7      | 1    | opcode |
//! | 8      | 8    | `u64` client-assigned request id |
//! | 16     | 2    | `u16` trace-context length `T` (≤ [`MAX_TRACE_CONTEXT`]) |
//! | 18     | `T`  | trace context, UTF-8 (opaque; threaded into obs traces) |
//! | 18+T   | rest | opcode-specific payload |
//!
//! The body length covers everything after the 7-byte prelude (opcode
//! through payload). Request ids are chosen by the client and echoed on
//! the reply frame, so replies may arrive out of order over one
//! connection — a fast model's answer is never stuck behind a slow
//! model's — and a future hedging client can discard the loser.
//!
//! # Decoding errors, by blast radius
//!
//! * [`FrameError::Incomplete`] — more bytes needed; not an error.
//! * [`FrameError::Malformed`] — the prelude was sound (the frame's
//!   extent is known) but the body is garbage. The connection answers
//!   `err malformed` *for that request id* and keeps serving: resync is
//!   trivial because the length prefix already told us where the next
//!   frame starts.
//! * [`FrameError::Fatal`] — the prelude itself is unusable (wrong
//!   magic, unsupported version, oversized length). There is no way to
//!   find the next frame boundary, so the connection answers once and
//!   closes.
//!
//! Memory stays bounded through all of it: nothing is allocated before
//! the declared length passes the [`MAX_BODY`] check, so a hostile
//! 4 GiB length prefix costs a 4-byte read, not an allocation.

use crate::error::ServeError;
use crate::metrics::Priority;
use bagpred_workloads::{Benchmark, Workload};
use std::time::Duration;

/// Frame magic. The first byte is non-ASCII on purpose: it is what lets
/// the server tell a binary connection from a text one by peeking a
/// single byte.
pub const MAGIC: [u8; 2] = [0xBA, 0x9E];

/// Current (and only) protocol version.
pub const VERSION: u8 = 1;

/// Upper bound on a frame body. Large enough for any reply this service
/// produces (the multi-line `metrics` exposition included), small enough
/// that a hostile length prefix cannot balloon memory.
pub const MAX_BODY: usize = 1 << 20;

/// Upper bound on the per-frame trace-context field.
pub const MAX_TRACE_CONTEXT: usize = 1024;

/// Bytes before the body: magic (2) + version (1) + length (4).
pub const PRELUDE_LEN: usize = 7;

/// Fixed body header: opcode (1) + request id (8) + trace-context len (2).
const BODY_HEADER_LEN: usize = 11;

/// The text-protocol line that upgrades a connection to binary frames.
/// Answered with [`HELLO_BINARY_OK`] by a binary-capable server and with
/// an `err` line by anything older — which is exactly the signal a
/// client needs to fall back to text.
pub const HELLO_BINARY: &str = "hello proto=binary";

/// The affirmative reply to [`HELLO_BINARY`]; every byte after it is a
/// binary frame.
pub const HELLO_BINARY_OK: &str = "ok proto=binary version=1";

/// Frame opcodes. Requests use the low range, replies the high range, so
/// a misdirected frame is caught as malformed rather than misparsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Request: a structurally encoded predict (the measured fast path).
    Predict = 0x01,
    /// Request: any text-protocol line carried in a frame. Keeps the
    /// whole command surface (stats/schedule/admin/...) available to
    /// binary clients without duplicating every encoding.
    Line = 0x02,
    /// Request: the actual runtime observed after acting on the
    /// prediction that carried this frame's request id — the frame id
    /// *is* the join key back to the recorded prediction, so closing
    /// the loop costs eight payload bytes.
    Outcome = 0x03,
    /// Request: cancel the in-flight request whose id is carried in the
    /// payload (the frame's own request id tags the cancel command's
    /// reply). Answered `ok cancel=pending` when the target was still
    /// queued and `ok cancel=late` when it had already been picked up,
    /// served, or was never in flight — the hedging client treats both
    /// as success.
    Cancel = 0x04,
    /// Reply: a prediction, with the f64 carried as raw bits — no float
    /// formatting on the server, no parsing on the client, and exact
    /// bit-identity with the in-process engine for free.
    Prediction = 0x81,
    /// Reply: a text-protocol reply line carried in a frame (the answer
    /// to [`Opcode::Line`] requests and non-prediction outcomes).
    LineReply = 0x82,
    /// Reply: a typed error — one-byte code plus the human-readable
    /// message the text protocol would have sent after `err `.
    Error = 0xEE,
}

impl Opcode {
    fn from_byte(byte: u8) -> Option<Self> {
        match byte {
            0x01 => Some(Opcode::Predict),
            0x02 => Some(Opcode::Line),
            0x03 => Some(Opcode::Outcome),
            0x04 => Some(Opcode::Cancel),
            0x81 => Some(Opcode::Prediction),
            0x82 => Some(Opcode::LineReply),
            0xEE => Some(Opcode::Error),
            _ => None,
        }
    }
}

/// Machine-readable error codes for [`Opcode::Error`] frames, mirroring
/// [`ServeError`] variants. The message alongside stays authoritative
/// for humans; the code is what a hedging client switches on.
pub mod error_code {
    /// Queue full — retry with backoff.
    pub const OVERLOADED: u8 = 1;
    /// Service shutting down.
    pub const SHUTTING_DOWN: u8 = 2;
    /// Request failed validation.
    pub const BAD_REQUEST: u8 = 3;
    /// Unknown model name.
    pub const UNKNOWN_MODEL: u8 = 4;
    /// Snapshot decode/verify failure.
    pub const SNAPSHOT: u8 = 5;
    /// Model cannot serve this request shape.
    pub const UNSUPPORTED: u8 = 6;
    /// Admin command on a non-admin listener.
    pub const ADMIN_DISABLED: u8 = 7;
    /// Worker panic, isolated and answered.
    pub const INTERNAL: u8 = 8;
    /// Model quarantined.
    pub const UNAVAILABLE: u8 = 9;
    /// Deadline expired before pickup.
    pub const DEADLINE: u8 = 10;
    /// Snapshot directory unusable.
    pub const SNAPSHOT_DIR: u8 = 11;
    /// Binary frame failed to decode.
    pub const MALFORMED: u8 = 12;
    /// Request cancelled by id before a worker picked it up.
    pub const CANCELLED: u8 = 13;
}

/// The [`error_code`] for a [`ServeError`].
pub fn code_of(err: &ServeError) -> u8 {
    match err {
        ServeError::Overloaded => error_code::OVERLOADED,
        ServeError::ShuttingDown => error_code::SHUTTING_DOWN,
        ServeError::BadRequest(_) => error_code::BAD_REQUEST,
        ServeError::UnknownModel(_) => error_code::UNKNOWN_MODEL,
        ServeError::Snapshot(_) => error_code::SNAPSHOT,
        ServeError::Unsupported(_) => error_code::UNSUPPORTED,
        ServeError::AdminDisabled => error_code::ADMIN_DISABLED,
        ServeError::Internal(_) => error_code::INTERNAL,
        ServeError::Unavailable(_) => error_code::UNAVAILABLE,
        ServeError::DeadlineExceeded => error_code::DEADLINE,
        ServeError::SnapshotDir(_) => error_code::SNAPSHOT_DIR,
        ServeError::Malformed(_) => error_code::MALFORMED,
        ServeError::Cancelled => error_code::CANCELLED,
    }
}

/// The opcode-specific contents of a frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// [`Opcode::Predict`].
    Predict {
        /// Explicit model name; `None` picks a registered default.
        model: Option<String>,
        /// The co-running applications.
        apps: Vec<Workload>,
        /// Freshness budget, like the text protocol's `deadline_ms=N`.
        deadline: Option<Duration>,
        /// Priority class for brownout shedding (one byte on the wire;
        /// zero — the default — means `Normal`).
        priority: Priority,
        /// When this predict is the *hedge* copy of an earlier attempt,
        /// the primary attempt's request id. The engine uses it to
        /// deduplicate the pair so per-model stats and the pending
        /// outcome ring count the logical request exactly once.
        hedge_of: Option<u64>,
    },
    /// [`Opcode::Line`]: a text-protocol request line.
    Line(String),
    /// [`Opcode::Outcome`]: the observed actual runtime, in whole
    /// microseconds, for the prediction whose request id this frame
    /// carries.
    Outcome {
        /// Observed actual runtime in microseconds.
        actual_us: u64,
    },
    /// [`Opcode::Cancel`]: drop the queued request with this id.
    Cancel {
        /// Request id of the in-flight request to cancel (distinct from
        /// the frame's own request id, which tags the cancel's reply).
        target: u64,
    },
    /// [`Opcode::Prediction`].
    Prediction {
        /// Name of the model that produced the prediction.
        model: String,
        /// Predicted bag GPU time, seconds (carried as raw bits).
        predicted_s: f64,
    },
    /// [`Opcode::LineReply`]: a text-protocol reply (may be multi-line,
    /// e.g. the `metrics` exposition — the length prefix frames it).
    LineReply(String),
    /// [`Opcode::Error`].
    Error {
        /// One of [`error_code`].
        code: u8,
        /// The text the line protocol would send after `err `.
        message: String,
    },
}

impl Payload {
    /// The opcode this payload encodes as.
    pub fn opcode(&self) -> Opcode {
        match self {
            Payload::Predict { .. } => Opcode::Predict,
            Payload::Line(_) => Opcode::Line,
            Payload::Outcome { .. } => Opcode::Outcome,
            Payload::Cancel { .. } => Opcode::Cancel,
            Payload::Prediction { .. } => Opcode::Prediction,
            Payload::LineReply(_) => Opcode::LineReply,
            Payload::Error { .. } => Opcode::Error,
        }
    }
}

/// One decoded frame: request id, optional trace context, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Client-assigned id echoed on the reply, enabling out-of-order
    /// replies and hedged-request correlation.
    pub request_id: u64,
    /// Opaque upstream trace context, threaded into the request's
    /// [`bagpred_obs::Trace`].
    pub trace_context: Option<String>,
    /// The opcode-specific contents.
    pub payload: Payload,
}

impl Frame {
    /// A frame with no trace context.
    pub fn new(request_id: u64, payload: Payload) -> Self {
        Frame {
            request_id,
            trace_context: None,
            payload,
        }
    }
}

/// Why a decode did not produce a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Not enough bytes yet; `need` is the total frame size once known
    /// (prelude + body), or [`PRELUDE_LEN`] while even the prelude is
    /// short. Not an error — read more and retry.
    Incomplete {
        /// Total bytes the frame needs from its first byte.
        need: usize,
    },
    /// The body is garbage but the frame boundary is known: answer
    /// `err malformed` and keep the connection.
    Malformed(String),
    /// The prelude is unusable — no way to resync; close after one
    /// error reply.
    Fatal(String),
}

impl FrameError {
    /// Converts into the wire-facing [`ServeError`] (both recoverable
    /// and fatal decode failures answer as `err malformed`; what differs
    /// is whether the connection survives).
    pub fn to_serve_error(&self) -> ServeError {
        match self {
            FrameError::Incomplete { .. } => ServeError::Malformed("incomplete frame".into()),
            FrameError::Malformed(why) | FrameError::Fatal(why) => {
                ServeError::Malformed(why.clone())
            }
        }
    }
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete { need } => {
                write!(f, "incomplete frame (need {need} bytes)")
            }
            FrameError::Malformed(why) => write!(f, "malformed frame: {why}"),
            FrameError::Fatal(why) => write!(f, "unrecoverable frame: {why}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encodes a frame to bytes (prelude + body).
pub fn encode(frame: &Frame) -> Vec<u8> {
    let context = frame.trace_context.as_deref().unwrap_or("");
    debug_assert!(context.len() <= MAX_TRACE_CONTEXT);
    let mut body = Vec::with_capacity(BODY_HEADER_LEN + context.len() + 32);
    body.push(frame.payload.opcode() as u8);
    body.extend_from_slice(&frame.request_id.to_le_bytes());
    body.extend_from_slice(&(context.len() as u16).to_le_bytes());
    body.extend_from_slice(context.as_bytes());
    match &frame.payload {
        Payload::Predict {
            model,
            apps,
            deadline,
            priority,
            hedge_of,
        } => {
            let deadline_ms = deadline.map(|d| u32::try_from(d.as_millis()).unwrap_or(u32::MAX));
            body.push(u8::from(deadline_ms.is_some()));
            if let Some(ms) = deadline_ms {
                body.extend_from_slice(&ms.to_le_bytes());
            }
            body.push(priority.wire_code());
            body.push(u8::from(hedge_of.is_some()));
            if let Some(primary) = hedge_of {
                body.extend_from_slice(&primary.to_le_bytes());
            }
            let name = model.as_deref().unwrap_or("");
            debug_assert!(name.len() <= u8::MAX as usize);
            body.push(name.len() as u8);
            body.extend_from_slice(name.as_bytes());
            debug_assert!(apps.len() <= u8::MAX as usize);
            body.push(apps.len() as u8);
            for app in apps {
                body.push(benchmark_code(app.benchmark()));
                body.extend_from_slice(&(app.batch_size() as u32).to_le_bytes());
            }
        }
        Payload::Line(text) | Payload::LineReply(text) => {
            body.extend_from_slice(text.as_bytes());
        }
        Payload::Outcome { actual_us } => {
            body.extend_from_slice(&actual_us.to_le_bytes());
        }
        Payload::Cancel { target } => {
            body.extend_from_slice(&target.to_le_bytes());
        }
        Payload::Prediction { model, predicted_s } => {
            debug_assert!(model.len() <= u8::MAX as usize);
            body.push(model.len() as u8);
            body.extend_from_slice(model.as_bytes());
            body.extend_from_slice(&predicted_s.to_bits().to_le_bytes());
        }
        Payload::Error { code, message } => {
            body.push(*code);
            body.extend_from_slice(message.as_bytes());
        }
    }
    debug_assert!(body.len() <= MAX_BODY);
    let mut out = Vec::with_capacity(PRELUDE_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Validates a prelude and returns the body length it declares.
///
/// # Errors
///
/// [`FrameError::Incomplete`] under [`PRELUDE_LEN`] bytes;
/// [`FrameError::Fatal`] on wrong magic, unsupported version, or a
/// length beyond [`MAX_BODY`] — in every fatal case the stream has no
/// recoverable frame boundary.
pub fn decode_prelude(bytes: &[u8]) -> Result<usize, FrameError> {
    if bytes.len() < PRELUDE_LEN {
        return Err(FrameError::Incomplete { need: PRELUDE_LEN });
    }
    if bytes[..2] != MAGIC {
        return Err(FrameError::Fatal(format!(
            "bad magic {:02x}{:02x} (expected {:02x}{:02x})",
            bytes[0], bytes[1], MAGIC[0], MAGIC[1]
        )));
    }
    if bytes[2] != VERSION {
        return Err(FrameError::Fatal(format!(
            "unsupported protocol version {} (this server speaks {VERSION})",
            bytes[2]
        )));
    }
    let len = u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as usize;
    if len > MAX_BODY {
        return Err(FrameError::Fatal(format!(
            "declared body length {len} exceeds the {MAX_BODY}-byte bound"
        )));
    }
    if len < BODY_HEADER_LEN {
        // Too short for opcode + id + trace length: the boundary is
        // known (we could skip `len` bytes) but there is no request id
        // to answer, so treat it as malformed with id 0.
        return Err(FrameError::Malformed(format!(
            "body length {len} is shorter than the {BODY_HEADER_LEN}-byte frame header"
        )));
    }
    Ok(len)
}

/// The request id of a body, readable even when the rest is garbage —
/// so a malformed-frame error can still name the request it answers.
pub fn peek_request_id(body: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = body.get(1..9)?.try_into().ok()?;
    Some(u64::from_le_bytes(bytes))
}

/// Decodes a frame body (the bytes after a validated prelude).
///
/// # Errors
///
/// [`FrameError::Malformed`] on any structural problem — unknown
/// opcode, truncated payload, invalid UTF-8, out-of-range benchmark
/// code. The caller already knows the frame boundary, so these are
/// recoverable per frame.
pub fn decode_body(body: &[u8]) -> Result<Frame, FrameError> {
    let mut r = Reader { body, at: 0 };
    let opcode_byte = r.u8("opcode")?;
    let opcode = Opcode::from_byte(opcode_byte)
        .ok_or_else(|| FrameError::Malformed(format!("unknown opcode 0x{opcode_byte:02x}")))?;
    let request_id = r.u64("request id")?;
    let context_len = r.u16("trace-context length")? as usize;
    if context_len > MAX_TRACE_CONTEXT {
        return Err(FrameError::Malformed(format!(
            "trace context of {context_len} bytes exceeds the {MAX_TRACE_CONTEXT}-byte bound"
        )));
    }
    let context = r.str(context_len, "trace context")?;
    let trace_context = (!context.is_empty()).then(|| context.to_string());
    let payload = match opcode {
        Opcode::Predict => {
            let has_deadline = r.u8("deadline flag")?;
            let deadline = match has_deadline {
                0 => None,
                1 => Some(Duration::from_millis(r.u32("deadline_ms")? as u64)),
                other => {
                    return Err(FrameError::Malformed(format!(
                        "deadline flag must be 0 or 1, got {other}"
                    )))
                }
            };
            let prio_code = r.u8("priority")?;
            let priority = Priority::from_wire_code(prio_code).ok_or_else(|| {
                FrameError::Malformed(format!("unknown priority code {prio_code}"))
            })?;
            let hedge_of = match r.u8("hedge flag")? {
                0 => None,
                1 => Some(r.u64("hedge primary id")?),
                other => {
                    return Err(FrameError::Malformed(format!(
                        "hedge flag must be 0 or 1, got {other}"
                    )))
                }
            };
            let name_len = r.u8("model-name length")? as usize;
            let name = r.str(name_len, "model name")?;
            let model = (!name.is_empty()).then(|| name.to_string());
            let napps = r.u8("app count")? as usize;
            let mut apps = Vec::with_capacity(napps);
            for i in 0..napps {
                let code = r.u8("benchmark code")?;
                let benchmark = benchmark_from_code(code).ok_or_else(|| {
                    FrameError::Malformed(format!("app {i}: unknown benchmark code {code}"))
                })?;
                let batch = r.u32("batch size")? as usize;
                apps.push(Workload::new(benchmark, batch));
            }
            Payload::Predict {
                model,
                apps,
                deadline,
                priority,
                hedge_of,
            }
        }
        Opcode::Line => Payload::Line(r.rest_str("request line")?.to_string()),
        Opcode::Outcome => Payload::Outcome {
            actual_us: r.u64("actual_us")?,
        },
        Opcode::Cancel => Payload::Cancel {
            target: r.u64("cancel target id")?,
        },
        Opcode::Prediction => {
            let name_len = r.u8("model-name length")? as usize;
            let model = r.str(name_len, "model name")?.to_string();
            let predicted_s = f64::from_bits(r.u64("prediction bits")?);
            Payload::Prediction { model, predicted_s }
        }
        Opcode::LineReply => Payload::LineReply(r.rest_str("reply text")?.to_string()),
        Opcode::Error => {
            let code = r.u8("error code")?;
            let message = r.rest_str("error message")?.to_string();
            Payload::Error { code, message }
        }
    };
    if !r.done() {
        return Err(FrameError::Malformed(format!(
            "{} trailing bytes after the payload",
            body.len() - r.at
        )));
    }
    Ok(Frame {
        request_id,
        trace_context,
        payload,
    })
}

/// Decodes one complete frame from the front of `bytes`, returning it
/// with the number of bytes consumed. Convenience for buffered callers
/// (the property tests and the client); the server decodes prelude and
/// body separately to keep reads bounded.
///
/// # Errors
///
/// See [`decode_prelude`] and [`decode_body`].
pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), FrameError> {
    let body_len = decode_prelude(bytes)?;
    let total = PRELUDE_LEN + body_len;
    if bytes.len() < total {
        return Err(FrameError::Incomplete { need: total });
    }
    let frame = decode_body(&bytes[PRELUDE_LEN..total])?;
    Ok((frame, total))
}

/// Bounds-checked cursor over a frame body; every failure names the
/// field it was reading, so `err malformed` replies are debuggable.
struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], FrameError> {
        let end = self.at.checked_add(n).filter(|&e| e <= self.body.len());
        match end {
            Some(end) => {
                let slice = &self.body[self.at..end];
                self.at = end;
                Ok(slice)
            }
            None => Err(FrameError::Malformed(format!(
                "truncated frame: {what} needs {n} bytes, {} left",
                self.body.len() - self.at
            ))),
        }
    }

    fn u8(&mut self, what: &str) -> Result<u8, FrameError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, FrameError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, what: &str) -> Result<u32, FrameError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, FrameError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes taken")))
    }

    fn str(&mut self, n: usize, what: &str) -> Result<&'a str, FrameError> {
        std::str::from_utf8(self.take(n, what)?)
            .map_err(|_| FrameError::Malformed(format!("{what} is not valid UTF-8")))
    }

    fn rest_str(&mut self, what: &str) -> Result<&'a str, FrameError> {
        let n = self.body.len() - self.at;
        self.str(n, what)
    }

    fn done(&self) -> bool {
        self.at == self.body.len()
    }
}

/// Stable one-byte code for a benchmark: its index in
/// [`Benchmark::ALL`]. Frozen by the version byte — a future reorder of
/// `ALL` must bump [`VERSION`].
pub fn benchmark_code(benchmark: Benchmark) -> u8 {
    Benchmark::ALL
        .iter()
        .position(|&b| b == benchmark)
        .expect("every benchmark is in ALL") as u8
}

/// Inverse of [`benchmark_code`].
pub fn benchmark_from_code(code: u8) -> Option<Benchmark> {
    Benchmark::ALL.get(code as usize).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bagpred_workloads::Benchmark;

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::new(
                1,
                Payload::Predict {
                    model: None,
                    apps: vec![
                        Workload::new(Benchmark::Sift, 20),
                        Workload::new(Benchmark::Knn, 40),
                    ],
                    deadline: None,
                    priority: Priority::Normal,
                    hedge_of: None,
                },
            ),
            Frame {
                request_id: u64::MAX,
                trace_context: Some("tp=00-abcdef-01".into()),
                payload: Payload::Predict {
                    model: Some("pair-tree".into()),
                    apps: vec![
                        Workload::new(Benchmark::FaceDet, 1),
                        Workload::new(Benchmark::Svm, 4_000_000),
                    ],
                    deadline: Some(Duration::from_millis(250)),
                    priority: Priority::Low,
                    hedge_of: Some(41),
                },
            },
            Frame::new(7, Payload::Line("stats model=pair-tree".into())),
            Frame::new(
                7,
                Payload::Outcome {
                    actual_us: 1_234_567,
                },
            ),
            Frame::new(12, Payload::Cancel { target: 11 }),
            Frame::new(
                8,
                Payload::Prediction {
                    model: "pair-tree".into(),
                    predicted_s: 1.000000000000004,
                },
            ),
            Frame::new(9, Payload::LineReply("ok models=2\nsecond line".into())),
            Frame::new(
                10,
                Payload::Error {
                    code: error_code::OVERLOADED,
                    message: "overloaded: request queue is full, retry later".into(),
                },
            ),
        ]
    }

    #[test]
    fn every_opcode_round_trips_exactly() {
        for frame in sample_frames() {
            let bytes = encode(&frame);
            let (decoded, consumed) = decode(&bytes).expect("decodes");
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn prediction_bits_survive_the_wire_exactly() {
        for value in [0.0, -0.0, 1.5e-300, f64::MAX, f64::NAN, 0.1 + 0.2] {
            let frame = Frame::new(
                3,
                Payload::Prediction {
                    model: "m".into(),
                    predicted_s: value,
                },
            );
            let (decoded, _) = decode(&encode(&frame)).expect("decodes");
            let Payload::Prediction { predicted_s, .. } = decoded.payload else {
                panic!("wrong payload")
            };
            assert_eq!(predicted_s.to_bits(), value.to_bits());
        }
    }

    #[test]
    fn first_byte_distinguishes_binary_from_every_text_verb() {
        assert!(!MAGIC[0].is_ascii());
        for verb in [
            "predict", "schedule", "stats", "models", "metrics", "health", "trace", "observe",
            "cancel", "load", "save", "reload", "quit", "exit", "hello",
        ] {
            assert!(verb.as_bytes()[0].is_ascii_alphabetic());
            assert_ne!(verb.as_bytes()[0], MAGIC[0]);
        }
    }

    #[test]
    fn hello_lines_contain_no_frame_magic() {
        // The upgrade line must be safely parseable by a text-only
        // server (pure ASCII) so the fallback path works.
        assert!(HELLO_BINARY.is_ascii());
        assert!(HELLO_BINARY_OK.is_ascii());
    }

    #[test]
    fn short_input_reports_incomplete_with_the_total_need() {
        let frame = sample_frames().remove(0);
        let bytes = encode(&frame);
        assert_eq!(
            decode(&bytes[..3]),
            Err(FrameError::Incomplete { need: PRELUDE_LEN })
        );
        let Err(FrameError::Incomplete { need }) = decode(&bytes[..PRELUDE_LEN + 2]) else {
            panic!("must be incomplete")
        };
        assert_eq!(need, bytes.len());
    }

    #[test]
    fn bad_magic_version_and_oversized_length_are_fatal() {
        let mut bytes = encode(&sample_frames().remove(0));
        let original = bytes.clone();

        bytes[0] = b'p'; // looks like text
        assert!(matches!(decode(&bytes), Err(FrameError::Fatal(_))));

        bytes = original.clone();
        bytes[2] = 9; // future version
        assert!(matches!(decode(&bytes), Err(FrameError::Fatal(_))));

        bytes = original.clone();
        bytes[3..7].copy_from_slice(&u32::MAX.to_le_bytes()); // 4 GiB claim
        let err = decode(&bytes).expect_err("oversized");
        assert!(matches!(err, FrameError::Fatal(_)), "{err:?}");
    }

    #[test]
    fn body_garbage_is_malformed_not_fatal_and_keeps_the_request_id() {
        // Unknown opcode with an intact prelude: recoverable.
        let good = encode(&Frame::new(
            0x1234_5678_9ABC_DEF0,
            Payload::Line("stats".into()),
        ));
        let mut bytes = good.clone();
        bytes[PRELUDE_LEN] = 0x7F; // no such opcode
        assert!(matches!(decode(&bytes), Err(FrameError::Malformed(_))));
        assert_eq!(
            peek_request_id(&bytes[PRELUDE_LEN..]),
            Some(0x1234_5678_9ABC_DEF0)
        );

        // Benchmark code out of range.
        let mut predict = encode(&sample_frames().remove(0));
        let last = predict.len() - 5; // first app's benchmark code byte
        predict[last] = 200;
        assert!(matches!(decode(&predict), Err(FrameError::Malformed(_))));

        // Invalid UTF-8 in a line payload.
        let mut line = good;
        let tail = line.len() - 1;
        line[tail] = 0xFF;
        assert!(matches!(decode(&line), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn benchmark_codes_are_stable_and_invertible() {
        for (i, &b) in Benchmark::ALL.iter().enumerate() {
            assert_eq!(benchmark_code(b) as usize, i);
            assert_eq!(benchmark_from_code(i as u8), Some(b));
        }
        assert_eq!(benchmark_from_code(Benchmark::ALL.len() as u8), None);
        // Frozen wire values (version 1): a reorder of ALL would silently
        // remap every client's requests — this pins the assignment.
        assert_eq!(benchmark_code(Benchmark::Fast), 0);
        assert_eq!(benchmark_code(Benchmark::Sift), 5);
        assert_eq!(benchmark_code(Benchmark::FaceDet), 8);
    }

    #[test]
    fn every_serve_error_has_a_distinct_wire_code() {
        let errors = [
            ServeError::Overloaded,
            ServeError::ShuttingDown,
            ServeError::BadRequest("x".into()),
            ServeError::UnknownModel("x".into()),
            ServeError::Snapshot("x".into()),
            ServeError::Unsupported("x".into()),
            ServeError::AdminDisabled,
            ServeError::Internal("x".into()),
            ServeError::Unavailable("x".into()),
            ServeError::DeadlineExceeded,
            ServeError::SnapshotDir("x".into()),
            ServeError::Malformed("x".into()),
            ServeError::Cancelled,
        ];
        let mut codes: Vec<u8> = errors.iter().map(code_of).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use bagpred_workloads::Benchmark;
    use proptest::prelude::*;

    #[allow(clippy::too_many_arguments)] // mirrors the proptest generator tuple
    fn frame_from(
        kind: usize,
        id: u64,
        ctx: &str,
        text: &str,
        napps: usize,
        picks: &[usize],
        batches: &[usize],
        code: u8,
        bits: u64,
        deadline: Option<u32>,
    ) -> Frame {
        let apps: Vec<Workload> = (0..napps)
            .map(|i| {
                Workload::new(
                    Benchmark::ALL[picks[i % picks.len()] % Benchmark::ALL.len()],
                    1 + batches[i % batches.len()] % 1_000_000,
                )
            })
            .collect();
        let payload = match kind % 7 {
            0 => Payload::Predict {
                model: (!text.is_empty()).then(|| text.chars().take(64).collect()),
                apps,
                deadline: deadline.map(|ms| Duration::from_millis(ms as u64)),
                priority: Priority::ALL[napps % Priority::ALL.len()],
                hedge_of: bits.is_multiple_of(2).then_some(id ^ 1),
            },
            1 => Payload::Line(text.into()),
            2 => Payload::Prediction {
                model: text.chars().take(64).collect(),
                predicted_s: f64::from_bits(bits),
            },
            3 => Payload::LineReply(text.into()),
            4 => Payload::Outcome { actual_us: bits },
            5 => Payload::Cancel { target: bits },
            _ => Payload::Error {
                code,
                message: text.into(),
            },
        };
        Frame {
            request_id: id,
            trace_context: (!ctx.is_empty()).then(|| ctx.into()),
            payload,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Round-trip over every opcode with arbitrary field contents:
        /// encode → decode is the identity (NaN predictions compare by
        /// bits via the PartialEq on Payload only when non-NaN, so the
        /// generator sticks to finite bit patterns' equality through
        /// the dedicated unit test above).
        #[test]
        fn round_trip_is_identity(
            kind in 0usize..7,
            id in any::<u64>(),
            ctx_bytes in proptest::collection::vec(97u8..123, 0..41),
            text_bytes in proptest::collection::vec(32u8..127, 0..201),
            napps in 0usize..6,
            picks in proptest::collection::vec(0usize..9, 1..7),
            batches in proptest::collection::vec(1usize..1_000_000, 1..7),
            code in 0u8..14,
            bits in 0u64..(1u64 << 62),
            has_deadline in any::<bool>(),
            deadline_ms in 0u32..600_000,
        ) {
            let ctx = String::from_utf8(ctx_bytes).expect("ascii");
            let text = String::from_utf8(text_bytes).expect("ascii");
            let frame = frame_from(
                kind, id, &ctx, &text, napps, &picks, &batches, code, bits,
                has_deadline.then_some(deadline_ms),
            );
            let bytes = encode(&frame);
            let (decoded, consumed) = decode(&bytes).expect("round trip decodes");
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, frame);
        }

        /// Decoder robustness: arbitrary mutations of a valid frame —
        /// truncation, byte flips, garbage append — never panic, never
        /// allocate past the declared-length bound, and always yield a
        /// typed `FrameError` or a structurally valid frame.
        #[test]
        fn mutated_frames_fail_typed_never_panic(
            kind in 0usize..7,
            id in any::<u64>(),
            text_bytes in proptest::collection::vec(32u8..127, 0..81),
            cut in 0usize..400,
            flip_at in 0usize..400,
            flip_to in any::<u8>(),
            append in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let text = String::from_utf8(text_bytes).expect("ascii");
            let frame = frame_from(kind, id, "", &text, 2, &[1, 2], &[10, 20], 3, 42, None);
            let mut bytes = encode(&frame);
            if flip_at < bytes.len() {
                bytes[flip_at] = flip_to;
            }
            bytes.truncate(bytes.len().saturating_sub(cut % (bytes.len() + 1)));
            bytes.extend_from_slice(&append);
            match decode(&bytes) {
                Ok((frame, consumed)) => {
                    prop_assert!(consumed <= bytes.len());
                    // Whatever decoded re-encodes without panicking.
                    let _ = encode(&frame);
                }
                Err(FrameError::Incomplete { need }) => {
                    // The decoder may only demand bounded frames.
                    prop_assert!(need <= PRELUDE_LEN + MAX_BODY);
                    prop_assert!(need > bytes.len());
                }
                Err(FrameError::Malformed(why)) | Err(FrameError::Fatal(why)) => {
                    prop_assert!(!why.is_empty());
                }
            }
        }

        /// Pure garbage never decodes as a frame unless it happens to
        /// start with the magic — and even then it errors typed, with
        /// bounded demands.
        #[test]
        fn garbage_streams_are_rejected_with_bounded_need(
            garbage in proptest::collection::vec(any::<u8>(), 0..200),
        ) {
            match decode(&garbage) {
                Ok((_, consumed)) => prop_assert!(consumed <= garbage.len()),
                Err(FrameError::Incomplete { need }) => {
                    prop_assert!(need <= PRELUDE_LEN + MAX_BODY);
                }
                Err(_) => {}
            }
        }
    }
}
