//! TCP front-end: a line-delimited protocol adapter over
//! [`PredictionService`].
//!
//! Pure `std::net`: an accept-loop thread plus one thread per
//! connection. Each connection reads newline-terminated requests,
//! forwards them to the engine, and writes exactly one `ok ...` or
//! `err ...` line per request. Concurrency control lives in the engine
//! (bounded queue + worker pool), so a slow or malicious client can at
//! worst occupy its own connection thread — it cannot starve other
//! clients of prediction workers.

use crate::engine::PredictionService;
use crate::protocol::{format_outcome, parse_request};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// A running TCP server. Dropping it stops the accept loop; in-flight
/// connections finish their current line and exit on the next read.
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections, answering from `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<PredictionService>) -> io::Result<Self> {
        Self::serve_listener(TcpListener::bind(addr)?, service)
    }

    /// Starts accepting on an already-bound listener. Lets a caller
    /// claim the port *before* paying for model training, so a bind
    /// conflict fails in milliseconds instead of after the training run.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures on the listener.
    pub fn serve_listener(
        listener: TcpListener,
        service: Arc<PredictionService>,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let service = Arc::clone(&service);
                let conn_stop = Arc::clone(&accept_stop);
                thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &conn_stop);
                });
            }
        });
        Ok(Self {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address — read the ephemeral port from here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins it. Idempotent. Does not shut
    /// down the underlying [`PredictionService`] — the caller owns that.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            // Unblock the accept() call with a throwaway connection.
            let _ = TcpStream::connect(self.local_addr);
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &PredictionService,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == "quit" || line == "exit" {
            break;
        }
        let outcome = match parse_request(line) {
            // Parse errors never reach the queue; they are answered
            // inline so malformed floods cannot shed well-formed load.
            Err(err) => Err(err),
            Ok(request) => service.call(request),
        };
        writer.write_all(format_outcome(&outcome).as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Request, ServiceConfig};
    use crate::testutil;
    use bagpred_core::Platforms;
    use std::io::BufRead;

    fn start() -> (Server, Arc<PredictionService>) {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
        (server, service)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).expect("writes");
            writer.write_all(b"\n").expect("writes");
            writer.flush().expect("flushes");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reads");
            replies.push(reply.trim_end().to_string());
        }
        replies
    }

    #[test]
    fn answers_predict_stats_and_models_over_tcp() {
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &["predict SIFT@20+KNN@40", "stats", "models"],
        );
        assert!(replies[0].starts_with("ok model="), "{}", replies[0]);
        assert!(replies[0].contains("predicted_s="), "{}", replies[0]);
        assert!(replies[1].starts_with("ok requests="), "{}", replies[1]);
        assert!(replies[2].starts_with("ok models=2"), "{}", replies[2]);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn malformed_lines_get_err_replies_and_connection_survives() {
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &["predict SIFT@20", "bogus", "predict SIFT@20+KNN@40"],
        );
        assert!(replies[0].starts_with("err bad request"), "{}", replies[0]);
        assert!(replies[1].starts_with("err bad request"), "{}", replies[1]);
        assert!(replies[2].starts_with("ok "), "{}", replies[2]);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn served_line_matches_in_process_call_byte_for_byte() {
        let (mut server, service) = start();
        let wire = roundtrip(
            server.local_addr(),
            &["predict model=pair-tree HOG@20+FAST@80"],
        )
        .remove(0);
        let direct = format_outcome(&service.call(Request::Predict {
            model: Some("pair-tree".into()),
            apps: vec![
                bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Hog, 20),
                bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Fast, 80),
            ],
        }));
        assert_eq!(wire, direct);
        server.shutdown();
        service.shutdown();
    }
}
