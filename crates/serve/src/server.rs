//! TCP front-end: the line-delimited text protocol and the
//! length-prefixed binary framing ([`crate::frame`]), auto-detected per
//! connection, over [`PredictionService`].
//!
//! Pure `std::net`: an accept-loop thread plus one thread per
//! connection. The dialect is decided by the first byte the client
//! sends — the binary magic's first byte is not printable ASCII, and
//! every text verb starts with an ASCII letter — and a text connection
//! can also upgrade mid-stream by sending the
//! [`frame::HELLO_BINARY`] line. A text connection reads
//! newline-terminated requests, forwards them to the engine, and writes
//! exactly one `ok ...` or `err ...` line per request, in order. A
//! binary connection is multiplexed: requests carry client-assigned ids,
//! a dedicated writer thread forwards replies in *completion* order, and
//! a slow request does not head-of-line-block the replies behind it.
//! Concurrency control lives in the engine (bounded per-shard queues +
//! worker pools), so a slow or malicious client can at worst occupy its
//! own connection thread — it cannot starve other clients of prediction
//! workers. The filesystem-touching admin commands
//! (`load`/`save`/`reload`) are refused with `err admin disabled` unless
//! the listener was started with [`ServerConfig::admin`]; even then the
//! engine confines their paths to the configured snapshot directory, so
//! no TCP client can read or write arbitrary files.
//!
//! # Connection lifecycle
//!
//! Every connection thread is tracked in a registry of join handles, and
//! both directions of its socket are bounded: reads by
//! [`ServerConfig::read_timeout`] — a half-open client that never sends
//! a byte cannot pin its thread in `read`; the thread wakes at least
//! once per timeout and re-checks the stop flag — and writes by
//! [`ServerConfig::write_timeout`] — a client that pipelines requests
//! but never drains replies fills its socket buffers and is
//! disconnected instead of pinning the thread in `write`.
//! [`Server::shutdown`] **drains**: it stops the accept loop (waking it
//! through a loopback connection, which also works when the server is
//! bound to a wildcard address like `0.0.0.0`), then joins every live
//! connection thread. In-flight requests finish — the engine answers
//! them and the client reads a complete final reply before EOF — and no
//! thread is leaked: when `shutdown` returns,
//! [`Server::active_connections`] is zero.

use crate::engine::{Outcome, PredictionService, Reply, Request};
use crate::error::ServeError;
use crate::fault::FaultSite;
use crate::frame::{self, Frame, Payload};
use crate::metrics::Priority;
use crate::protocol::{format_outcome, parse_request_options};
use bagpred_obs::{Stage, Trace};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Connection-handling knobs for the TCP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Upper bound on one blocking read: how long a silent connection
    /// thread can go without re-checking the stop flag, and therefore
    /// the drain latency an idle connection adds to `shutdown`.
    pub read_timeout: Duration,
    /// Upper bound on one blocking write. A client that pipelines
    /// requests but never reads replies eventually fills its socket
    /// buffers; without this bound the connection thread blocks in
    /// `write_all` forever and shutdown cannot drain it. A timed-out
    /// write is fatal to that connection (the reply would be torn
    /// anyway), so pick it generous enough for legitimately slow
    /// readers.
    pub write_timeout: Duration,
    /// Serve the `load`/`save`/`reload` admin commands on this listener.
    /// Off by default: they touch the server's filesystem, which an
    /// unauthenticated TCP client has no business doing. Even when
    /// enabled, the engine confines their paths to the configured
    /// snapshot directory.
    pub admin: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            read_timeout: Duration::from_millis(250),
            write_timeout: Duration::from_secs(5),
            admin: false,
        }
    }
}

/// The connection registry: join handles for every live connection
/// thread, so shutdown can drain instead of leaking them.
#[derive(Debug, Default)]
struct Lifecycle {
    stop: AtomicBool,
    next_id: AtomicU64,
    /// Handles of spawned connection threads, keyed by connection id.
    handles: Mutex<HashMap<u64, thread::JoinHandle<()>>>,
    /// Ids whose thread has finished its work; their handles are reaped
    /// (joined and removed) by the accept loop so the map stays bounded
    /// on a long-lived server. A thread cannot join itself, hence the
    /// two-phase mark-then-reap.
    finished: Mutex<Vec<u64>>,
}

impl Lifecycle {
    /// Joins and removes every handle whose thread marked itself done.
    fn reap_finished(&self) {
        let ids: Vec<u64> = {
            let mut finished = self.finished.lock().expect("finished lock poisoned");
            finished.drain(..).collect()
        };
        if ids.is_empty() {
            return;
        }
        let reaped: Vec<thread::JoinHandle<()>> = {
            let mut handles = self.handles.lock().expect("handles lock poisoned");
            ids.iter().filter_map(|id| handles.remove(id)).collect()
        };
        for handle in reaped {
            // The thread marked itself finished as its last action, so
            // this join returns immediately.
            let _ = handle.join();
        }
    }

    /// Joins every tracked connection thread. A thread notices the stop
    /// flag within one read timeout, and no single blocking operation
    /// outlasts the read/write timeouts plus one in-flight request, so
    /// this bounds shutdown instead of hanging on half-open peers or
    /// non-reading ones.
    fn drain(&self) {
        let all: Vec<thread::JoinHandle<()>> = {
            let mut handles = self.handles.lock().expect("handles lock poisoned");
            handles.drain().map(|(_, handle)| handle).collect()
        };
        for handle in all {
            let _ = handle.join();
        }
        self.finished
            .lock()
            .expect("finished lock poisoned")
            .clear();
    }

    /// Live connection threads (registered and not yet marked finished).
    fn active(&self) -> usize {
        let handles = self.handles.lock().expect("handles lock poisoned").len();
        let finished = self.finished.lock().expect("finished lock poisoned").len();
        handles.saturating_sub(finished)
    }
}

/// A running TCP server. Dropping it drains all connections; prefer an
/// explicit [`shutdown`](Server::shutdown).
pub struct Server {
    local_addr: SocketAddr,
    lifecycle: Arc<Lifecycle>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .field("active_connections", &self.lifecycle.active())
            .finish()
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// accepting connections, answering from `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<PredictionService>) -> io::Result<Self> {
        Self::serve_listener(TcpListener::bind(addr)?, service)
    }

    /// [`bind`](Self::bind) with explicit connection-handling knobs.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<PredictionService>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        Self::serve_listener_with(TcpListener::bind(addr)?, service, config)
    }

    /// Starts accepting on an already-bound listener. Lets a caller
    /// claim the port *before* paying for model training, so a bind
    /// conflict fails in milliseconds instead of after the training run.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures on the listener.
    pub fn serve_listener(
        listener: TcpListener,
        service: Arc<PredictionService>,
    ) -> io::Result<Self> {
        Self::serve_listener_with(listener, service, ServerConfig::default())
    }

    /// [`serve_listener`](Self::serve_listener) with explicit
    /// connection-handling knobs.
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures on the listener.
    pub fn serve_listener_with(
        listener: TcpListener,
        service: Arc<PredictionService>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let lifecycle = Arc::new(Lifecycle::default());
        let accept_lifecycle = Arc::clone(&lifecycle);
        let accept_handle = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_lifecycle.stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Replies to a pipelining client come as back-to-back
                // small writes; with Nagle on, the second sits in the
                // kernel until the client's delayed ACK (up to 40ms).
                // A socket that rejects the option still serves.
                let _ = stream.set_nodelay(true);
                // Opportunistically reclaim handles of finished threads
                // so the registry stays bounded on a long-lived server.
                accept_lifecycle.reap_finished();
                let id = accept_lifecycle.next_id.fetch_add(1, Ordering::Relaxed);
                let service = Arc::clone(&service);
                let conn_lifecycle = Arc::clone(&accept_lifecycle);
                let config = config.clone();
                let handle = thread::spawn(move || {
                    let _ = handle_connection(stream, &service, &conn_lifecycle.stop, &config);
                    conn_lifecycle
                        .finished
                        .lock()
                        .expect("finished lock poisoned")
                        .push(id);
                });
                accept_lifecycle
                    .handles
                    .lock()
                    .expect("handles lock poisoned")
                    .insert(id, handle);
            }
        });
        Ok(Self {
            local_addr,
            lifecycle,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address — read the ephemeral port from here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connection threads currently serving a client.
    pub fn active_connections(&self) -> usize {
        self.lifecycle.active()
    }

    /// Stops the accept loop, then **drains**: joins every connection
    /// thread, letting in-flight requests finish their final reply.
    /// Bounded by the read timeout plus the write timeout plus the
    /// longest in-flight request — a non-reading client cannot extend
    /// it, its blocked reply write times out and fails fatally — and
    /// when it returns, no connection thread remains. Idempotent. Does
    /// not shut down the underlying [`PredictionService`] — the caller
    /// owns that (and shuts it down *after* the server, so draining
    /// connections can still collect their replies).
    pub fn shutdown(&mut self) {
        self.lifecycle.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            // Unblock the accept() call with a throwaway connection. The
            // *bound* address may be a wildcard (`0.0.0.0`/`[::]`), which
            // is not connectable — aim at the loopback of the same
            // family, same port.
            let _ = TcpStream::connect(wake_addr(self.local_addr));
            let _ = handle.join();
        }
        self.lifecycle.drain();
    }
}

/// A connectable stand-in for the bound address: wildcard binds answer on
/// loopback, everything else is connectable as-is.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = if bound.ip().is_unspecified() {
        match bound {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        }
    } else {
        bound.ip()
    };
    SocketAddr::new(ip, bound.port())
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An optional second listener answering HTTP metric scrapes with the
/// same Prometheus text document as the `metrics` wire command
/// ([`PredictionService::exposition`]).
///
/// Deliberately minimal: one accept-loop thread answers scrapes inline
/// (a scrape renders one string and writes it — there is nothing to
/// parallelize), every request gets the full document regardless of
/// method or path, and the connection closes after the response
/// (`HTTP/1.0`-style, `Connection: close`). Reads and writes are
/// bounded by timeouts so a stuck scraper delays — never wedges — the
/// loop. Exposes *only* aggregate metrics: no admin surface, no
/// request contents, so it is safe to bind more widely than the admin
/// command listener.
pub struct MetricsServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_handle: Option<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsServer")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// starts answering HTTP scrapes from `service`.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<PredictionService>) -> io::Result<Self> {
        Self::serve_listener(TcpListener::bind(addr)?, service)
    }

    /// Starts answering scrapes on an already-bound listener (claim the
    /// port before paying for model training, like
    /// [`Server::serve_listener`]).
    ///
    /// # Errors
    ///
    /// Propagates `local_addr` failures on the listener.
    pub fn serve_listener(
        listener: TcpListener,
        service: Arc<PredictionService>,
    ) -> io::Result<Self> {
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_handle = thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let _ = answer_scrape(stream, &service);
            }
        });
        Ok(Self {
            local_addr,
            stop,
            accept_handle: Some(accept_handle),
        })
    }

    /// The bound address — read the ephemeral port from here.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the accept loop and joins it. Idempotent; bounded by the
    /// per-scrape timeouts plus one loopback wake-up connection.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.accept_handle.take() {
            let _ = TcpStream::connect(wake_addr(self.local_addr));
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Answers one HTTP scrape: drains the request head (bounded — at most
/// 4 KiB and one read timeout), then writes the exposition document.
/// The request itself is never interpreted; every scrape gets the full
/// document.
fn answer_scrape(mut stream: TcpStream, service: &PredictionService) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut head = [0u8; 4096];
    let mut filled = 0;
    while filled < head.len() {
        match stream.read(&mut head[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                let seen = &head[..filled];
                if seen.windows(4).any(|w| w == b"\r\n\r\n")
                    || seen.windows(2).any(|w| w == b"\n\n")
                {
                    break; // end of request head — body (if any) ignored
                }
            }
            // A scraper that sent a partial head and stalled still gets
            // its answer; the response is what matters.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                break;
            }
            Err(e) => return Err(e),
        }
    }
    let body = service.exposition();
    let response = format!(
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\
         \r\n\
         {body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

fn handle_connection(
    stream: TcpStream,
    service: &PredictionService,
    stop: &AtomicBool,
    config: &ServerConfig,
) -> io::Result<()> {
    // Bounded reads *and* writes are what make shutdown drainable:
    // without the read timeout a half-open client (connected, never
    // sending) parks this thread in `read` forever; without the write
    // timeout a client that pipelines requests but never drains replies
    // fills its socket buffers and parks the thread in `write_all` — in
    // either case `shutdown` would hang joining it. A timed-out write
    // (`WouldBlock`/`TimedOut` below) propagates as a fatal connection
    // error: the reply would be torn anyway.
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Auto-detect the dialect from the first byte: the binary magic
    // starts with a non-ASCII byte, every text verb with an ASCII
    // letter, so one peeked byte decides without consuming anything.
    match first_byte(&mut reader, stop)? {
        None => return Ok(()), // EOF or stop before any byte arrived
        Some(byte) if byte == frame::MAGIC[0] => {
            return handle_binary(reader, writer, service, stop, config);
        }
        Some(_) => {}
    }
    // Bytes, not a String: `BufRead::read_line` drops a trailing
    // incomplete UTF-8 sequence when a read times out mid-character,
    // silently corrupting the request. `read_until` keeps every byte
    // across timeouts; UTF-8 is validated once a full line is present.
    let mut line: Vec<u8> = Vec::new();
    loop {
        // Checked before every line — not only after one arrives — so a
        // client streaming requests back-to-back cannot postpone drain
        // indefinitely.
        if stop.load(Ordering::Acquire) {
            break;
        }
        match reader.read_until(b'\n', &mut line) {
            Ok(0) => break, // EOF: client hung up.
            Ok(_) => {
                let ended_with_newline = line.last() == Some(&b'\n');
                let mut upgrade = false;
                let outcome = match std::str::from_utf8(&line) {
                    Err(_) => Some(Err(ServeError::BadRequest(
                        "request is not valid UTF-8".into(),
                    ))),
                    Ok(text) => {
                        let request = text.trim();
                        if request == "quit" || request == "exit" {
                            break;
                        }
                        if request == frame::HELLO_BINARY {
                            // Feature negotiation: acknowledge in text,
                            // then switch this same connection to the
                            // binary framing. A server without binary
                            // support would answer `err ...`, which the
                            // client takes as "stay on text".
                            upgrade = true;
                            None
                        } else if request.is_empty() {
                            None
                        } else {
                            // The trace starts when a complete line is in
                            // hand, so its parse span measures parsing,
                            // not how slowly the client dribbled bytes.
                            let mut trace = Trace::new();
                            let parsed = parse_request_options(request);
                            trace.mark(Stage::Parse);
                            Some(match parsed {
                                // Parse errors never reach the queue;
                                // they are answered inline so malformed
                                // floods cannot shed well-formed load.
                                Err(err) => Err(err),
                                // Admin commands touch the filesystem (or,
                                // for `trace`, dump other clients' request
                                // summaries); refused unless this listener
                                // opted in.
                                Ok((request, _)) if request.is_admin() && !config.admin => {
                                    Err(ServeError::AdminDisabled)
                                }
                                Ok((request, options)) => service.call_traced_options(
                                    request,
                                    trace,
                                    options.deadline,
                                    options.priority,
                                ),
                            })
                        }
                    }
                };
                if let Some(outcome) = outcome {
                    // Fault site `stall_reply_write`: the injected pause
                    // sits *inside* the reply-write span, so stalled
                    // writes show up in the stage histogram exactly like
                    // a congested socket would.
                    let write_started = Instant::now();
                    if let Some(delay) = service
                        .faults()
                        .fire_delay(crate::fault::FaultSite::StallReplyWrite, None)
                    {
                        thread::sleep(delay);
                    }
                    // Reply + newline in one write: the writer is a raw
                    // `TcpStream`, and a separate `\n` write becomes its
                    // own TCP segment that Nagle parks behind the reply
                    // segment's (possibly delayed) ACK — tens of
                    // milliseconds added to every text request.
                    let mut reply = format_outcome(&outcome);
                    reply.push('\n');
                    writer.write_all(reply.as_bytes())?;
                    writer.flush()?;
                    // The engine consumed the per-request trace when it
                    // finished the job, so the write span lands in the
                    // global stage histogram only.
                    service.record_stage(Stage::ReplyWrite, write_started.elapsed());
                }
                line.clear();
                if upgrade {
                    writer.write_all(format!("{}\n", frame::HELLO_BINARY_OK).as_bytes())?;
                    writer.flush()?;
                    return handle_binary(reader, writer, service, stop, config);
                }
                if !ended_with_newline {
                    break; // EOF after an unterminated final line.
                }
            }
            // Read timeout: nothing (or only a partial line) arrived.
            // The partial bytes stay in `line` — read_until appends — so
            // a slow sender loses nothing; loop to re-check `stop`.
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Peeks the connection's first byte without consuming it, waiting
/// across read timeouts (re-checking the stop flag) until the client
/// sends something or hangs up.
fn first_byte(reader: &mut BufReader<TcpStream>, stop: &AtomicBool) -> io::Result<Option<u8>> {
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        match reader.fill_buf() {
            Ok(buf) => return Ok(buf.first().copied()), // empty => EOF
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Serves one connection speaking the length-prefixed binary framing
/// ([`crate::frame`]).
///
/// Requests are decoded on this thread and submitted to the engine
/// tagged with their client-assigned request id; a dedicated writer
/// thread forwards replies in *completion* order, so a slow request
/// does not head-of-line-block the replies queued behind it — the
/// wire-level half of what per-model sharding does inside the engine.
/// A malformed body inside a valid prelude is answered with an error
/// frame (naming the request id, which survives even in garbage) and
/// the connection continues; an unusable prelude — wrong magic or
/// version, oversized length — has no recoverable frame boundary, so
/// the connection closes after one final error frame.
fn handle_binary(
    mut reader: BufReader<TcpStream>,
    writer: TcpStream,
    service: &PredictionService,
    stop: &AtomicBool,
    config: &ServerConfig,
) -> io::Result<()> {
    let conn_tag = CONN_SEQ.fetch_add(1, Ordering::Relaxed) & WIRE_ID_MASK;
    let (tx, rx) = mpsc::channel::<(u64, Outcome)>();
    thread::scope(|scope| {
        let writer_handle = scope.spawn(|| write_reply_frames(writer, rx, service));
        let result = read_request_frames(&mut reader, service, stop, config, conn_tag, &tx);
        // Dropping the reader's sender lets the writer drain: the
        // engine-held clones drop as in-flight jobs finish, the channel
        // closes, and the writer exits after forwarding every reply.
        drop(tx);
        let _ = writer_handle.join();
        result
    })
}

/// Allocates each binary connection a namespace for its client-chosen
/// request ids. Wraps after 2^32 connections — by then the earliest
/// namespaces have no surviving state to collide with.
static CONN_SEQ: AtomicU64 = AtomicU64::new(1);

/// Low half of an engine tag: the client's wire id, echoed in replies.
/// The upper half is the connection namespace — request ids are
/// effectively 32-bit per connection on the binary transport.
const WIRE_ID_MASK: u64 = 0xFFFF_FFFF;

/// Scopes a client-chosen wire id to its connection before it reaches
/// the engine. Request ids only need to be unique *per connection* on
/// the wire, but the engine's cancel registry, hedge ledger, and
/// pending-outcome ring are global — without this, client A's
/// `cancel id=7` could drop client B's in-flight request 7 (every
/// client counts from 1). Replies strip the namespace back off.
fn namespaced(conn_tag: u64, wire_id: u64) -> u64 {
    (conn_tag << 32) | (wire_id & WIRE_ID_MASK)
}

/// The binary connection's read half: frames in, engine submissions out.
fn read_request_frames(
    reader: &mut BufReader<TcpStream>,
    service: &PredictionService,
    stop: &AtomicBool,
    config: &ServerConfig,
    conn_tag: u64,
    tx: &mpsc::Sender<(u64, Outcome)>,
) -> io::Result<()> {
    let mut prelude = [0u8; frame::PRELUDE_LEN];
    loop {
        match read_full(reader, &mut prelude, stop)? {
            ReadFull::Full => {}
            ReadFull::Eof | ReadFull::Stopped => return Ok(()),
        }
        let body_len = match frame::decode_prelude(&prelude) {
            Ok(len) => len,
            Err(err @ frame::FrameError::Malformed(_)) => {
                // The declared length is in bounds but too short for a
                // frame header: the boundary is still known, so skip the
                // body and keep the connection. No request id is
                // readable — answer with id 0.
                let len =
                    u32::from_le_bytes([prelude[3], prelude[4], prelude[5], prelude[6]]) as usize;
                let mut skipped = vec![0u8; len];
                match read_full(reader, &mut skipped, stop)? {
                    ReadFull::Full => {}
                    ReadFull::Eof | ReadFull::Stopped => return Ok(()),
                }
                let _ = tx.send((0, Err(err.to_serve_error())));
                continue;
            }
            Err(err) => {
                // Wrong magic/version or oversized length: no resync
                // possible. One final error frame, then close.
                let _ = tx.send((0, Err(err.to_serve_error())));
                return Ok(());
            }
        };
        let mut body = vec![0u8; body_len];
        match read_full(reader, &mut body, stop)? {
            ReadFull::Full => {}
            ReadFull::Eof | ReadFull::Stopped => return Ok(()),
        }
        match frame::decode_body(&body) {
            Ok(request_frame) => {
                if !dispatch_frame(request_frame, service, config, conn_tag, tx) {
                    return Ok(()); // client said quit/exit
                }
            }
            Err(err) => {
                // Garbage body inside a known boundary: answer the
                // request — its id is readable even in garbage — and
                // keep the connection.
                let id = frame::peek_request_id(&body).unwrap_or(0);
                let _ = tx.send((id, Err(err.to_serve_error())));
            }
        }
    }
}

/// Decodes one request frame into an engine submission (or an inline
/// error reply). Returns `false` when the client asked to close the
/// connection (`quit`/`exit` sent as a line frame).
fn dispatch_frame(
    request_frame: Frame,
    service: &PredictionService,
    config: &ServerConfig,
    conn_tag: u64,
    tx: &mpsc::Sender<(u64, Outcome)>,
) -> bool {
    let Frame {
        request_id,
        trace_context,
        payload,
    } = request_frame;
    // Everything id-shaped that crosses into the engine — the tag, a
    // hedge link, a cancel target, an outcome join key — is scoped to
    // this connection; see [`namespaced`].
    let request_id = namespaced(conn_tag, request_id);
    // The upstream trace context rides into the engine's per-request
    // trace, so a slow-request summary can name the caller's span.
    let make_trace = || match &trace_context {
        Some(context) => Trace::with_context(context.clone()),
        None => Trace::new(),
    };
    match payload {
        Payload::Predict {
            model,
            apps,
            deadline,
            priority,
            hedge_of,
        } => {
            let mut trace = make_trace();
            trace.mark(Stage::Parse); // frame decode is the parse work
            let request = Request::Predict { model, apps };
            if let Err(err) = service.submit_tagged(
                request,
                trace,
                deadline,
                priority,
                hedge_of.map(|primary| namespaced(conn_tag, primary)),
                request_id,
                tx.clone(),
            ) {
                let _ = tx.send((request_id, Err(err)));
            }
            true
        }
        Payload::Cancel { target } => {
            // Answered inline, never queued: a cancel enqueued behind
            // the very backlog it is trying to trim would always lose
            // the race it exists to win.
            let pending = service.cancel(namespaced(conn_tag, target));
            let _ = tx.send((request_id, Ok(Reply::Cancelled { pending })));
            true
        }
        Payload::Line(text) => {
            let request = text.trim();
            if request == "quit" || request == "exit" {
                return false;
            }
            if request.is_empty() {
                let _ = tx.send((
                    request_id,
                    Err(ServeError::BadRequest("empty request".into())),
                ));
                return true;
            }
            let mut trace = make_trace();
            let parsed = parse_request_options(request);
            trace.mark(Stage::Parse);
            let submitted = match parsed {
                // Parse errors and refused admin commands never reach
                // the queue — answered inline, same as the text loop.
                Err(err) => Err(err),
                Ok((request, _)) if request.is_admin() && !config.admin => {
                    Err(ServeError::AdminDisabled)
                }
                Ok((request, options)) => service.submit_tagged(
                    request,
                    trace,
                    options.deadline,
                    options.priority,
                    options
                        .hedge_of
                        .map(|primary| namespaced(conn_tag, primary)),
                    request_id,
                    tx.clone(),
                ),
            };
            if let Err(err) = submitted {
                let _ = tx.send((request_id, Err(err)));
            }
            true
        }
        Payload::Outcome { actual_us } => {
            // The frame's own request id names the prediction being
            // reported on — the engine joins it against the pending
            // ring. Never fatal: an unmatched report is counted, and
            // the client gets an `ok outcome=orphaned` line back.
            let mut trace = make_trace();
            trace.mark(Stage::Parse);
            let request = Request::Observe {
                id: request_id,
                actual_us,
            };
            if let Err(err) = service.submit_tagged(
                request,
                trace,
                None,
                Priority::Normal,
                None,
                request_id,
                tx.clone(),
            ) {
                let _ = tx.send((request_id, Err(err)));
            }
            true
        }
        Payload::Prediction { .. } | Payload::LineReply(_) | Payload::Error { .. } => {
            let _ = tx.send((
                request_id,
                Err(ServeError::Malformed(
                    "reply opcode in a request frame".into(),
                )),
            ));
            true
        }
    }
}

/// The binary connection's write half, on its own thread: forwards
/// engine outcomes as reply frames in completion order. Predictions
/// ride the compact fixed layout (raw `f64` bits); every other success
/// is the text protocol's reply line framed verbatim; errors carry a
/// stable numeric code next to the message the text protocol would
/// have sent after `err `.
fn write_reply_frames(
    mut writer: TcpStream,
    rx: mpsc::Receiver<(u64, Outcome)>,
    service: &PredictionService,
) {
    for (request_id, outcome) in rx {
        // Fault site `stall_reply_write`: the pause sits inside the
        // reply-write span, exactly like the text loop's.
        let write_started = Instant::now();
        if let Some(delay) = service
            .faults()
            .fire_delay(FaultSite::StallReplyWrite, None)
        {
            thread::sleep(delay);
        }
        // Fault site `drop_reply`: the reply vanishes on the wire, as if
        // a proxy ate the frame — the client's timeout/hedge machinery
        // must recover, the engine's accounting is already final.
        if service.faults().fire(FaultSite::DropReply, None) {
            continue;
        }
        // The engine saw the connection-namespaced tag; the client gets
        // its own wire id back.
        let reply = reply_frame(request_id & WIRE_ID_MASK, outcome);
        let encoded = frame::encode(&reply);
        // Fault site `dup_reply`: the frame is delivered twice, as if a
        // retransmit survived — clients must treat the second copy as a
        // stale id and discard it.
        let copies = if service.faults().fire(FaultSite::DupReply, None) {
            2
        } else {
            1
        };
        // A failed or timed-out write is fatal to the connection (the
        // frame would be torn anyway): stop forwarding and let the
        // remaining replies drain into the closed channel.
        for _ in 0..copies {
            if writer.write_all(&encoded).is_err() || writer.flush().is_err() {
                return;
            }
        }
        service.record_stage(Stage::ReplyWrite, write_started.elapsed());
    }
}

/// Maps an engine outcome to its binary reply frame.
fn reply_frame(request_id: u64, outcome: Outcome) -> Frame {
    let payload = match outcome {
        Ok(Reply::Prediction { model, predicted_s }) => Payload::Prediction { model, predicted_s },
        Ok(reply) => Payload::LineReply(format_outcome(&Ok(reply))),
        Err(err) => Payload::Error {
            code: frame::code_of(&err),
            message: err.to_string(),
        },
    };
    Frame::new(request_id, payload)
}

/// How a bounded-buffer read ended.
enum ReadFull {
    /// The buffer was filled completely.
    Full,
    /// The peer hung up first (clean at offset zero, torn mid-frame —
    /// either way the connection is done).
    Eof,
    /// The stop flag was raised between reads.
    Stopped,
}

/// Fills `buf` across read timeouts, re-checking the stop flag before
/// every read — a binary client that dribbles a frame byte-by-byte
/// cannot corrupt it, and a silent one cannot block shutdown's drain.
fn read_full(reader: &mut impl Read, buf: &mut [u8], stop: &AtomicBool) -> io::Result<ReadFull> {
    let mut filled = 0;
    while filled < buf.len() {
        if stop.load(Ordering::Acquire) {
            return Ok(ReadFull::Stopped);
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Ok(ReadFull::Eof),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) => return Err(e),
        }
    }
    Ok(ReadFull::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Request, ServiceConfig};
    use crate::testutil;
    use bagpred_core::Platforms;
    use std::io::BufRead;
    use std::sync::mpsc;

    fn start() -> (Server, Arc<PredictionService>) {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
        (server, service)
    }

    fn roundtrip(addr: std::net::SocketAddr, lines: &[&str]) -> Vec<String> {
        let stream = TcpStream::connect(addr).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for line in lines {
            writer.write_all(line.as_bytes()).expect("writes");
            writer.write_all(b"\n").expect("writes");
            writer.flush().expect("flushes");
            let mut reply = String::new();
            reader.read_line(&mut reply).expect("reads");
            replies.push(reply.trim_end().to_string());
        }
        replies
    }

    #[test]
    fn answers_predict_stats_and_models_over_tcp() {
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &["predict SIFT@20+KNN@40", "stats", "models"],
        );
        assert!(replies[0].starts_with("ok model="), "{}", replies[0]);
        assert!(replies[0].contains("predicted_s="), "{}", replies[0]);
        assert!(replies[1].starts_with("ok requests="), "{}", replies[1]);
        assert!(replies[2].starts_with("ok models=2"), "{}", replies[2]);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn malformed_lines_get_err_replies_and_connection_survives() {
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &["predict SIFT@20", "bogus", "predict SIFT@20+KNN@40"],
        );
        assert!(replies[0].starts_with("err bad request"), "{}", replies[0]);
        assert!(replies[1].starts_with("err bad request"), "{}", replies[1]);
        assert!(replies[2].starts_with("ok "), "{}", replies[2]);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn served_line_matches_in_process_call_byte_for_byte() {
        let (mut server, service) = start();
        let wire = roundtrip(
            server.local_addr(),
            &["predict model=pair-tree HOG@20+FAST@80"],
        )
        .remove(0);
        let direct = format_outcome(&service.call(Request::Predict {
            model: Some("pair-tree".into()),
            apps: vec![
                bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Hog, 20),
                bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Fast, 80),
            ],
        }));
        assert_eq!(wire, direct);
        server.shutdown();
        service.shutdown();
    }

    /// Runs `shutdown` under a watchdog so a regression hangs the test
    /// with a clear message instead of wedging the whole test binary.
    fn shutdown_within(mut server: Server, limit: Duration) -> Server {
        let (tx, rx) = mpsc::channel();
        let handle = thread::spawn(move || {
            server.shutdown();
            tx.send(()).expect("watchdog receiver alive");
            server
        });
        rx.recv_timeout(limit).expect("shutdown must not hang");
        handle.join().expect("shutdown thread finishes")
    }

    #[test]
    fn shutdown_wakes_the_accept_loop_on_a_wildcard_bind() {
        // Binding 0.0.0.0 used to hang shutdown: the wake-up connection
        // targeted the unconnectable bound address, so the accept loop
        // never woke and `join` blocked forever.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let server = Server::bind("0.0.0.0:0", Arc::clone(&service)).expect("binds wildcard");
        shutdown_within(server, Duration::from_secs(10));
        service.shutdown();
    }

    #[test]
    fn half_open_connections_do_not_block_shutdown() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                read_timeout: Duration::from_millis(25),
                ..ServerConfig::default()
            },
        )
        .expect("binds");

        // A client that connects and never sends a byte: before read
        // timeouts its thread sat in `read` forever.
        let idle = TcpStream::connect(server.local_addr()).expect("connects");
        // Wait until the connection thread is registered.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while server.active_connections() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "connection never registered"
            );
            thread::sleep(Duration::from_millis(5));
        }

        let server = shutdown_within(server, Duration::from_secs(10));
        assert_eq!(
            server.active_connections(),
            0,
            "drain must join every connection thread"
        );

        // The idle client observes a clean EOF, not a hang.
        idle.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("sets timeout");
        let mut reader = BufReader::new(idle);
        let mut buf = String::new();
        assert_eq!(reader.read_line(&mut buf).expect("reads EOF"), 0);
        service.shutdown();
    }

    #[test]
    fn slow_senders_are_not_corrupted_by_read_timeouts() {
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                read_timeout: Duration::from_millis(25),
                ..ServerConfig::default()
            },
        )
        .expect("binds");

        // Dribble one request across several read timeouts: the partial
        // line must survive each timeout intact.
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        for chunk in ["pre", "dict SIF", "T@20+K", "NN@40\n"] {
            writer.write_all(chunk.as_bytes()).expect("writes");
            writer.flush().expect("flushes");
            thread::sleep(Duration::from_millis(60));
        }
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reads");
        assert!(reply.starts_with("ok model="), "{reply}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn multibyte_utf8_split_across_a_read_timeout_survives_intact() {
        // A read timeout that fires between the two bytes of `é` used to
        // lose the partial line: `read_line`'s UTF-8 guard dropped the
        // incomplete tail. The byte-level reader must hand the parser
        // the full `café` so the error names it verbatim.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let mut server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                read_timeout: Duration::from_millis(25),
                ..ServerConfig::default()
            },
        )
        .expect("binds");

        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"predict caf\xC3").expect("writes");
        writer.flush().expect("flushes");
        thread::sleep(Duration::from_millis(80)); // several timeouts fire
        writer.write_all(b"\xA9@20+KNN@40\n").expect("writes");
        writer.flush().expect("flushes");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reads");
        assert!(
            reply.contains("unknown benchmark `café`"),
            "split multi-byte char must survive the timeout: {reply:?}"
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn invalid_utf8_gets_an_err_reply_and_the_connection_survives() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        writer.write_all(b"\xFF\xFE nonsense\n").expect("writes");
        writer
            .write_all(b"predict SIFT@20+KNN@40\n")
            .expect("writes");
        writer.flush().expect("flushes");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reads");
        assert!(
            reply.starts_with("err bad request: request is not valid UTF-8"),
            "{reply:?}"
        );
        reply.clear();
        reader.read_line(&mut reply).expect("reads");
        assert!(reply.starts_with("ok model="), "{reply:?}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn admin_commands_are_refused_unless_the_listener_opted_in() {
        // Default listener: no admin. The engine never sees the command
        // — no file is read or written, the queue is never entered.
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &[
                "load model=x path=x.bagsnap",
                "save",
                "reload model=pair-tree",
                "predict SIFT@20+KNN@40", // non-admin traffic unaffected
            ],
        );
        for admin_reply in &replies[..3] {
            assert!(
                admin_reply.starts_with("err admin disabled"),
                "{admin_reply}"
            );
        }
        assert!(replies[3].starts_with("ok model="), "{}", replies[3]);
        server.shutdown();

        // Opt-in listener: the command reaches the engine (which still
        // demands a snapshot dir before touching the filesystem).
        let mut server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                admin: true,
                ..ServerConfig::default()
            },
        )
        .expect("binds");
        let reply = roundtrip(server.local_addr(), &["save"]).remove(0);
        assert!(
            reply.starts_with("err bad request: no snapshot dir configured"),
            "{reply}"
        );
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn wire_requests_record_parse_and_reply_write_stages() {
        let (mut server, service) = start();
        let replies = roundtrip(
            server.local_addr(),
            &["predict SIFT@20+KNN@40", "predict HOG@20+FAST@80"],
        );
        assert!(replies.iter().all(|r| r.starts_with("ok model=")));
        // Only the TCP front-end marks these stages; two wire requests
        // mean two parse samples and two reply-write samples.
        assert_eq!(service.stages().stage(Stage::Parse).count(), 2);
        assert_eq!(service.stages().stage(Stage::ReplyWrite).count(), 2);
        assert_eq!(service.stages().stage(Stage::QueueWait).count(), 2);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn metrics_listener_answers_http_scrapes_with_the_exposition() {
        let (mut server, service) = start();
        let _ = roundtrip(server.local_addr(), &["predict SIFT@20+KNN@40"]);
        let mut metrics = MetricsServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");

        let mut stream = TcpStream::connect(metrics.local_addr()).expect("connects");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("sets timeout");
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .expect("writes");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("reads");

        assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
        let (head, body) = response.split_once("\r\n\r\n").expect("has blank line");
        assert!(
            head.contains(&format!("Content-Length: {}", body.len())),
            "{head}"
        );
        assert!(body.contains("bagpred_requests_received_total 1"), "{body}");
        assert!(body.ends_with("# EOF\n"), "{body}");

        metrics.shutdown();
        metrics.shutdown(); // idempotent
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn non_reading_pipelining_client_cannot_block_shutdown() {
        // A client that floods requests and never reads replies: once
        // the socket buffers fill, the connection thread blocks in
        // `write_all` — without a write timeout it would never re-check
        // the stop flag and drain would join it forever.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig::default(),
        );
        let server = Server::bind_with(
            "127.0.0.1:0",
            Arc::clone(&service),
            ServerConfig {
                read_timeout: Duration::from_millis(25),
                write_timeout: Duration::from_millis(100),
                admin: false,
            },
        )
        .expect("binds");

        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        stream
            .set_write_timeout(Some(Duration::from_millis(250)))
            .expect("sets timeout");
        let flooder = thread::spawn(move || {
            // ~30k pipelined stats requests (~250-byte replies) — far
            // more reply bytes than default socket buffers hold. The
            // client's own sends may start failing once the server
            // stops reading; that is part of the scenario.
            let burst = b"stats\n".repeat(1_000);
            for _ in 0..30 {
                let mut w: &TcpStream = &stream;
                if w.write_all(&burst).is_err() {
                    break;
                }
            }
            stream // keep the socket open (never read) until joined
        });

        thread::sleep(Duration::from_millis(300)); // let buffers fill
        let server = shutdown_within(server, Duration::from_secs(10));
        assert_eq!(
            server.active_connections(),
            0,
            "drain must not hang on a non-reading client"
        );
        drop(flooder.join());
        service.shutdown();
    }

    // --- binary framing over the same listener ---

    fn send_frame(writer: &mut impl Write, f: &Frame) {
        writer.write_all(&frame::encode(f)).expect("writes frame");
        writer.flush().expect("flushes frame");
    }

    fn read_frame(reader: &mut impl Read) -> Frame {
        let mut prelude = [0u8; frame::PRELUDE_LEN];
        reader.read_exact(&mut prelude).expect("reads prelude");
        let len = frame::decode_prelude(&prelude).expect("valid reply prelude");
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).expect("reads body");
        frame::decode_body(&body).expect("valid reply body")
    }

    fn pair_apps() -> Vec<bagpred_workloads::Workload> {
        vec![
            bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Sift, 20),
            bagpred_workloads::Workload::new(bagpred_workloads::Benchmark::Knn, 40),
        ]
    }

    #[test]
    fn binary_connections_are_detected_from_the_first_byte() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        send_frame(
            &mut writer,
            &Frame::new(
                7,
                Payload::Predict {
                    model: None,
                    apps: pair_apps(),
                    deadline: None,
                    priority: Priority::Normal,
                    hedge_of: None,
                },
            ),
        );
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 7);
        let Payload::Prediction { model, predicted_s } = reply.payload else {
            panic!("expected a prediction frame, got {:?}", reply.payload);
        };
        // Bit-identical to the in-process call: the wire carries raw
        // f64 bits, not a decimal rendering.
        let Ok(Reply::Prediction {
            model: direct_model,
            predicted_s: direct_s,
        }) = service.call(Request::Predict {
            model: None,
            apps: pair_apps(),
        })
        else {
            panic!("direct call must predict");
        };
        assert_eq!(model, direct_model);
        assert_eq!(predicted_s.to_bits(), direct_s.to_bits());
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn hello_line_upgrades_a_text_connection_to_binary() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        // Plain text first: this connection started on the line protocol.
        writer
            .write_all(b"predict SIFT@20+KNN@40\n")
            .expect("writes");
        writer.flush().expect("flushes");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reads");
        assert!(line.starts_with("ok model="), "{line}");
        // Negotiate, then speak frames on the very same connection.
        writer
            .write_all(format!("{}\n", frame::HELLO_BINARY).as_bytes())
            .expect("writes hello");
        writer.flush().expect("flushes");
        line.clear();
        reader.read_line(&mut line).expect("reads ack");
        assert_eq!(line.trim_end(), frame::HELLO_BINARY_OK);
        send_frame(&mut writer, &Frame::new(3, Payload::Line("stats".into())));
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 3);
        let Payload::LineReply(text) = reply.payload else {
            panic!("expected a line reply, got {:?}", reply.payload);
        };
        assert!(text.starts_with("ok requests="), "{text}");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn binary_replies_come_back_in_completion_order_not_submission_order() {
        // Model A (pair-tree) is slowed by an injected fault; model B
        // (nbag-tree) is fast. Submitted A-then-B on one connection,
        // the replies must arrive B-then-A: per-model shards keep B's
        // queue moving and the tagged reply channel lets the fast reply
        // overtake instead of head-of-line-blocking behind A.
        let service = PredictionService::start(
            testutil::registry(),
            Platforms::paper(),
            ServiceConfig {
                faults: Arc::new(
                    crate::fault::FaultPlan::parse("slow_predict:model=pair-tree:count=1:ms=400")
                        .expect("parses"),
                ),
                ..ServiceConfig::default()
            },
        );
        let mut server = Server::bind("127.0.0.1:0", Arc::clone(&service)).expect("binds");
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        for (id, model) in [(1u64, "pair-tree"), (2u64, "nbag-tree")] {
            send_frame(
                &mut writer,
                &Frame::new(
                    id,
                    Payload::Predict {
                        model: Some(model.into()),
                        apps: pair_apps(),
                        deadline: None,
                        priority: Priority::Normal,
                        hedge_of: None,
                    },
                ),
            );
        }
        let first = read_frame(&mut reader);
        let second = read_frame(&mut reader);
        assert_eq!(
            (first.request_id, second.request_id),
            (2, 1),
            "the fast model's reply must overtake the slowed one"
        );
        assert!(matches!(first.payload, Payload::Prediction { .. }));
        assert!(matches!(second.payload, Payload::Prediction { .. }));
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn malformed_binary_bodies_get_an_error_frame_and_the_connection_survives() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        // Hand-rolled garbage: valid prelude, unknown opcode 0xFF, but a
        // readable request id — the error frame must name it.
        let mut body = vec![0xFFu8];
        body.extend_from_slice(&99u64.to_le_bytes());
        body.extend_from_slice(&[0u8; 11]);
        let mut msg = Vec::new();
        msg.extend_from_slice(&frame::MAGIC);
        msg.push(frame::VERSION);
        msg.extend_from_slice(&(body.len() as u32).to_le_bytes());
        msg.extend_from_slice(&body);
        writer.write_all(&msg).expect("writes garbage");
        writer.flush().expect("flushes");
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 99);
        let Payload::Error { code, message } = reply.payload else {
            panic!("expected an error frame, got {:?}", reply.payload);
        };
        assert_eq!(code, frame::error_code::MALFORMED);
        assert!(message.contains("unknown opcode"), "{message}");
        // The connection survives: a well-formed request still answers.
        send_frame(
            &mut writer,
            &Frame::new(
                5,
                Payload::Predict {
                    model: None,
                    apps: pair_apps(),
                    deadline: None,
                    priority: Priority::Normal,
                    hedge_of: None,
                },
            ),
        );
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 5);
        assert!(matches!(reply.payload, Payload::Prediction { .. }));
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn a_bad_binary_prelude_gets_one_error_frame_then_eof() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        // First byte matches the magic (routing the connection to the
        // binary loop), second does not: no frame boundary can be
        // recovered, so the server answers once and closes.
        writer
            .write_all(&[frame::MAGIC[0], 0x00, frame::VERSION, 0, 0, 0, 0])
            .expect("writes");
        writer.flush().expect("flushes");
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 0);
        let Payload::Error { code, message } = reply.payload else {
            panic!("expected an error frame, got {:?}", reply.payload);
        };
        assert_eq!(code, frame::error_code::MALFORMED);
        assert!(message.contains("bad magic"), "{message}");
        let mut byte = [0u8; 1];
        assert_eq!(reader.read(&mut byte).expect("clean EOF"), 0);
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn binary_cancel_opcode_answers_inline_and_late_after_the_reply() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        send_frame(
            &mut writer,
            &Frame::new(
                7,
                Payload::Predict {
                    model: None,
                    apps: pair_apps(),
                    deadline: None,
                    priority: Priority::High,
                    hedge_of: None,
                },
            ),
        );
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 7);
        assert!(matches!(reply.payload, Payload::Prediction { .. }));
        // The target already answered: its cancel must come back late,
        // and must answer inline even though the id is long gone.
        send_frame(&mut writer, &Frame::new(8, Payload::Cancel { target: 7 }));
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 8);
        let Payload::LineReply(text) = reply.payload else {
            panic!("expected a line reply, got {:?}", reply.payload);
        };
        assert_eq!(text, "ok cancel=late");
        server.shutdown();
        service.shutdown();
    }

    #[test]
    fn binary_admin_commands_are_refused_unless_the_listener_opted_in() {
        let (mut server, service) = start();
        let stream = TcpStream::connect(server.local_addr()).expect("connects");
        let mut writer = stream.try_clone().expect("clones");
        let mut reader = BufReader::new(stream);
        send_frame(&mut writer, &Frame::new(11, Payload::Line("save".into())));
        let reply = read_frame(&mut reader);
        assert_eq!(reply.request_id, 11);
        let Payload::Error { code, .. } = reply.payload else {
            panic!("expected an error frame, got {:?}", reply.payload);
        };
        assert_eq!(code, frame::error_code::ADMIN_DISABLED);
        server.shutdown();
        service.shutdown();
    }
}
