//! One-call setup: train the paper's models and register them.
//!
//! Serving needs trained models; training needs the measurement corpus.
//! This module runs the offline pipeline once — the 91-bag paper corpus
//! for the pair model, the deterministic n-bag corpus for the extension
//! — and registers the results under well-known names:
//!
//! * `pair-tree` — the paper's best configuration (full feature scheme,
//!   depth-8 CART tree, §V-C / Fig. 9);
//! * `nbag-tree` — the order-statistic n-bag predictor.
//!
//! Both are snapshot-capable, so a `save_dir`/`load_dir` cycle skips
//! retraining on the next boot.

use crate::snapshot::{ModelRegistry, ServableModel};
use bagpred_core::nbag::{nbag_corpus, NBagMeasurement, NBagPredictor};
use bagpred_core::{Corpus, FeatureSet, ModelKind, Platforms, Predictor};
use std::sync::Arc;

/// Extra heterogeneous bags in the n-bag training corpus (deterministic;
/// matches the experiments crate's default).
const NBAG_EXTRA: usize = 20;

/// Name the pair model is registered under.
pub const PAIR_MODEL: &str = "pair-tree";
/// Name the n-bag model is registered under.
pub const NBAG_MODEL: &str = "nbag-tree";

/// Trains the paper's pair predictor on the 91-bag corpus.
pub fn train_pair(platforms: &Platforms) -> Predictor {
    let records = Corpus::paper().measure_on(platforms);
    let mut predictor = Predictor::new(FeatureSet::full()).with_model(ModelKind::DecisionTree);
    predictor.train(&records);
    predictor
}

/// Trains the n-bag predictor on the deterministic n-bag corpus.
pub fn train_nbag(platforms: &Platforms) -> NBagPredictor {
    let records: Vec<NBagMeasurement> =
        bagpred_core::nbag::measure_nbags(&nbag_corpus(NBAG_EXTRA), platforms);
    let mut predictor = NBagPredictor::new();
    predictor.train(&records);
    predictor
}

/// Trains both models and returns a registry holding them as
/// [`PAIR_MODEL`] and [`NBAG_MODEL`].
///
/// The two models are independent, so a cold boot trains them on two
/// scoped threads (each one's corpus measurement additionally fans out
/// over `BAGPRED_THREADS` workers — see [`bagpred_core::parallel`]).
/// Training is deterministic, so the registry contents are identical to
/// a serial boot.
pub fn default_registry(platforms: &Platforms) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    let (pair, nbag) = std::thread::scope(|scope| {
        let pair = scope.spawn(|| train_pair(platforms));
        let nbag = scope.spawn(|| train_nbag(platforms));
        (
            pair.join().expect("pair training panicked"),
            nbag.join().expect("n-bag training panicked"),
        )
    });
    registry.insert(PAIR_MODEL, ServableModel::Pair(pair));
    registry.insert(NBAG_MODEL, ServableModel::NBag(nbag));
    registry
}
