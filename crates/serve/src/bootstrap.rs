//! One-call setup: train the paper's models and register them.
//!
//! Serving needs trained models; training needs the measurement corpus.
//! This module runs the offline pipeline once — the 91-bag paper corpus
//! for the pair model, the deterministic n-bag corpus for the extension
//! — and registers the results under well-known names:
//!
//! * `pair-tree` — the paper's best configuration (full feature scheme,
//!   depth-8 CART tree, §V-C / Fig. 9);
//! * `nbag-tree` — the order-statistic n-bag predictor.
//!
//! Both are snapshot-capable, so a `save_dir`/`load_dir` cycle skips
//! retraining on the next boot.

use crate::error::ServeError;
use crate::fault::panic_message;
use crate::metrics::boot_stats;
use crate::snapshot::{ModelRegistry, ServableModel};
use bagpred_core::nbag::{nbag_corpus, NBagMeasurement, NBagPredictor};
use bagpred_core::{Corpus, FeatureSet, ModelKind, Platforms, Predictor};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Extra heterogeneous bags in the n-bag training corpus (deterministic;
/// matches the experiments crate's default).
const NBAG_EXTRA: usize = 20;

/// Name the pair model is registered under.
pub const PAIR_MODEL: &str = "pair-tree";
/// Name the n-bag model is registered under.
pub const NBAG_MODEL: &str = "nbag-tree";

/// Trains the paper's pair predictor on the 91-bag corpus.
pub fn train_pair(platforms: &Platforms) -> Predictor {
    let records = Corpus::paper().measure_on(platforms);
    let mut predictor = Predictor::new(FeatureSet::full()).with_model(ModelKind::DecisionTree);
    predictor.train(&records);
    predictor
}

/// Trains the n-bag predictor on the deterministic n-bag corpus.
pub fn train_nbag(platforms: &Platforms) -> NBagPredictor {
    let records: Vec<NBagMeasurement> =
        bagpred_core::nbag::measure_nbags(&nbag_corpus(NBAG_EXTRA), platforms);
    let mut predictor = NBagPredictor::new();
    predictor.train(&records);
    predictor
}

/// Trains both models and returns a registry holding them as
/// [`PAIR_MODEL`] and [`NBAG_MODEL`].
///
/// The two models are independent, so a cold boot trains them on two
/// scoped threads (each one's corpus measurement additionally fans out
/// over `BAGPRED_THREADS` workers — see [`bagpred_core::parallel`]).
/// Training is deterministic, so the registry contents are identical to
/// a serial boot.
pub fn default_registry(platforms: &Platforms) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    let (pair, nbag) = std::thread::scope(|scope| {
        let pair = scope.spawn(|| train_pair(platforms));
        let nbag = scope.spawn(|| train_nbag(platforms));
        // Joins name the thread *and* carry the original panic message,
        // so a training failure reads as one self-contained report.
        (
            pair.join().unwrap_or_else(|payload| {
                panic!(
                    "pair training panicked: {}",
                    panic_message(payload.as_ref())
                )
            }),
            nbag.join().unwrap_or_else(|payload| {
                panic!(
                    "n-bag training panicked: {}",
                    panic_message(payload.as_ref())
                )
            }),
        )
    });
    registry.insert(PAIR_MODEL, ServableModel::Pair(pair));
    registry.insert(NBAG_MODEL, ServableModel::NBag(nbag));
    registry
}

/// Whether freshly trained models were written back as snapshots.
#[derive(Debug)]
pub enum SnapshotWriteback {
    /// No snapshot directory was given; nothing written.
    Skipped,
    /// This many snapshots were written to the directory.
    Saved(usize),
    /// Writing failed — non-fatal, the in-memory registry still serves.
    Failed(ServeError),
}

/// How [`load_or_train`] obtained its registry.
#[derive(Debug)]
pub enum BootSource {
    /// All models decoded from this many snapshots in the directory.
    Loaded(usize),
    /// Trained from scratch (empty or missing snapshot directory, or
    /// every snapshot quarantined as corrupt).
    Trained(SnapshotWriteback),
    /// Some snapshots decoded, but a default model's snapshot was
    /// corrupt (quarantined) or absent — the hole was filled by
    /// retraining just the missing models.
    Repaired {
        /// Models that decoded from snapshots.
        loaded: usize,
        /// Default models retrained to fill the holes.
        retrained: usize,
        /// Whether the retrained models' snapshots were written back.
        writeback: SnapshotWriteback,
    },
}

/// Everything [`load_or_train`] hands back: the registry, how it was
/// obtained, and which corrupt snapshot files were quarantined along
/// the way (empty on a clean boot).
#[derive(Debug)]
pub struct Boot {
    /// The registry ready to serve.
    pub registry: Arc<ModelRegistry>,
    /// Loaded from snapshots or trained from scratch.
    pub source: BootSource,
    /// Corrupt snapshots moved aside as `<name>.corrupt` during the
    /// directory scan; the boot proceeded without them.
    pub quarantined: Vec<PathBuf>,
}

/// The standard serve boot path: load every snapshot from `dir` when it
/// holds any; otherwise train the default models and write their
/// snapshots back so the next boot skips training. With no directory,
/// always trains.
///
/// Corrupt snapshot files do **not** fail the boot: each is quarantined
/// as `<name>.corrupt` (reported in [`Boot::quarantined`] and counted in
/// [`boot_stats`]), and the boot retrains whatever that leaves missing —
/// every default model when nothing decoded, or just the quarantined
/// ones when the corruption was partial ([`BootSource::Repaired`]) — so
/// a torn write from a crashed previous process never leaves a
/// well-known model unservable. An unusable directory (uncreatable,
/// unreadable) is different: that is an operator error, reported as
/// [`ServeError::SnapshotDir`] before any training time is spent.
///
/// # Errors
///
/// [`ServeError::SnapshotDir`] when the directory is missing and cannot
/// be created, or cannot be read. Write-back failures are *not* errors —
/// they are reported in [`SnapshotWriteback::Failed`].
pub fn load_or_train(platforms: &Platforms, dir: Option<&Path>) -> Result<Boot, ServeError> {
    let Some(dir) = dir else {
        return Ok(Boot {
            registry: default_registry(platforms),
            source: BootSource::Trained(SnapshotWriteback::Skipped),
            quarantined: Vec::new(),
        });
    };
    // Probe the directory up front: creating it if missing proves the
    // path is usable *before* minutes of training are sunk into a
    // registry whose write-back would only fail. A typo'd --models path
    // dies here with a typed error instead of a mid-boot panic.
    if let Err(e) = std::fs::create_dir_all(dir) {
        boot_stats().on_snapshot_dir_error();
        return Err(ServeError::SnapshotDir(format!(
            "create {}: {e}",
            dir.display()
        )));
    }
    let registry = Arc::new(ModelRegistry::new());
    let report = match registry.load_dir_report(dir) {
        Ok(report) => report,
        Err(err) => {
            boot_stats().on_snapshot_dir_error();
            return Err(err);
        }
    };
    if report.loaded > 0 {
        // Partial corruption: a quarantined snapshot must not leave a
        // well-known model missing — `predict` on a 3-app bag with no
        // n-bag model would answer `err unknown model` forever. Retrain
        // just the holes and write their snapshots back.
        let missing: Vec<&str> = [PAIR_MODEL, NBAG_MODEL]
            .into_iter()
            .filter(|name| registry.get(name).is_none())
            .collect();
        if missing.is_empty() {
            return Ok(Boot {
                registry,
                source: BootSource::Loaded(report.loaded),
                quarantined: report.quarantined,
            });
        }
        for name in &missing {
            let model = match *name {
                PAIR_MODEL => ServableModel::Pair(train_pair(platforms)),
                _ => ServableModel::NBag(train_nbag(platforms)),
            };
            registry.insert(*name, model);
        }
        let saved: Result<usize, ServeError> = missing.iter().try_fold(0, |n, name| {
            let text = registry.snapshot(name)?;
            let path = dir.join(format!("{name}.bagsnap"));
            crate::snapshot::write_snapshot_file(&path, &text, &crate::fault::FaultPlan::none())?;
            Ok(n + 1)
        });
        let writeback = match saved {
            Ok(n) => SnapshotWriteback::Saved(n),
            Err(err) => SnapshotWriteback::Failed(err),
        };
        return Ok(Boot {
            registry,
            source: BootSource::Repaired {
                loaded: report.loaded,
                retrained: missing.len(),
                writeback,
            },
            quarantined: report.quarantined,
        });
    }
    let registry = default_registry(platforms);
    let writeback = match registry.save_dir(dir) {
        Ok(saved) => SnapshotWriteback::Saved(saved),
        Err(err) => SnapshotWriteback::Failed(err),
    };
    Ok(Boot {
        registry,
        source: BootSource::Trained(writeback),
        quarantined: report.quarantined,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn load_or_train_round_trips_through_a_snapshot_dir() {
        let dir = testutil::scratch_dir("bootstrap-boot");
        // Seed the dir from the shared trained registry (avoids a second
        // training run just for this test).
        let saved = testutil::registry().save_dir(&dir).expect("saves");
        let boot = load_or_train(&Platforms::paper(), Some(&dir)).expect("boots from snapshots");
        match boot.source {
            BootSource::Loaded(n) => assert_eq!(n, saved),
            other => panic!("expected a snapshot boot, got {other:?}"),
        }
        assert!(boot.quarantined.is_empty());
        assert_eq!(boot.registry.list(), testutil::registry().list());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_train_quarantines_corrupt_snapshots_and_boots_the_rest() {
        let dir = testutil::scratch_dir("bootstrap-corrupt");
        // Two valid snapshots plus one corrupt file: the boot must serve
        // the valid models and fence off the corrupt one, not abort.
        let saved = testutil::registry().save_dir(&dir).expect("saves");
        std::fs::write(dir.join("bad.bagsnap"), "not a snapshot\n").expect("writes");
        let before = crate::metrics::boot_stats().snapshots_quarantined();
        let boot = load_or_train(&Platforms::paper(), Some(&dir)).expect("boot survives");
        match boot.source {
            BootSource::Loaded(n) => assert_eq!(n, saved),
            other => panic!("expected a snapshot boot, got {other:?}"),
        }
        assert_eq!(boot.quarantined.len(), 1);
        let corrupt = dir.join("bad.bagsnap.corrupt");
        assert_eq!(boot.quarantined[0], corrupt);
        assert!(corrupt.exists(), "corrupt file moved aside");
        assert!(!dir.join("bad.bagsnap").exists(), "original gone");
        assert!(
            crate::metrics::boot_stats().snapshots_quarantined() > before,
            "quarantine surfaced in the boot counters"
        );
        assert_eq!(boot.registry.list(), testutil::registry().list());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_train_retrains_only_the_default_model_a_corrupt_snapshot_left_missing() {
        let dir = testutil::scratch_dir("bootstrap-repair");
        testutil::registry().save_dir(&dir).expect("saves");
        // Corrupt the n-bag snapshot: the boot must quarantine it, keep
        // the pair model it decoded, and retrain *only* the n-bag model.
        let nbag_path = dir.join(format!("{NBAG_MODEL}.bagsnap"));
        std::fs::write(&nbag_path, "garbage\n").expect("corrupts");
        let boot = load_or_train(&Platforms::paper(), Some(&dir)).expect("boot repairs");
        match boot.source {
            BootSource::Repaired {
                loaded,
                retrained,
                writeback,
            } => {
                assert_eq!(loaded, 1);
                assert_eq!(retrained, 1);
                assert!(
                    matches!(writeback, SnapshotWriteback::Saved(1)),
                    "{writeback:?}"
                );
            }
            other => panic!("expected a repaired boot, got {other:?}"),
        }
        assert_eq!(boot.quarantined.len(), 1);
        assert!(boot.registry.get(PAIR_MODEL).is_some());
        assert!(boot.registry.get(NBAG_MODEL).is_some());
        // The retrained model's snapshot was written back, so the *next*
        // boot decodes both and needs no repair.
        assert!(nbag_path.exists(), "snapshot written back");
        let next = load_or_train(&Platforms::paper(), Some(&dir)).expect("boots clean");
        assert!(matches!(next.source, BootSource::Loaded(2)), "clean reboot");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_train_returns_typed_error_when_the_dir_is_unusable() {
        // A *file* where the directory should be: create_dir_all cannot
        // succeed, even running as root (where permission bits lie).
        let scratch = testutil::scratch_dir("bootstrap-unusable");
        let blocker = scratch.join("blocker");
        std::fs::write(&blocker, "i am a file\n").expect("writes");
        let dir = blocker.join("models");
        let before = boot_stats().snapshot_dir_errors();
        let err = load_or_train(&Platforms::paper(), Some(&dir)).expect_err("must error typed");
        assert!(matches!(err, ServeError::SnapshotDir(_)), "{err}");
        assert!(
            boot_stats().snapshot_dir_errors() > before,
            "dir error surfaced in the boot counters"
        );
        std::fs::remove_dir_all(&scratch).ok();
    }
}
