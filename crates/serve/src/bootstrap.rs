//! One-call setup: train the paper's models and register them.
//!
//! Serving needs trained models; training needs the measurement corpus.
//! This module runs the offline pipeline once — the 91-bag paper corpus
//! for the pair model, the deterministic n-bag corpus for the extension
//! — and registers the results under well-known names:
//!
//! * `pair-tree` — the paper's best configuration (full feature scheme,
//!   depth-8 CART tree, §V-C / Fig. 9);
//! * `nbag-tree` — the order-statistic n-bag predictor.
//!
//! Both are snapshot-capable, so a `save_dir`/`load_dir` cycle skips
//! retraining on the next boot.

use crate::error::ServeError;
use crate::snapshot::{ModelRegistry, ServableModel};
use bagpred_core::nbag::{nbag_corpus, NBagMeasurement, NBagPredictor};
use bagpred_core::{Corpus, FeatureSet, ModelKind, Platforms, Predictor};
use std::path::Path;
use std::sync::Arc;

/// Extra heterogeneous bags in the n-bag training corpus (deterministic;
/// matches the experiments crate's default).
const NBAG_EXTRA: usize = 20;

/// Name the pair model is registered under.
pub const PAIR_MODEL: &str = "pair-tree";
/// Name the n-bag model is registered under.
pub const NBAG_MODEL: &str = "nbag-tree";

/// Trains the paper's pair predictor on the 91-bag corpus.
pub fn train_pair(platforms: &Platforms) -> Predictor {
    let records = Corpus::paper().measure_on(platforms);
    let mut predictor = Predictor::new(FeatureSet::full()).with_model(ModelKind::DecisionTree);
    predictor.train(&records);
    predictor
}

/// Trains the n-bag predictor on the deterministic n-bag corpus.
pub fn train_nbag(platforms: &Platforms) -> NBagPredictor {
    let records: Vec<NBagMeasurement> =
        bagpred_core::nbag::measure_nbags(&nbag_corpus(NBAG_EXTRA), platforms);
    let mut predictor = NBagPredictor::new();
    predictor.train(&records);
    predictor
}

/// Trains both models and returns a registry holding them as
/// [`PAIR_MODEL`] and [`NBAG_MODEL`].
///
/// The two models are independent, so a cold boot trains them on two
/// scoped threads (each one's corpus measurement additionally fans out
/// over `BAGPRED_THREADS` workers — see [`bagpred_core::parallel`]).
/// Training is deterministic, so the registry contents are identical to
/// a serial boot.
pub fn default_registry(platforms: &Platforms) -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::new());
    let (pair, nbag) = std::thread::scope(|scope| {
        let pair = scope.spawn(|| train_pair(platforms));
        let nbag = scope.spawn(|| train_nbag(platforms));
        (
            pair.join().expect("pair training panicked"),
            nbag.join().expect("n-bag training panicked"),
        )
    });
    registry.insert(PAIR_MODEL, ServableModel::Pair(pair));
    registry.insert(NBAG_MODEL, ServableModel::NBag(nbag));
    registry
}

/// Whether freshly trained models were written back as snapshots.
#[derive(Debug)]
pub enum SnapshotWriteback {
    /// No snapshot directory was given; nothing written.
    Skipped,
    /// This many snapshots were written to the directory.
    Saved(usize),
    /// Writing failed — non-fatal, the in-memory registry still serves.
    Failed(ServeError),
}

/// How [`load_or_train`] obtained its registry.
#[derive(Debug)]
pub enum BootSource {
    /// All models decoded from this many snapshots in the directory.
    Loaded(usize),
    /// Trained from scratch (empty or missing snapshot directory).
    Trained(SnapshotWriteback),
}

/// The standard serve boot path: load every snapshot from `dir` when it
/// holds any; otherwise train the default models and write their
/// snapshots back so the next boot skips training. With no directory,
/// always trains.
///
/// # Errors
///
/// Snapshot read/decode errors (a corrupt snapshot directory must fail
/// loudly, not silently retrain and mask the corruption). Write-back
/// failures are *not* errors — they are reported in
/// [`SnapshotWriteback::Failed`].
pub fn load_or_train(
    platforms: &Platforms,
    dir: Option<&Path>,
) -> Result<(Arc<ModelRegistry>, BootSource), ServeError> {
    if let Some(dir) = dir {
        let registry = Arc::new(ModelRegistry::new());
        let loaded = registry.load_dir(dir)?;
        if loaded > 0 {
            return Ok((registry, BootSource::Loaded(loaded)));
        }
        let registry = default_registry(platforms);
        let writeback = match registry.save_dir(dir) {
            Ok(saved) => SnapshotWriteback::Saved(saved),
            Err(err) => SnapshotWriteback::Failed(err),
        };
        Ok((registry, BootSource::Trained(writeback)))
    } else {
        Ok((
            default_registry(platforms),
            BootSource::Trained(SnapshotWriteback::Skipped),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil;

    #[test]
    fn load_or_train_round_trips_through_a_snapshot_dir() {
        let dir = testutil::scratch_dir("bootstrap-boot");
        // Seed the dir from the shared trained registry (avoids a second
        // training run just for this test).
        let saved = testutil::registry().save_dir(&dir).expect("saves");
        let (registry, source) =
            load_or_train(&Platforms::paper(), Some(&dir)).expect("boots from snapshots");
        match source {
            BootSource::Loaded(n) => assert_eq!(n, saved),
            other => panic!("expected a snapshot boot, got {other:?}"),
        }
        assert_eq!(registry.list(), testutil::registry().list());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_or_train_propagates_corrupt_snapshots() {
        let dir = testutil::scratch_dir("bootstrap-corrupt");
        std::fs::write(dir.join("bad.bagsnap"), "not a snapshot\n").expect("writes");
        let err = load_or_train(&Platforms::paper(), Some(&dir)).expect_err("must fail loudly");
        assert!(matches!(err, ServeError::Snapshot(_)), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
